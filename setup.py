"""Setup shim for editable installs in offline environments.

The environment has no ``wheel`` package, so PEP 517 editable installs
fail; ``pip install -e . --no-use-pep517`` (or plain ``pip install -e .``
with older pip) goes through this shim instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Serving: run the fused pipelines as a long-lived, cached service.

Fusion and tape compilation depend only on a pipeline's structure, the
image geometry, and the configuration — so a process that executes the
same pipelines repeatedly should pay them once.  This example stands up
a :class:`repro.serve.ServingRuntime`, floods it with concurrent
requests across the six paper applications, verifies the results are
bit-identical to direct one-shot execution, and prints the metrics the
runtime collected along the way: cache hit rate, latency percentiles,
batch sizes, per-stage compile costs.

Run:  python examples/serving.py
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.apps import APPLICATIONS
from repro.backend.numpy_exec import execute_partitioned
from repro.eval.runner import partition_for
from repro.model.hardware import GTX680
from repro.serve import ServingRuntime
from repro.serve.bench import request_inputs
from repro.serve.registry import DEFAULT_APP_PARAMS

WIDTH, HEIGHT = 96, 64
REQUESTS = 120


def main() -> None:
    # 1. A runtime with the paper's six applications pre-registered.
    runtime = ServingRuntime(workers=4, max_batch=8)
    names = sorted(runtime.registry.names())
    print(f"registered pipelines: {', '.join(names)}")
    print()

    # 2. Fire a concurrent request stream (round-robin over the apps,
    #    fresh input arrays per request).
    workload = [
        (names[i % len(names)],
         request_inputs(APPLICATIONS[names[i % len(names)]],
                        WIDTH, HEIGHT, seed=i))
        for i in range(REQUESTS)
    ]
    with runtime, ThreadPoolExecutor(max_workers=16) as clients:
        futures = [
            clients.submit(runtime.execute, name, inputs)
            for name, inputs in workload
        ]
        served = [future.result() for future in futures]

        # 3. Spot-check bit-identity against direct one-shot execution.
        name, inputs = workload[0]
        spec = APPLICATIONS[name]
        graph = spec.build(WIDTH, HEIGHT).build()
        partition = partition_for(graph, GTX680, "optimized")
        direct = execute_partitioned(
            graph, partition, inputs, DEFAULT_APP_PARAMS.get(name)
        )
        assert all(
            np.array_equal(served[0][image], direct[image])
            for image in direct
        ), "serving diverged from direct execution"
        print(f"{REQUESTS} requests served; first result bit-identical "
              f"to direct execution of {name}")
        print()

        # 4. What the runtime measured.
        snapshot = runtime.metrics_snapshot()

    cache = snapshot["plan_cache"]
    print(f"plan cache: {cache['hits']} hits / {cache['misses']} misses "
          f"-> hit rate {cache['hit_rate']:.3f} "
          f"({cache['coalesced']} coalesced builds)")
    latency = snapshot["histograms"]["total_ms"]
    print(f"latency   : p50 {latency['p50']:.2f} ms, "
          f"p95 {latency['p95']:.2f} ms, p99 {latency['p99']:.2f} ms")
    batch = snapshot["histograms"]["batch_size"]
    print(f"batches   : {batch['count']} executed, mean size "
          f"{batch['mean']:.2f}, max {batch['max']:.0f}")
    fuse = snapshot["histograms"].get("compile_fuse_ms")
    plan = snapshot["histograms"].get("compile_plan_ms")
    if fuse and plan:
        print(f"compiles  : {fuse['count']} (min-cut fuse mean "
              f"{fuse['mean']:.2f} ms, tape plan mean "
              f"{plan['mean']:.2f} ms) — paid once per pipeline, "
              f"amortized over {REQUESTS} requests")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The Unsharp diamond: where min-cut fusion beats pairwise fusion.

All four Unsharp kernels read the source image (the paper's Fig. 2b
shape).  The prior-work pairwise engine treats every pair's extra input
as an external dependence and fuses nothing; the min-cut engine checks
the *whole block*, finds it legal, and collapses the pipeline into one
kernel — the paper's headline 2.52x geomean speedup.

This example runs both engines, verifies on real pixels that the fused
kernel computes the same image, prints the generated CUDA for the fused
kernel, and simulates all three devices.

Run:  python examples/unsharp_showdown.py
"""

import numpy as np

from repro.apps.unsharp import build_pipeline
from repro.backend.codegen_cuda import generate_cuda_pipeline
from repro.backend.launch import simulate_partition
from repro.backend.numpy_exec import execute_partitioned, execute_pipeline
from repro.fusion.basic_fusion import basic_fusion
from repro.fusion.mincut_fusion import mincut_fusion
from repro.graph.partition import Partition
from repro.model.benefit import estimate_graph
from repro.model.hardware import GTX680, GTX745, K20C


def synthetic_photo(width: int, height: int) -> np.ndarray:
    """A soft gradient with a sharp box — something worth sharpening."""
    ys, xs = np.mgrid[0:height, 0:width]
    base = 80.0 + 60.0 * np.sin(xs / 17.0) * np.cos(ys / 23.0)
    base[height // 4 : height // 2, width // 4 : width // 2] += 70.0
    return np.clip(base, 0.0, 255.0)


def main() -> None:
    graph = build_pipeline(2048, 2048).build()
    weighted = estimate_graph(graph, GTX680)

    basic = basic_fusion(weighted)
    optimized = mincut_fusion(weighted)
    print("basic (prior work [12]) partition:")
    print(basic.partition.describe())
    print()
    print("optimized (min-cut) partition:")
    print(optimized.partition.describe())
    print()

    # Correctness on real pixels (small geometry to keep it quick).
    small_graph = build_pipeline(64, 64).build()
    data = synthetic_photo(64, 64)
    staged = execute_pipeline(small_graph, {"input": data})
    small_weighted = estimate_graph(small_graph, GTX680)
    small_partition = mincut_fusion(small_weighted).partition
    fused = execute_partitioned(small_graph, small_partition, {"input": data})
    error = np.abs(fused["sharpened"] - staged["sharpened"]).max()
    print(f"fused vs staged max abs error: {error:.2e}")
    print()

    # Simulated times across the paper's device roster.
    print(f"{'device':<8}{'baseline':>10}{'basic':>10}{'optimized':>11}"
          f"{'speedup':>9}")
    for gpu in (GTX745, GTX680, K20C):
        times = {}
        for label, partition in (
            ("baseline", Partition.singletons(graph)),
            ("basic", basic.partition),
            ("optimized", optimized.partition),
        ):
            times[label] = simulate_partition(graph, partition, gpu).total_ms
        print(
            f"{gpu.name:<8}{times['baseline']:>9.3f} {times['basic']:>9.3f} "
            f"{times['optimized']:>10.3f}"
            f"{times['baseline'] / times['optimized']:>8.2f}x"
        )
    print()

    print("generated CUDA for the fused pipeline:")
    print(generate_cuda_pipeline(graph, optimized.partition))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Extension: Canny-lite edges, and a case the heuristic cannot see.

The paper proves the general fusion problem NP-complete and solves it
with the recursive min-cut heuristic (Algorithm 1).  On all six paper
applications the heuristic is *optimal* — our exhaustive engine proves
it by enumeration.  This example shows the structural case where the
heuristic can lose: Canny's {mag, orient, nms, thresh} block is legal
as a whole (two producers feed one consumer), but every pair inside it
is pairwise-illegal, so each edge carries only the epsilon weight and
the min cut never assembles the block.  The loss is bounded by a few
epsilon — negligible by construction — but the exhaustive engine fuses
four kernels where the heuristic fuses two.

Run:  python examples/canny_extension.py
"""

import numpy as np

from repro.apps.canny import build_pipeline
from repro.backend.launch import simulate_partition
from repro.backend.numpy_exec import execute_partitioned, execute_pipeline
from repro.fusion.exhaustive import exhaustive_fusion
from repro.fusion.mincut_fusion import mincut_fusion
from repro.model.benefit import estimate_graph
from repro.model.hardware import GTX680

PARAMS = {"threshold": 400.0}


def main() -> None:
    graph = build_pipeline(2048, 2048).build()
    weighted = estimate_graph(graph, GTX680)

    print("edge estimates (note the epsilon pairs around nms):")
    print(weighted.describe_edges())
    print()

    heuristic = mincut_fusion(weighted)
    optimal = exhaustive_fusion(weighted)
    print("Algorithm 1 (recursive min-cut):")
    print(heuristic.partition.describe())
    print()
    print("exhaustive optimum:")
    print(optimal.partition.describe())
    print()
    gap = optimal.benefit - heuristic.benefit
    print(f"beta gap: {gap:g} (bounded by the epsilon weights: "
          f"eps = {weighted.config.epsilon:g})")
    print()

    for label, result in (("min-cut", heuristic), ("exhaustive", optimal)):
        timing = simulate_partition(graph, result.partition, GTX680)
        print(f"simulated {label:<11}: {timing.total_ms:7.3f} ms "
              f"({timing.launches} launches)")
    print()

    # Both partitions compute the same edges.
    small = build_pipeline(64, 64).build()
    rng = np.random.default_rng(0)
    data = rng.uniform(0, 255, size=(64, 64))
    staged = execute_pipeline(small, {"input": data}, PARAMS)
    for label, engine in (("min-cut", mincut_fusion),
                          ("exhaustive", exhaustive_fusion)):
        weighted_small = estimate_graph(small, GTX680)
        partition = engine(weighted_small).partition
        fused = execute_partitioned(small, partition, {"input": data}, PARAMS)
        match = np.array_equal(fused["edges"], staged["edges"])
        print(f"{label:<11} fused output matches staged: {match}")


if __name__ == "__main__":
    main()

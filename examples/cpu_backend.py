#!/usr/bin/env python3
"""The CPU backend end to end: generate C, compile, run, measure.

The paper names CPUs as the next backend for kernel fusion; this
example closes the loop on this machine:

1. generate C for the baseline and the min-cut-fused Unsharp pipeline,
2. compile both with the system C compiler,
3. validate the fused binary against the NumPy reference (including
   borders — the generated halo code implements index exchange),
4. measure real wall-clock times and report the *actual* speedup that
   kernel fusion buys on your CPU.

Run:  python examples/cpu_backend.py
"""

import time

import numpy as np

from repro.apps.unsharp import build_pipeline
from repro.backend.cpu_exec import compile_pipeline, compiler_available
from repro.backend.numpy_exec import execute_pipeline
from repro.eval.runner import partition_for
from repro.graph.partition import Partition
from repro.model.hardware import GTX680

SIZE = 1536


def measure(pipeline, inputs, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        pipeline.run(inputs)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    if not compiler_available():
        print("no C compiler on PATH — nothing to do")
        return

    graph = build_pipeline(SIZE, SIZE).build()
    rng = np.random.default_rng(0)
    data = rng.uniform(0, 255, size=(SIZE, SIZE)).astype(np.float32)

    print(f"compiling baseline (4 kernels) and fused (1 kernel), "
          f"{SIZE}x{SIZE}...")
    baseline = compile_pipeline(graph, Partition.singletons(graph))
    optimized = compile_pipeline(
        graph, partition_for(graph, GTX680, "optimized")
    )

    # Correctness against the NumPy reference executor.
    reference = execute_pipeline(graph, {"input": data})["sharpened"]
    compiled = optimized.run({"input": data})["sharpened"]
    error = float(np.abs(compiled - reference).max())
    print(f"fused binary vs NumPy reference: max abs error {error:.3e}")

    base_s = measure(baseline, {"input": data})
    fused_s = measure(optimized, {"input": data})
    print()
    print(f"baseline (4 launches): {base_s * 1e3:8.2f} ms")
    print(f"fused    (1 launch)  : {fused_s * 1e3:8.2f} ms")
    print(f"measured CPU speedup : {base_s / fused_s:8.2f}x")
    print()
    print("(The win comes from the same mechanism as on the GPU: the")
    print(" three intermediate images never travel through memory.)")


if __name__ == "__main__":
    main()

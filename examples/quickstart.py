#!/usr/bin/env python3
"""Quickstart: fuse the Harris corner detector (the paper's Fig. 3).

Builds the nine-kernel Harris pipeline, runs the benefit model and the
min-cut fusion algorithm, and prints everything the paper's walk-through
shows: edge weights (328/328/256/epsilon), the recursive min-cut trace,
the final partition, and the simulated speedup on a GTX 680.

Run:  python examples/quickstart.py
"""

from repro.apps.harris import build_pipeline
from repro.backend.launch import simulate_partition
from repro.fusion.mincut_fusion import mincut_fusion
from repro.graph.partition import Partition
from repro.model.benefit import estimate_graph
from repro.model.hardware import GTX680


def main() -> None:
    # 1. Build the pipeline and its dependence DAG.
    graph = build_pipeline(width=2048, height=2048).build()
    print(f"pipeline: {graph}")
    print(f"kernels:  {', '.join(graph.kernel_names)}")
    print()

    # 2. Assign benefit weights to every edge (Eqs. 3-12).
    weighted = estimate_graph(graph, GTX680)
    print("edge weights (compare Fig. 3 of the paper):")
    print(weighted.describe_edges())
    print()

    # 3. Run Algorithm 1 with the paper's starting vertex.
    result = mincut_fusion(weighted, start_vertex="dx")
    print("recursive min-cut trace:")
    for event in result.trace:
        print("  " + event.describe())
    print()
    print("final partition (the paper fuses {sx,gx}, {sy,gy}, {sxy,gxy}):")
    print(result.partition.describe())
    print(f"achieved benefit beta = {result.benefit:g} cycles/pixel-unit")
    print()

    # 4. Simulate the paper's baseline-vs-optimized comparison.
    baseline = simulate_partition(graph, Partition.singletons(graph), GTX680)
    optimized = simulate_partition(graph, result.partition, GTX680)
    print(f"baseline : {baseline.total_ms:7.3f} ms ({baseline.launches} launches)")
    print(f"optimized: {optimized.total_ms:7.3f} ms ({optimized.launches} launches)")
    print(f"speedup  : {baseline.total_ms / optimized.total_ms:.3f}x "
          f"(paper Table I, GTX680: 1.344)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Building your own pipeline with the DSL.

A difference-of-Gaussians blob detector with thresholding and a global
maximum reduction — demonstrating point, local, *and* global operators,
runtime parameters, per-accessor boundary modes, and how the fusion
engine handles a pipeline it has never seen: the global reduction never
fuses, everything else is considered on its merits.

Run:  python examples/custom_pipeline.py
"""

import numpy as np

from repro.backend.launch import simulate_partition
from repro.backend.numpy_exec import execute_partitioned, execute_pipeline
from repro.dsl.boundary import BoundaryMode
from repro.dsl.functional import convolve
from repro.dsl.image import Image
from repro.dsl.kernel import Accessor, Kernel, ReductionKind
from repro.dsl.mask import Mask
from repro.dsl.pipeline import Pipeline
from repro.fusion.mincut_fusion import mincut_fusion
from repro.graph.partition import Partition
from repro.ir import ops
from repro.ir.expr import InputAt, Param
from repro.model.benefit import estimate_graph
from repro.model.hardware import GTX680


def build_dog_detector(width: int = 512, height: int = 512) -> Pipeline:
    pipe = Pipeline("dog-detector")
    src = Image.create("input", width, height)
    narrow = Image.create("narrow", width, height)
    wide = Image.create("wide", width, height)
    dog = Image.create("dog", width, height)
    blobs = Image.create("blobs", width, height)
    peak = Image.create("peak", 1, 1)

    narrow_mask = Mask.gaussian(1, sigma=0.8)
    wide_mask = Mask.gaussian(2, sigma=1.6)

    pipe.add(Kernel.from_function(
        "blur_narrow", [src], narrow,
        lambda a: convolve(a, narrow_mask),
        boundary=BoundaryMode.MIRROR,
    ))
    pipe.add(Kernel.from_function(
        "blur_wide", [src], wide,
        lambda a: convolve(a, wide_mask),
        boundary=BoundaryMode.MIRROR,
    ))
    pipe.add(Kernel.from_function(
        "difference", [narrow, wide], dog, lambda n, w: n() - w()
    ))
    pipe.add(Kernel.from_function(
        "threshold", [dog], blobs,
        lambda d: ops.select(ops.absolute(d()) > Param("tau"), d(), 0.0),
    ))
    pipe.add(Kernel(
        "peak", [Accessor(blobs)], peak, ops.absolute(InputAt("blobs")),
        reduction=ReductionKind.MAX,
    ))
    return pipe


def main() -> None:
    graph = build_dog_detector().build()
    print(f"pipeline: {graph}")
    weighted = estimate_graph(graph, GTX680)
    print()
    print("edge estimates:")
    print(weighted.describe_edges())
    print()

    result = mincut_fusion(weighted)
    print("fusion outcome:")
    print(result.partition.describe())
    print()

    # Execute both ways on a blob image and compare.
    rng = np.random.default_rng(3)
    data = rng.uniform(0, 30, size=(512, 512))
    data[100:108, 200:208] += 180.0  # a blob
    params = {"tau": 4.0}
    staged = execute_pipeline(graph, {"input": data}, params)
    fused = execute_partitioned(graph, result.partition, {"input": data},
                                params)
    error = np.abs(fused["blobs"] - staged["blobs"]).max()
    print(f"fused vs staged max abs error: {error:.2e}")
    print(f"peak response (global reduction): {float(fused['peak'][0, 0]):.2f}")
    print()

    baseline = simulate_partition(graph, Partition.singletons(graph), GTX680)
    optimized = simulate_partition(graph, result.partition, GTX680)
    print(f"simulated on {GTX680.name}: baseline {baseline.total_ms:.3f} ms "
          f"-> optimized {optimized.total_ms:.3f} ms "
          f"({baseline.total_ms / optimized.total_ms:.2f}x)")


if __name__ == "__main__":
    main()

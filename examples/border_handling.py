#!/usr/bin/env python3
"""Border-correct local-to-local fusion (the paper's Fig. 4 and Fig. 5).

Walks the paper's exact 5x5 matrix through two unnormalized Gaussian
convolutions and shows:

* the interior composition (intermediate 82/98/93..., result 992),
* that naive body composition computes a *wrong* clamp-border value,
* that the index-exchange method reproduces the staged result exactly,
* the same comparison on a larger random image for all boundary modes.

Run:  python examples/border_handling.py
"""

import numpy as np

from repro.dsl.boundary import BoundaryMode, BoundarySpec
from repro.dsl.functional import convolve
from repro.dsl.image import Image
from repro.dsl.kernel import Kernel
from repro.dsl.mask import Mask
from repro.dsl.pipeline import Pipeline
from repro.backend.numpy_exec import execute_block, execute_pipeline
from repro.eval.figures import FIGURE4_INPUT, figure4_example
from repro.graph.partition import PartitionBlock

GAUSS = Mask([[1, 2, 1], [2, 4, 2], [1, 2, 1]])


def double_convolution(width, height, boundary):
    pipe = Pipeline("double-conv")
    src = Image.create("src", width, height)
    mid = Image.create("mid", width, height)
    out = Image.create("out", width, height)
    pipe.add(Kernel.from_function(
        "conv1", [src], mid, lambda a: convolve(a, GAUSS), boundary=boundary
    ))
    pipe.add(Kernel.from_function(
        "conv2", [mid], out, lambda a: convolve(a, GAUSS), boundary=boundary
    ))
    return pipe.build()


def main() -> None:
    print("=== the paper's Fig. 4 worked example ===")
    fig4 = figure4_example()
    print("input matrix:")
    print(FIGURE4_INPUT.astype(int))
    print("intermediate 3x3 (paper: 82 98 93 / 66 61 51 / 43 34 32):")
    print(fig4.intermediate_center.astype(int))
    print(f"interior value      (paper: 992): {fig4.interior_value:.0f}")
    print(f"staged border value (paper: 763): {fig4.staged_border_value:.0f}")
    print(f"fused + index exchange          : {fig4.fused_border_value:.0f}")
    print(f"fused naive (cf. Fig. 4b, wrong): {fig4.naive_border_value:.0f}")
    print()

    print("=== all boundary modes on a 32x32 random image ===")
    rng = np.random.default_rng(7)
    data = rng.uniform(0, 255, size=(32, 32))
    header = f"{'mode':<12}{'naive max err':>16}{'exchange max err':>18}"
    print(header)
    for mode in (BoundaryMode.CLAMP, BoundaryMode.MIRROR,
                 BoundaryMode.REPEAT):
        graph = double_convolution(32, 32, BoundarySpec(mode))
        staged = execute_pipeline(graph, {"src": data})["out"]
        block = PartitionBlock(graph, {"conv1", "conv2"})
        naive = execute_block(graph, block, {"src": data},
                              naive_borders=True)
        exchanged = execute_block(graph, block, {"src": data})
        print(
            f"{mode.value:<12}"
            f"{np.abs(naive - staged).max():>16.4f}"
            f"{np.abs(exchanged - staged).max():>18.2e}"
        )
    print()
    print("naive composition is wrong in the halo region for every mode;")
    print("the index exchange reproduces the staged pipeline exactly.")


if __name__ == "__main__":
    main()

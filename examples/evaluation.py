#!/usr/bin/env python3
"""Regenerate the paper's full evaluation (Fig. 6, Table I, Table II).

Runs all six applications at the paper's geometries through the three
fusion versions on all three simulated devices (500 runs each, as in
the paper) and prints the tables side by side with the published
values.

Run:  python examples/evaluation.py
"""

from repro.eval.report import render_figure6, render_table1, render_table2
from repro.eval.runner import run_matrix


def main() -> None:
    print("running the 6 apps x 3 GPUs x 3 versions matrix "
          "(500 simulated runs each)...")
    results = run_matrix(runs=500)
    print()
    print(render_figure6(results))
    print()
    print(render_table1(results))
    print()
    print(render_table2(results))
    print()
    print("notes: shapes (who wins, where fusion is refused) reproduce the")
    print("paper; absolute factors come from an analytic simulator, not the")
    print("authors' testbed — see EXPERIMENTS.md for the deviations.")


if __name__ == "__main__":
    main()

"""Multi-process sharded serving: every core, bit-identical fidelity.

The single-process :class:`~repro.serve.runtime.ServingRuntime` is
GIL-bound: its scheduler threads interleave NumPy dispatch and
bookkeeping on one interpreter.  :class:`ShardedRuntime` lifts the same
serving contract onto N worker **processes**, each hosting its own
complete ``ServingRuntime`` (plan cache, micro-batcher, metrics,
resilience ladder), so aggregate throughput scales with cores while
every response stays bit-identical to direct execution.

Design, layer by layer:

* **Routing** — requests route by the pipeline's *plan structural
  signature* at the request geometry over a consistent-hash ring
  (:class:`HashRing`, virtual nodes).  The signature is exactly the
  plan-cache identity, so one worker owns each (pipeline, geometry)
  and its PlanCache stays hot; adding or losing a shard remaps only
  the ring arc it owned.
* **Transport** — input planes are written once into pooled
  shared-memory segments and mapped zero-copy in the worker; results
  come back the same way (:mod:`repro.serve.transport`).  Only tiny
  descriptors cross the pipe.  Round-trips are serialized per worker,
  which is what makes pooled-segment reuse safe: a segment is never
  rewritten before its previous reader is done.
* **Compile sharing** — workers share the content-hash ``.so`` cache
  on disk (:mod:`repro.backend.cpu_exec`): the first worker to compile
  a native plan pays the C compiler, every other worker's miss loads
  the artifact.
* **Resilience** — each worker runs the full in-process ladder; this
  module adds the process level (:class:`~repro.serve.resilience.
  ShardPolicy`): a dead worker is detected mid-round-trip, its
  in-flight request retries on the next live shards clockwise on the
  ring, and the process respawns in the background.  Deterministic
  kills are injectable at the ``worker.kill`` fault site
  (``REPRO_FAULTS=worker.kill:error*1``) — fired parent-side, so a
  respawned worker does not re-arm its own assassin.

The layering follows rechunker's pluggable ``PipelineExecutor`` split:
what to execute (the registered pipelines and their plans) is decided
once, *where* it executes is an executor concern — threads in one
process or a shard fleet — behind the same ``submit``/``execute``
surface.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue
import threading
import time
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.numpy_exec import Arrays, Params
from repro.serve import faultinject
from repro.serve.errors import (
    DeadlineExceeded,
    QueueFull,
    RemoteServeError,
    RuntimeClosed,
    ServeError,
    WorkerDied,
)
from repro.serve.metrics import Metrics, merge_snapshots
from repro.serve.plancache import FusionSettings
from repro.serve.registry import PipelineRegistry, default_registry
from repro.serve.resilience import ResiliencePolicy, ShardPolicy
from repro.serve.runtime import _infer_geometry
from repro.serve.scheduler import ResponseHandle
from repro.serve.transport import (
    SegmentPool,
    attach_segment,
    pack_arrays,
    unpack_arrays,
)

__all__ = ["HashRing", "ShardedRuntime"]


# ---------------------------------------------------------------------------
# Consistent hashing
# ---------------------------------------------------------------------------


def _ring_hash(token: str) -> int:
    """A stable 64-bit point on the ring (sha1: same across processes
    and runs — ``hash()`` is salted per process and would reshard the
    fleet every restart)."""
    return int.from_bytes(hashlib.sha1(token.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing over shard ids with virtual nodes.

    ``preference(key)`` returns every distinct shard in ring order
    starting at the key's point — index 0 is the primary, the rest are
    the sibling fallbacks, so routing and failover walk one structure.
    """

    def __init__(self, shard_ids: Sequence[int], virtual_nodes: int = 64):
        if not shard_ids:
            raise ValueError("hash ring needs at least one shard")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        points: List[Tuple[int, int]] = []
        for shard_id in shard_ids:
            for vnode in range(virtual_nodes):
                points.append((_ring_hash(f"shard-{shard_id}#{vnode}"), shard_id))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]
        self._count = len(set(shard_ids))

    def preference(self, key: str) -> List[int]:
        """Distinct shard ids clockwise from ``key``'s ring position."""
        start = bisect_right(self._hashes, _ring_hash(key))
        order: List[int] = []
        seen = set()
        for offset in range(len(self._points)):
            _, shard_id = self._points[(start + offset) % len(self._points)]
            if shard_id not in seen:
                seen.add(shard_id)
                order.append(shard_id)
                if len(order) == self._count:
                    break
        return order

    def shard_for(self, key: str) -> int:
        return self.preference(key)[0]


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(worker_id: int, conn: Any, config: Dict[str, Any]) -> None:
    """The worker loop: a full ServingRuntime behind a pipe.

    Runs in a child process.  Requests arrive as shared-memory
    descriptors, execute on this worker's own runtime (plan cache,
    micro-batcher, in-process resilience ladder), and return through
    the worker's response segment pool.  The protocol is strictly
    request/response — the parent serializes round-trips per worker —
    so one response pool segment set is always safe to reuse.
    """
    from repro.serve.runtime import ServingRuntime

    registry = default_registry(
        include_extensions=True,
        apps=set(config["apps"]) if config["apps"] is not None else None,
    )
    runtime = ServingRuntime(
        registry,
        fusion=config["fusion"],
        workers=config["worker_threads"],
        intra_workers=config["intra_workers"],
        max_batch=config["max_batch"],
        cache_capacity=config["cache_capacity"],
        engine=config["engine"],
        resilience=config["resilience"],
    )
    response_pool = SegmentPool()
    request_segments: Dict[str, Any] = {}  # parent-owned, attach once

    def request_views(descriptor) -> Arrays:
        name = descriptor[0]
        shm = request_segments.get(name)
        if shm is None:
            shm = attach_segment(name)
            request_segments[name] = shm
        return unpack_arrays(descriptor, shm)

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "exec":
                _, req_id, pipeline, descriptor, params = message
                try:
                    inputs = request_views(descriptor)
                    env = runtime.execute(pipeline, inputs, params)
                    out_descriptor, segment = pack_arrays(env, response_pool)
                    # The views into the request segment die with `env`;
                    # drop them before replying — a reply licenses the
                    # parent to rewrite that segment.
                    del inputs, env
                    conn.send(("ok", req_id, out_descriptor))
                    response_pool.release(segment)
                except BaseException as err:  # noqa: B036 - must cross the pipe
                    conn.send(("err", req_id, type(err).__name__, str(err)))
            elif kind == "metrics":
                snapshot = runtime.metrics_snapshot()
                snapshot["transport"] = response_pool.stats()
                conn.send(("metrics", snapshot))
            elif kind == "ping":
                conn.send(("pong", worker_id))
            elif kind == "close":
                conn.send(("bye", worker_id))
                break
    finally:
        runtime.close(drain=False)
        response_pool.close()
        for shm in request_segments.values():
            try:
                shm.close()
            except Exception:
                pass
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side shard bookkeeping
# ---------------------------------------------------------------------------


class _Shard:
    """Parent-side state of one worker: process, pipe, pools, lock.

    ``lock`` serializes round-trips on the pipe (including sibling
    retries arriving from other dispatchers) — the invariant that makes
    pooled-segment reuse and in-order replies trivial.
    """

    def __init__(self, shard_id: int, max_queue: int):
        self.id = shard_id
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Any = None
        self.lock = threading.Lock()
        self.queue: "queue.Queue[Any]" = queue.Queue(maxsize=max_queue)
        self.request_pool = SegmentPool()
        #: Response segments (worker-owned) we attached, by name.
        self.attached: Dict[str, Any] = {}
        #: Incremented by every (re)launch: a death report carrying an
        #: older generation describes a process already replaced and
        #: must not trigger another respawn of the live successor.
        self.generation = 0
        self.death_handled = False
        self.respawning = False

    def drop_attachments(self, unlink: bool) -> None:
        """Detach (and after a death, unlink) the worker's response
        segments — a killed worker cannot clean up after itself."""
        for shm in self.attached.values():
            try:
                shm.close()
            except Exception:
                pass
            if unlink:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
        self.attached.clear()


class _ShardRequest:
    """One in-flight request: inputs held parent-side for retries."""

    __slots__ = (
        "req_id",
        "pipeline",
        "inputs",
        "params",
        "route_key",
        "deadline",
        "handle",
        "enqueued_at",
    )

    def __init__(
        self,
        req_id: int,
        pipeline: str,
        inputs: Arrays,
        params: Params | None,
        route_key: str,
        deadline: Optional[float],
    ):
        self.req_id = req_id
        self.pipeline = pipeline
        self.inputs = inputs
        self.params = params
        self.route_key = route_key
        self.deadline = deadline
        self.handle = ResponseHandle()
        self.enqueued_at = time.monotonic()


class ShardedRuntime:
    """N worker processes behind the ServingRuntime surface.

    Parameters
    ----------
    apps:
        Names of the pipelines to serve (resolved in each worker via
        :func:`~repro.serve.registry.default_registry` with extensions
        available); ``None`` serves the six paper apps.  Workers build
        their own registries — a :class:`PipelineRegistry` holds locks
        and memoized graphs and cannot cross a process boundary.
    processes:
        Worker process count; ``None`` defers to ``REPRO_SERVE_PROCS``
        (default 1 — but construct a plain ServingRuntime for that).
    fusion / engine / intra_workers / max_batch / cache_capacity /
    resilience:
        Forwarded to each worker's ServingRuntime.  ``resilience`` must
        stay picklable (the default policy is; injected lambda clocks
        are not).
    worker_threads:
        Scheduler threads inside each worker (micro-batching still
        applies per worker).
    max_queue:
        Bound of each shard's parent-side dispatch queue.
    shard:
        The :class:`~repro.serve.resilience.ShardPolicy` — sibling
        retries and respawn behaviour.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        ``"spawn"`` is the conservative choice, ``"fork"`` the fast
        one on Linux).
    virtual_nodes:
        Ring points per shard (routing smoothness).
    """

    def __init__(
        self,
        apps: Sequence[str] | None = None,
        *,
        processes: int | None = None,
        fusion: FusionSettings | None = None,
        engine: str = "tape",
        intra_workers: int | None = None,
        worker_threads: int = 2,
        max_queue: int = 128,
        max_batch: int = 8,
        cache_capacity: int = 64,
        resilience: ResiliencePolicy | None = None,
        shard: ShardPolicy | None = None,
        start_method: str | None = None,
        virtual_nodes: int = 64,
        metrics: Metrics | None = None,
    ):
        from repro.envknobs import serve_procs_env

        processes = serve_procs_env() if processes is None else processes
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        self.apps = tuple(apps) if apps is not None else None
        self.fusion = fusion or FusionSettings()
        self.engine = engine
        self.shard_policy = shard or ShardPolicy()
        self.metrics = metrics or Metrics()
        self.max_queue = max_queue
        #: Parent-side registry: request validation + route signatures
        #: (memoized per geometry; workers build their own copies).
        self.registry: PipelineRegistry = default_registry(
            include_extensions=True,
            apps=set(self.apps) if self.apps is not None else None,
        )
        self._config: Dict[str, Any] = {
            "apps": self.apps,
            "fusion": self.fusion,
            "engine": engine,
            "intra_workers": intra_workers,
            "worker_threads": worker_threads,
            "max_batch": max_batch,
            "cache_capacity": cache_capacity,
            "resilience": resilience,
        }
        self._ctx = multiprocessing.get_context(start_method)
        self._closed = False
        self._req_counter = 0
        self._req_lock = threading.Lock()
        faultinject.refresh_from_env()
        # Start the shared-memory resource tracker *before* forking
        # workers so every child inherits this one tracker process.  A
        # fork-started worker that boots its own private tracker turns
        # each injected kill into cleanup noise: the orphaned tracker
        # "recovers" segments the parent already unlinked (double
        # unlink, ENOENT warnings) while the parent's tracker KeyErrors
        # on names it never saw registered.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._shards = [_Shard(i, max_queue) for i in range(processes)]
        self._ring = HashRing(range(processes), virtual_nodes=virtual_nodes)
        # Start every process first (spawns overlap), then handshake.
        for s in self._shards:
            self._launch(s)
        try:
            for s in self._shards:
                self._handshake(s)
        except BaseException:
            self.close(drain=False)
            raise
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(s,),
                name=f"repro-shard-{s.id}",
                daemon=True,
            )
            for s in self._shards
        ]
        for thread in self._dispatchers:
            thread.start()

    @classmethod
    def from_options(
        cls,
        options: Any,
        apps: Sequence[str] | None = None,
        **overrides: Any,
    ) -> "ShardedRuntime":
        """Build a sharded runtime from :class:`repro.api.
        ExecutionOptions` (the multi-process sibling of
        :meth:`ServingRuntime.from_options`)."""
        from repro.backend.numpy_exec import _resolve_engine

        kwargs: Dict[str, Any] = {
            "fusion": options.fusion_settings(),
            "engine": _resolve_engine(options.engine),
            "intra_workers": options.workers,
        }
        if options.resilience is not None:
            kwargs["resilience"] = options.resilience
        kwargs.update(overrides)
        return cls(apps, **kwargs)

    # -- worker lifecycle ---------------------------------------------------

    def _launch(self, shard: _Shard, ctx: Any = None) -> None:
        ctx = ctx or self._ctx
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(shard.id, child_conn, self._config),
            name=f"repro-serve-worker-{shard.id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn
        shard.generation += 1
        shard.death_handled = False

    def _handshake(self, shard: _Shard, timeout: float = 60.0) -> None:
        shard.conn.send(("ping",))
        reply = self._await_reply(shard, timeout=timeout)
        if reply[0] != "pong":
            raise WorkerDied(shard.id, f"bad handshake reply {reply[0]!r}")

    def _await_reply(self, shard: _Shard, timeout: float | None = None) -> Any:
        """Receive one message, detecting a dead worker while waiting.

        A SIGKILLed worker does not fail the parent's ``send`` (the
        message buffers in the pipe) — the only reliable signal is
        polling with liveness checks.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if shard.conn.poll(0.05):
                    return shard.conn.recv()
            except (EOFError, OSError):
                raise WorkerDied(shard.id) from None
            if not shard.process.is_alive():
                # One last poll: the worker may have replied then died.
                try:
                    if shard.conn.poll(0):
                        return shard.conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerDied(shard.id)
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerDied(
                    shard.id, f"shard worker {shard.id} unresponsive"
                )

    def _on_death(self, shard: _Shard, generation: int | None = None) -> None:
        """Account a worker death once and kick off the respawn."""
        spawn_respawn = False
        with shard.lock:
            if generation is not None and generation != shard.generation:
                return  # that incarnation has already been replaced
            if shard.death_handled:
                return
            shard.death_handled = True
            shard.drop_attachments(unlink=True)
            if self.shard_policy.respawn and not self._closed:
                shard.respawning = True
                spawn_respawn = True
        self.metrics.counter("worker_deaths").inc()
        if spawn_respawn:
            threading.Thread(
                target=self._respawn,
                args=(shard,),
                name=f"repro-shard-respawn-{shard.id}",
                daemon=True,
            ).start()

    def _respawn(self, shard: _Shard) -> None:
        try:
            # Hold the shard lock through launch + handshake so a
            # dispatcher cannot interleave an exec round-trip with the
            # ping/pong of the half-born replacement; dispatch resumes
            # the moment the worker is known-good.
            #
            # Respawns always use the *spawn* start method, whatever the
            # construction-time method was.  Construction forks run
            # before any dispatcher thread exists, but a respawn forks
            # while dispatchers are mid-round-trip — a fork taken while
            # another thread holds the shared-memory resource tracker's
            # lock (every segment registration does, briefly) copies
            # that lock *held forever* into the child, which then hangs
            # on its first segment creation.  Spawn starts from a fresh
            # interpreter and is immune.
            with shard.lock:
                old_conn = shard.conn
                self._launch(shard, ctx=multiprocessing.get_context("spawn"))
                if old_conn is not None:
                    try:
                        old_conn.close()
                    except Exception:
                        pass
                self._handshake(
                    shard, timeout=self.shard_policy.respawn_timeout_s
                )
            self.metrics.counter("workers_respawned").inc()
        except BaseException:
            # The replacement failed too; siblings keep absorbing the
            # arc.  Mark it dead-handled so the next dispatch attempt
            # can trigger another respawn round.
            self.metrics.counter("respawn_failed").inc()
            with shard.lock:
                shard.death_handled = False
        finally:
            with shard.lock:
                shard.respawning = False

    # -- request admission --------------------------------------------------

    def submit(
        self,
        pipeline: str,
        inputs: Arrays,
        params: Params | None = None,
        *,
        deadline_s: float | None = None,
        block: bool = True,
        queue_timeout: float | None = None,
    ) -> ResponseHandle:
        """Enqueue one request; routing picks the owning shard.

        Same surface as :meth:`ServingRuntime.submit`: the handle's
        ``result()`` is the surviving-image environment, bit-identical
        to direct execution.
        """
        if self._closed:
            raise RuntimeClosed("sharded runtime is closed")
        entry = self.registry.get(pipeline)
        height, width = _infer_geometry(inputs)
        route_key = entry.signature(width, height)
        merged = dict(entry.params)
        merged.update(params or {})
        with self._req_lock:
            self._req_counter += 1
            req_id = self._req_counter
        request = _ShardRequest(
            req_id,
            pipeline,
            inputs,
            merged,
            route_key,
            time.monotonic() + deadline_s if deadline_s is not None else None,
        )
        shard = self._shards[self._ring.shard_for(route_key)]
        self.metrics.counter("requests_submitted").inc()
        try:
            shard.queue.put(request, block=block, timeout=queue_timeout)
        except queue.Full:
            self.metrics.counter("requests_rejected").inc()
            raise QueueFull(
                f"shard {shard.id} queue full ({self.max_queue} pending)"
            ) from None
        self.metrics.gauge("queue_depth").set(
            sum(s.queue.qsize() for s in self._shards)
        )
        return request.handle

    def execute(
        self,
        pipeline: str,
        inputs: Arrays,
        params: Params | None = None,
        *,
        deadline_s: float | None = None,
    ) -> Arrays:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(
            pipeline, inputs, params, deadline_s=deadline_s
        ).result()

    def execute_graph(self, *args: Any, **kwargs: Any) -> Arrays:
        """Unsupported: ad-hoc graphs do not cross process boundaries.

        A sharded runtime serves *registered* pipelines — workers
        rebuild them by name.  Route graph execution through a
        single-process :class:`ServingRuntime` or register the
        pipeline under a name.
        """
        raise ServeError(
            "ShardedRuntime serves registered pipelines by name; "
            "execute_graph needs a single-process ServingRuntime"
        )

    # -- dispatch -----------------------------------------------------------

    def _dispatch_loop(self, shard: _Shard) -> None:
        while True:
            request = shard.queue.get()
            if request is None:
                return
            now = time.monotonic()
            if request.deadline is not None and now >= request.deadline:
                self.metrics.counter("requests_timed_out").inc()
                request.handle.set_error(
                    DeadlineExceeded(
                        "deadline expired after "
                        f"{now - request.enqueued_at:.3f}s in queue"
                    )
                )
                continue
            try:
                env, served_by = self._serve(request)
            except BaseException as err:
                self.metrics.counter("requests_failed").inc()
                request.handle.set_error(err)
                continue
            self.metrics.counter("requests_completed").inc()
            self.metrics.counter(f"shard_{served_by}_served").inc()
            self.metrics.histogram("total_ms").observe(
                (time.monotonic() - request.enqueued_at) * 1e3
            )
            request.handle.set_result(env)

    def _serve(self, request: _ShardRequest) -> Tuple[Arrays, int]:
        """Round-trip one request, walking the ring past dead shards."""
        order = self._ring.preference(request.route_key)
        candidates = order[: 1 + self.shard_policy.sibling_retries]
        last_death: Optional[WorkerDied] = None
        for position, shard_id in enumerate(candidates):
            shard = self._shards[shard_id]
            if position:
                self.metrics.counter("requests_retried_on_sibling").inc()
            try:
                return self._roundtrip(shard, request), shard_id
            except WorkerDied as err:
                last_death = err
                if not getattr(err, "handled", False):
                    self._on_death(shard, getattr(err, "generation", None))
        assert last_death is not None
        raise last_death

    def _roundtrip(self, shard: _Shard, request: _ShardRequest) -> Arrays:
        """One serialized exchange with a worker (caller owns retries)."""
        if shard.respawning:
            # Don't queue behind a respawn-in-progress (it holds the
            # shard lock for the whole spawn + handshake) — fail over
            # to the sibling now; the replacement picks up new traffic
            # the moment its handshake completes.  The death is
            # already being handled, so mark this report pre-handled.
            death = WorkerDied(
                shard.id, f"shard worker {shard.id} respawning"
            )
            death.handled = True
            raise death
        with shard.lock:
            generation = shard.generation
            try:
                return self._locked_roundtrip(shard, request)
            except WorkerDied as err:
                # Stamp which incarnation died so a report that lost
                # the race against a completed respawn is discarded.
                err.generation = generation
                raise

    def _locked_roundtrip(
        self, shard: _Shard, request: _ShardRequest
    ) -> Arrays:
        """The pipe exchange itself; caller holds ``shard.lock``."""
        if shard.process is None or not shard.process.is_alive():
            raise WorkerDied(shard.id)
        if faultinject.armed() and faultinject.take("worker.kill"):
            # Parent-side injected kill: SIGKILL the worker we were
            # about to use, then dispatch anyway — detection,
            # sibling retry, and respawn all run for real.
            shard.process.kill()
            shard.process.join(timeout=5.0)
        descriptor, segment = pack_arrays(request.inputs, shard.request_pool)
        try:
            try:
                shard.conn.send(
                    (
                        "exec",
                        request.req_id,
                        request.pipeline,
                        descriptor,
                        request.params,
                    )
                )
            except (BrokenPipeError, OSError):
                raise WorkerDied(shard.id) from None
            while True:
                reply = self._await_reply(shard)
                if reply[0] in ("ok", "err") and reply[1] == request.req_id:
                    break
                # Stale reply from a round-trip abandoned by a
                # previous error; drop it and keep waiting.
        finally:
            shard.request_pool.release(segment)
        if reply[0] == "err":
            raise RemoteServeError(reply[2], reply[3])
        out_descriptor = reply[2]
        name = out_descriptor[0]
        shm = shard.attached.get(name)
        if shm is None:
            shm = attach_segment(name)
            shard.attached[name] = shm
        views = unpack_arrays(out_descriptor, shm)
        # Copy out: the worker reuses its response segments on the
        # next round-trip through this shard.
        return {key: np.array(view) for key, view in views.items()}

    # -- observability ------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Parent metrics + per-shard snapshots + the fleet aggregate.

        ``shards`` holds each worker's own ``metrics_snapshot()``
        (plan-cache hit rate, engine, transport pool) plus its
        parent-side queue depth; ``fleet`` merges the workers'
        instruments (:func:`~repro.serve.metrics.merge_snapshots`);
        ``plan_cache`` is the fleet-wide cache view, so existing
        single-process consumers read the same keys.
        """
        snapshot = self.metrics.snapshot()
        shards: Dict[str, Any] = {}
        worker_snaps: List[Dict[str, Any]] = []
        for shard in self._shards:
            shard_view: Dict[str, Any] = {
                "queue_depth": shard.queue.qsize(),
                "request_pool": shard.request_pool.stats(),
            }
            try:
                with shard.lock:
                    if shard.process is None or not shard.process.is_alive():
                        raise WorkerDied(shard.id)
                    shard.conn.send(("metrics",))
                    reply = self._await_reply(shard, timeout=30.0)
                worker = reply[1]
                shard_view["alive"] = True
                shard_view["worker"] = worker
                shard_view["plan_cache"] = worker.get("plan_cache", {})
                worker_snaps.append(worker)
            except (WorkerDied, OSError):
                shard_view["alive"] = False
            shards[str(shard.id)] = shard_view
        snapshot["processes"] = self.processes
        snapshot["shards"] = shards
        snapshot["fleet"] = merge_snapshots(worker_snaps)
        snapshot["plan_cache"] = self._aggregate_cache(worker_snaps)
        snapshot["engine"] = (
            worker_snaps[0]["engine"]
            if worker_snaps
            else {"requested": self.engine, "active": None}
        )
        from repro.backend.cpu_exec import compile_cache_stats

        snapshot["compile_cache"] = compile_cache_stats()
        snapshot["resilience"] = {
            "shard_policy": {
                "sibling_retries": self.shard_policy.sibling_retries,
                "respawn": self.shard_policy.respawn,
            },
            "breakers": {},
            "faults": faultinject.stats(),
        }
        return snapshot

    @staticmethod
    def _aggregate_cache(worker_snaps: List[Dict[str, Any]]) -> Dict[str, Any]:
        total = {
            "size": 0,
            "capacity": 0,
            "hits": 0,
            "misses": 0,
            "miss_structure": 0,
            "miss_shape": 0,
            "coalesced": 0,
            "evictions": 0,
            "quarantined": 0,
        }
        for snap in worker_snaps:
            cache = snap.get("plan_cache", {})
            for key in total:
                total[key] += cache.get(key, 0)
        lookups = total["hits"] + total["misses"]
        total["hit_rate"] = (total["hits"] / lookups) if lookups else 0.0
        return total

    # -- lifecycle ----------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admissions, drain dispatchers, shut the fleet down."""
        if self._closed:
            return
        self._closed = True  # stop admissions before draining
        dispatchers = getattr(self, "_dispatchers", [])
        for shard in self._shards:
            if not drain:
                # Fail queued work instead of serving it.
                while True:
                    try:
                        request = shard.queue.get_nowait()
                    except queue.Empty:
                        break
                    if request is not None:
                        request.handle.set_error(
                            RuntimeClosed("runtime shut down before execution")
                        )
            shard.queue.put(None)
        for thread in dispatchers:
            thread.join(timeout=timeout)
        for shard in self._shards:
            with shard.lock:
                if shard.process is not None and shard.process.is_alive():
                    try:
                        shard.conn.send(("close",))
                        self._await_reply(shard, timeout=10.0)
                    except (WorkerDied, OSError):
                        pass
                    shard.process.join(timeout=10.0)
                    if shard.process.is_alive():
                        shard.process.kill()
                        shard.process.join(timeout=5.0)
                # After worker death the response segments are orphans:
                # unlink; after clean exit the worker unlinked already
                # and closing our handles is enough.
                shard.drop_attachments(unlink=shard.death_handled)
                if shard.conn is not None:
                    try:
                        shard.conn.close()
                    except Exception:
                        pass
                shard.request_pool.close()

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

"""The serving runtime: pipelines as a long-lived, cached service.

Everything upstream of this package treats each execution as a
one-shot: build, fuse, plan, run, discard.  :mod:`repro.serve` turns
that into a service with the compile-once/run-many cost model the
paper's analysis implies:

* :mod:`~repro.serve.registry` — named, shape-polymorphic pipelines
  (the six paper apps pre-registered);
* :mod:`~repro.serve.plancache` — LRU cache of fused partitions +
  compiled tapes keyed on structural signature, geometry, engine, and
  fusion configuration, with in-flight build coalescing and entry
  quarantine;
* :mod:`~repro.serve.scheduler` — bounded-queue micro-batching with
  backpressure, deadlines, and graceful drain;
* :mod:`~repro.serve.metrics` — counters/gauges/state gauges/latency
  histograms behind one snapshot call;
* :mod:`~repro.serve.errors` — the typed :class:`ServeError`
  exception hierarchy;
* :mod:`~repro.serve.resilience` — retry/backoff policies, per-stage
  timeouts, and the circuit breakers routing down the degradation
  ladder ``native → tape → recursive``;
* :mod:`~repro.serve.faultinject` — deterministic fault injection at
  named sites (``REPRO_FAULTS`` + programmatic API) so every
  degradation path is testable in CI;
* :mod:`~repro.serve.runtime` — :class:`ServingRuntime`, composing the
  above; results are bit-identical to direct execution;
* :mod:`~repro.serve.transport` — pooled ``multiprocessing.shared_memory``
  segments carrying image planes zero-copy between processes;
* :mod:`~repro.serve.sharding` — :class:`ShardedRuntime`, N worker
  processes each hosting a full ServingRuntime, routed by plan
  signature over a consistent-hash ring, with dead-worker detection,
  sibling retry, and respawn;
* :mod:`~repro.serve.bench` — the throughput benchmark backing
  ``python -m repro serve-bench`` (single-process and sharded).
"""

from repro.serve.errors import (
    BackpressureError,
    DeadlineExceeded,
    PlanBuildError,
    QueueFull,
    RemoteServeError,
    RuntimeClosed,
    SchedulerClosed,
    ServeError,
    StageTimeout,
    WorkerDied,
)
from repro.serve.faultinject import FaultInjected, FaultRule, fault_injection
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    StateGauge,
    merge_snapshots,
)
from repro.serve.plancache import (
    CachedPlan,
    FusionSettings,
    PlanCache,
    inputs_signature,
    plan_key,
)
from repro.serve.registry import (
    PipelineEntry,
    PipelineRegistry,
    RegistryError,
    default_registry,
)
from repro.serve.resilience import (
    DEGRADATION_LADDER,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    ShardPolicy,
    StageTimeouts,
)
from repro.serve.runtime import ServingRuntime, fusion_settings
from repro.serve.scheduler import (
    MicroBatchScheduler,
    ResponseHandle,
    ServeRequest,
)
from repro.serve.sharding import HashRing, ShardedRuntime
from repro.serve.transport import (
    SegmentPool,
    attach_segment,
    pack_arrays,
    unpack_arrays,
)

__all__ = [
    "BackpressureError",
    "BreakerBoard",
    "BreakerConfig",
    "CachedPlan",
    "CircuitBreaker",
    "Counter",
    "DEGRADATION_LADDER",
    "DeadlineExceeded",
    "FaultInjected",
    "FaultRule",
    "FusionSettings",
    "Gauge",
    "HashRing",
    "Histogram",
    "Metrics",
    "MicroBatchScheduler",
    "PipelineEntry",
    "PipelineRegistry",
    "PlanBuildError",
    "PlanCache",
    "QueueFull",
    "RegistryError",
    "RemoteServeError",
    "ResiliencePolicy",
    "ResponseHandle",
    "RetryPolicy",
    "RuntimeClosed",
    "SchedulerClosed",
    "SegmentPool",
    "ServeError",
    "ServeRequest",
    "ServingRuntime",
    "ShardPolicy",
    "ShardedRuntime",
    "StageTimeout",
    "StageTimeouts",
    "StateGauge",
    "WorkerDied",
    "attach_segment",
    "default_registry",
    "fault_injection",
    "fusion_settings",
    "inputs_signature",
    "merge_snapshots",
    "pack_arrays",
    "plan_key",
    "unpack_arrays",
]

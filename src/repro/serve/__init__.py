"""The serving runtime: pipelines as a long-lived, cached service.

Everything upstream of this package treats each execution as a
one-shot: build, fuse, plan, run, discard.  :mod:`repro.serve` turns
that into a service with the compile-once/run-many cost model the
paper's analysis implies:

* :mod:`~repro.serve.registry` — named, shape-polymorphic pipelines
  (the six paper apps pre-registered);
* :mod:`~repro.serve.plancache` — LRU cache of fused partitions +
  compiled tapes keyed on structural signature, geometry, engine, and
  fusion configuration, with in-flight build coalescing;
* :mod:`~repro.serve.scheduler` — bounded-queue micro-batching with
  backpressure, deadlines, and graceful drain;
* :mod:`~repro.serve.metrics` — counters/gauges/latency histograms
  behind one snapshot call;
* :mod:`~repro.serve.runtime` — :class:`ServingRuntime`, composing the
  above; results are bit-identical to direct execution;
* :mod:`~repro.serve.bench` — the throughput benchmark backing
  ``python -m repro serve-bench``.
"""

from repro.serve.metrics import Counter, Gauge, Histogram, Metrics
from repro.serve.plancache import (
    CachedPlan,
    FusionSettings,
    PlanCache,
    inputs_signature,
    plan_key,
)
from repro.serve.registry import (
    PipelineEntry,
    PipelineRegistry,
    RegistryError,
    default_registry,
)
from repro.serve.runtime import ServingRuntime, fusion_settings
from repro.serve.scheduler import (
    BackpressureError,
    DeadlineExceeded,
    MicroBatchScheduler,
    ResponseHandle,
    SchedulerClosed,
    ServeRequest,
)

__all__ = [
    "BackpressureError",
    "CachedPlan",
    "Counter",
    "DeadlineExceeded",
    "FusionSettings",
    "Gauge",
    "Histogram",
    "Metrics",
    "MicroBatchScheduler",
    "PipelineEntry",
    "PipelineRegistry",
    "PlanCache",
    "RegistryError",
    "ResponseHandle",
    "SchedulerClosed",
    "ServeRequest",
    "ServingRuntime",
    "default_registry",
    "fusion_settings",
    "inputs_signature",
    "plan_key",
]

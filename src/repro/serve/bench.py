"""Serving throughput benchmark: cached plans vs per-request recompilation.

The serving runtime's value proposition is that fusing and
tape-compiling a pipeline is pure overhead to repeat per request: the
result depends only on structure, geometry, and configuration.  This
module measures exactly that claim:

* **baseline** — every request rebuilds the pipeline, re-runs fusion
  (:func:`repro.eval.runner.partition_for`), re-compiles the
  instruction tapes against a fresh grid store, then executes.  This
  is the cost model of a process that treats every request as the
  first.
* **serving** — the same request stream submitted concurrently to a
  :class:`~repro.serve.runtime.ServingRuntime`: the first request per
  (pipeline, geometry) compiles, every later one hits the plan cache.

Both paths execute every request with the same tape engine, and the
report records that their outputs are **bit-identical** — the speedup
is bookkeeping removed, not arithmetic skipped.

:func:`run_serving_benchmark` returns a JSON-ready report; the
``serve-bench`` CLI and ``benchmarks/test_bench_serving.py`` both wrap
it.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps import ALL_APPS, AppSpec
from repro.backend.numpy_exec import Arrays
from repro.backend.plan import GridStore, PartitionPlan
from repro.eval.runner import partition_for
from repro.model.benefit import BenefitConfig
from repro.model.hardware import KNOWN_GPUS
from repro.serve.plancache import FusionSettings
from repro.serve.registry import DEFAULT_APP_PARAMS, default_registry
from repro.serve.runtime import ServingRuntime

__all__ = ["DEFAULT_BENCH_APPS", "request_inputs", "run_serving_benchmark"]

#: The paper's six applications, the default serving workload.
DEFAULT_BENCH_APPS: Tuple[str, ...] = (
    "Harris",
    "Sobel",
    "Unsharp",
    "ShiTomasi",
    "Enhance",
    "Night",
)


def request_inputs(
    spec: AppSpec, width: int, height: int, seed: int
) -> Arrays:
    """Deterministic random input arrays for one request."""
    graph = spec.build(width, height).build()
    rng = np.random.default_rng(seed)
    shape: Tuple[int, ...] = (height, width)
    if spec.channels > 1:
        shape = shape + (spec.channels,)
    return {
        name: rng.uniform(0.0, 255.0, size=shape)
        for name in graph.pipeline_inputs()
    }


def _benefit_config(fusion: FusionSettings) -> BenefitConfig:
    return BenefitConfig(
        c_mshared=fusion.c_mshared,
        epsilon=fusion.epsilon,
        gamma=fusion.gamma,
        is_units=fusion.is_units,
    )


def _baseline_once(
    spec: AppSpec,
    width: int,
    height: int,
    inputs: Arrays,
    fusion: FusionSettings,
) -> Arrays:
    """One request the expensive way: rebuild, re-fuse, re-plan, run."""
    graph = spec.build(width, height).build()
    partition = partition_for(
        graph,
        KNOWN_GPUS[fusion.gpu_name],
        fusion.version,
        _benefit_config(fusion),
    )
    plan = PartitionPlan(
        graph,
        partition,
        naive_borders=fusion.naive_borders,
        store=GridStore(),
    )
    return plan.execute(inputs, DEFAULT_APP_PARAMS.get(spec.name))


def run_serving_benchmark(
    apps: Sequence[str] = DEFAULT_BENCH_APPS,
    requests_per_app: int = 20,
    width: int = 64,
    height: int = 48,
    client_threads: int = 8,
    scheduler_workers: int = 2,
    max_batch: int = 8,
    fusion: Optional[FusionSettings] = None,
    check_identity: bool = True,
    engine: str = "tape",
    processes: int = 1,
    cache_keying: str = "shape",
) -> Dict[str, Any]:
    """Measure serving throughput against per-request recompilation.

    Fires ``requests_per_app`` requests per application (each with its
    own deterministic random inputs) through both paths and reports
    wall-clock throughput, the achieved cache hit rate, latency
    percentiles, and — when ``check_identity`` — whether every serving
    result matched its baseline result bit for bit.  ``engine`` selects
    the runtime's execution engine; with ``"native"`` the identity
    check uses the pinned native tolerance
    (:data:`repro.backend.native_exec.LIBM_RTOL`) instead of bitwise
    equality, since transcendental libm calls lowered to C may differ
    from NumPy in the last ulp.

    ``processes > 1`` serves the stream through a
    :class:`~repro.serve.sharding.ShardedRuntime` of that many worker
    processes instead of the in-process runtime — the same request
    surface, the same bit-identity contract, with requests routed by
    plan signature so each worker's cache stays hot.
    """
    fusion = fusion or FusionSettings()
    specs = [ALL_APPS[name] for name in apps]
    workload: List[Tuple[AppSpec, Arrays]] = [
        (spec, request_inputs(spec, width, height, seed=1000 * i + n))
        for i, spec in enumerate(specs)
        for n in range(requests_per_app)
    ]

    started = time.perf_counter()
    baseline_results = [
        _baseline_once(spec, width, height, inputs, fusion)
        for spec, inputs in workload
    ]
    baseline_seconds = time.perf_counter() - started

    if processes > 1:
        from repro.serve.sharding import ShardedRuntime

        if cache_keying != "shape":
            raise ValueError(
                "sharded serving routes requests by shape-specialized "
                "plan signature; cache_keying='structure' needs the "
                "single-process runtime"
            )
        runtime_cm: Any = ShardedRuntime(
            apps,
            processes=processes,
            fusion=fusion,
            worker_threads=scheduler_workers,
            max_batch=max_batch,
            engine=engine,
        )
    else:
        registry = default_registry(include_extensions=True, apps=set(apps))
        runtime_cm = ServingRuntime(
            registry,
            fusion=fusion,
            workers=scheduler_workers,
            max_batch=max_batch,
            engine=engine,
            cache_keying=cache_keying,
        )
    mismatches = 0
    with runtime_cm as runtime:
        with ThreadPoolExecutor(max_workers=client_threads) as clients:
            started = time.perf_counter()
            futures = [
                clients.submit(runtime.execute, spec.name, inputs)
                for spec, inputs in workload
            ]
            served_results = [future.result() for future in futures]
            serving_seconds = time.perf_counter() - started
        snapshot = runtime.metrics_snapshot()

    if check_identity:
        if snapshot["engine"]["active"] == "native":
            from repro.backend.native_exec import LIBM_ATOL, LIBM_RTOL

            def _matches(a: np.ndarray, b: np.ndarray) -> bool:
                return np.allclose(
                    a, b, rtol=LIBM_RTOL, atol=LIBM_ATOL, equal_nan=True
                )

        else:
            _matches = np.array_equal
        for reference, served in zip(baseline_results, served_results):
            if set(reference) != set(served) or any(
                not _matches(reference[name], served[name])
                for name in reference
            ):
                mismatches += 1

    total = len(workload)
    baseline_rps = total / baseline_seconds if baseline_seconds else 0.0
    serving_rps = total / serving_seconds if serving_seconds else 0.0
    latency = snapshot["histograms"].get("total_ms", {})
    batches = snapshot["counters"].get("batches_executed", 0)
    if processes > 1:
        # Workers micro-batch; the parent's counters only see routing.
        batches = (
            snapshot.get("fleet", {})
            .get("counters", {})
            .get("batches_executed", 0)
        )
    return {
        "benchmark": "serving",
        "config": {
            "apps": list(apps),
            "requests_per_app": requests_per_app,
            "requests_total": total,
            "width": width,
            "height": height,
            "client_threads": client_threads,
            "scheduler_workers": scheduler_workers,
            "max_batch": max_batch,
            "processes": processes,
            "fusion_version": fusion.version,
            "gpu": fusion.gpu_name,
            "engine": snapshot["engine"],
        },
        "baseline": {
            "seconds": baseline_seconds,
            "throughput_rps": baseline_rps,
        },
        "serving": {
            "seconds": serving_seconds,
            "throughput_rps": serving_rps,
            "hit_rate": snapshot["plan_cache"]["hit_rate"],
            "cache": snapshot["plan_cache"],
            "latency_ms": {
                "p50": latency.get("p50", 0.0),
                "p95": latency.get("p95", 0.0),
                "p99": latency.get("p99", 0.0),
                "mean": latency.get("mean", 0.0),
            },
            "batches": batches,
        },
        "speedup": (serving_rps / baseline_rps) if baseline_rps else 0.0,
        "bit_identical": (mismatches == 0) if check_identity else None,
        "mismatches": mismatches if check_identity else None,
    }

"""The pipeline registry: named, shape-polymorphic pipeline builders.

A serving process registers each pipeline **once** under a stable name
and thereafter addresses it by name per request.  Builders are shape
polymorphic (``build(width, height) -> Pipeline``), matching the
application modules (:mod:`repro.apps`): a request's geometry is
inferred from the arrays it binds, so one registered pipeline serves
any image size, and each distinct geometry compiles exactly one plan
(the plan cache keys on the built graph's structural signature, which
embeds the geometry).

Built graphs are memoized per ``(name, width, height)`` under a lock —
building and signing a graph is cheap but not free, and the registry
sits on the per-request hot path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Tuple

from repro.dsl.pipeline import Pipeline
from repro.graph.dag import KernelGraph

__all__ = [
    "DEFAULT_APP_PARAMS",
    "PipelineEntry",
    "PipelineRegistry",
    "RegistryError",
    "default_registry",
]


class RegistryError(KeyError):
    """Raised for unknown or duplicate pipeline names."""


@dataclass
class PipelineEntry:
    """One registered pipeline: a named builder plus default geometry.

    ``params`` are the pipeline's default scalar-parameter bindings
    (e.g. the enhancement app's ``gamma``); per-request parameters are
    merged on top, so a request only names what it overrides.
    """

    name: str
    build: Callable[[int, int], Pipeline]
    width: int
    height: int
    channels: int = 1
    params: Dict[str, float] = field(default_factory=dict)
    _graphs: Dict[Tuple[int, int], KernelGraph] = field(
        default_factory=dict, repr=False
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def graph(self, width: int | None = None, height: int | None = None) -> KernelGraph:
        """The dependence DAG at the given (or default) geometry, memoized.

        Memoization also pins the graph object, which keeps the tape
        engine's per-graph weak caches (plans, grid stores) alive for
        the lifetime of the registry — a long-lived serving process
        never recompiles a geometry it has already seen.
        """
        key = (width or self.width, height or self.height)
        with self._lock:
            graph = self._graphs.get(key)
            if graph is None:
                graph = self.build(*key).build()
                self._graphs[key] = graph
            return graph

    def signature(self, width: int | None = None, height: int | None = None) -> str:
        """Structural signature of the graph at the given geometry."""
        return self.graph(width, height).structural_signature()


class PipelineRegistry:
    """Named pipelines available to the serving runtime."""

    def __init__(self) -> None:
        self._entries: Dict[str, PipelineEntry] = {}
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        build: Callable[[int, int], Pipeline],
        width: int,
        height: int,
        channels: int = 1,
        params: Dict[str, float] | None = None,
    ) -> PipelineEntry:
        """Register a pipeline builder under ``name``.

        Re-registering an existing name is an error — silent
        redefinition under live traffic would be a footgun; deregister
        first if hot-swapping is really intended.
        """
        entry = PipelineEntry(
            name, build, width, height, channels, dict(params or {})
        )
        with self._lock:
            if name in self._entries:
                raise RegistryError(f"pipeline {name!r} already registered")
            self._entries[name] = entry
        return entry

    def deregister(self, name: str) -> None:
        with self._lock:
            if name not in self._entries:
                raise RegistryError(f"unknown pipeline {name!r}")
            del self._entries[name]

    def get(self, name: str) -> PipelineEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise RegistryError(f"unknown pipeline {name!r}; known: {known}")
        return entry

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def default_registry(
    include_extensions: bool = False,
    apps: Iterable[str] | None = None,
) -> PipelineRegistry:
    """A registry pre-loaded with the paper's six applications.

    ``include_extensions`` adds the extension apps (Canny, DoG);
    ``apps`` restricts to a subset by name.  Apps with scalar runtime
    parameters get the default bindings their example programs use, so
    a bare request is always executable.
    """
    from repro.apps import ALL_APPS, APPLICATIONS

    registry = PipelineRegistry()
    pool = ALL_APPS if include_extensions else APPLICATIONS
    for name, spec in pool.items():
        if apps is not None and name not in apps:
            continue
        registry.register(
            name,
            spec.build,
            spec.width,
            spec.height,
            spec.channels,
            params=DEFAULT_APP_PARAMS.get(name),
        )
    return registry


#: Default scalar-parameter bindings per application — the values the
#: example programs use (``examples/``), so every registered app serves
#: without a request-supplied parameter set.
DEFAULT_APP_PARAMS: Dict[str, Dict[str, float]] = {
    "Enhance": {"gamma": 0.8},
    "Canny": {"threshold": 400.0},
    "DoG": {"tau": 4.0},
}

"""Serving metrics: counters, gauges, and latency histograms.

A deliberately small, dependency-free instrumentation layer in the
style of a Prometheus client: named instruments registered in a
:class:`Metrics` registry, each thread-safe, all exported through one
:meth:`Metrics.snapshot` call that returns plain dictionaries (JSON
serializable, stable key order) — the payload behind
``ServingRuntime.metrics_snapshot()`` and the ``serve`` CLI output.

Histograms keep a bounded reservoir of recent samples (newest-wins
ring buffer) next to exact count/sum/min/max accumulators, so p50/p95/
p99 reflect recent traffic while totals stay exact over the process
lifetime.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "StateGauge",
    "merge_snapshots",
]


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that can move both ways (queue depth, cache size)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class StateGauge:
    """A gauge whose value is a symbolic state string, with transition
    counts — the circuit-breaker ``closed``/``half_open``/``open``
    export, where an averaged number would be meaningless."""

    def __init__(self, name: str, initial: str = ""):
        self.name = name
        self._state = initial
        self._transitions = 0
        self._lock = threading.Lock()

    def set(self, state: str) -> None:
        with self._lock:
            if state != self._state:
                self._state = state
                self._transitions += 1

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"state": self._state, "transitions": self._transitions}


class Histogram:
    """Latency histogram: exact totals + a sample reservoir for quantiles.

    The reservoir is a fixed-size ring buffer — under sustained load the
    quantiles describe the most recent ``capacity`` observations, which
    is the operationally useful window for p95/p99 dashboards.
    """

    def __init__(self, name: str, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("histogram capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._samples: List[float] = []
        self._cursor = 0
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._samples) < self.capacity:
                self._samples.append(value)
            else:
                self._samples[self._cursor] = value
                self._cursor = (self._cursor + 1) % self.capacity

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained samples.

        Nearest-rank on the sorted reservoir; 0.0 when empty (a
        dashboard-friendly sentinel — check ``count`` to distinguish).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            count = self._count
            total = self._sum
            lo = self._min
            hi = self._max
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class Metrics:
    """A named registry of instruments with one-call export.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return, so call
    sites never coordinate registration order.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._states: Dict[str, StateGauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(name)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(name)
                self._gauges[name] = instrument
            return instrument

    def state_gauge(self, name: str, initial: str = "") -> StateGauge:
        with self._lock:
            instrument = self._states.get(name)
            if instrument is None:
                instrument = StateGauge(name, initial)
                self._states[name] = instrument
            return instrument

    def histogram(self, name: str, capacity: int = 4096) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(name, capacity)
                self._histograms[name] = instrument
            return instrument

    def snapshot(self) -> Dict[str, Dict]:
        """Every instrument's current state as plain dictionaries."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            states = dict(self._states)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].snapshot() for name in sorted(counters)
            },
            "gauges": {
                name: gauges[name].snapshot() for name in sorted(gauges)
            },
            "states": {
                name: states[name].snapshot() for name in sorted(states)
            },
            "histograms": {
                name: histograms[name].snapshot()
                for name in sorted(histograms)
            },
        }


#: State-gauge merge order: the fleet view reports the most degraded
#: state any shard is in (breaker semantics: one open breaker matters).
_STATE_RANK = {"": 0, "closed": 0, "half_open": 1, "open": 2}


def merge_snapshots(snapshots: Sequence[Dict[str, Dict]]) -> Dict[str, Dict]:
    """Aggregate per-process :meth:`Metrics.snapshot` dicts into one.

    The fleet-wide view of sharded serving: counters and gauges sum,
    state gauges report the most degraded state (transitions summed),
    histograms merge their exact accumulators — ``count``/``sum`` add,
    ``min``/``max`` extremize, ``mean`` is recomputed.  Percentiles are
    **count-weighted averages** of the per-shard reservoir percentiles:
    each shard only keeps its own recent samples, so the merged pXX is
    an approximation, clearly good enough for a dashboard and clearly
    not a re-ranked global quantile.
    """
    merged: Dict[str, Dict] = {
        "counters": {},
        "gauges": {},
        "states": {},
        "histograms": {},
    }
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            merged["gauges"][name] = merged["gauges"].get(name, 0.0) + value
        for name, state in snapshot.get("states", {}).items():
            seen = merged["states"].get(name)
            if seen is None:
                merged["states"][name] = dict(state)
            else:
                seen["transitions"] += state.get("transitions", 0)
                if _STATE_RANK.get(state.get("state", ""), 0) > _STATE_RANK.get(
                    seen.get("state", ""), 0
                ):
                    seen["state"] = state["state"]
        for name, hist in snapshot.get("histograms", {}).items():
            seen = merged["histograms"].get(name)
            if seen is None:
                merged["histograms"][name] = dict(hist)
                continue
            count, more = seen["count"], hist["count"]
            total = count + more
            for q in ("p50", "p95", "p99"):
                if total:
                    seen[q] = (seen[q] * count + hist[q] * more) / total
            seen["count"] = total
            seen["sum"] += hist["sum"]
            seen["mean"] = (seen["sum"] / total) if total else 0.0
            if more:
                seen["min"] = min(seen["min"], hist["min"]) if count else hist["min"]
                seen["max"] = max(seen["max"], hist["max"]) if count else hist["max"]
    return {
        section: {name: values[name] for name in sorted(values)}
        for section, values in merged.items()
    }

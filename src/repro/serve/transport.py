"""Zero-copy image-plane transport over POSIX shared memory.

The sharded serving tier (:mod:`repro.serve.sharding`) moves each
request's input planes to a worker process and the result planes back.
Pickling ``float64`` arrays through a pipe would copy every plane
twice (serialize + deserialize); this module ships them through
:mod:`multiprocessing.shared_memory` instead, so the only bytes that
cross the pipe are a small **descriptor** — segment name plus
``(key, shape, dtype, offset)`` per array — and the planes themselves
are written once into a mapped segment and read in place on the other
side.

Two pieces:

* :class:`SegmentPool` — reusable shared-memory segments in
  power-of-two size classes.  Serving traffic is repetitive (same
  pipelines, same geometries), so after warm-up every request finds a
  segment of the right class and **no per-request allocation or
  kernel round-trip for segment creation happens at all**.  ``close``
  unlinks everything the pool created.
* :func:`pack_arrays` / :func:`unpack_arrays` — write a dict of arrays
  into one pooled segment (64-byte aligned, C-contiguous ``float64``)
  and map them back as zero-copy NumPy views.

**Resource-tracker discipline.**  Until Python 3.13,
``SharedMemory(name=...)`` *attaches* register the segment with the
``multiprocessing`` resource tracker exactly as creates do.  Parent
and workers share one tracker process (the fd is inherited), whose
ledger is a *set* of names — an attach-side registration is a silent
duplicate, and the matching automatic unregister at close would erase
the creator's entry and provoke ``KeyError`` noise (or a double
unlink) at shutdown.  :func:`attach_segment` therefore suppresses the
tracker registration for attaches; every segment is tracked exactly
once, by its creator, and unlinked exactly once.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "SegmentDescriptor",
    "SegmentPool",
    "attach_segment",
    "pack_arrays",
    "unpack_arrays",
]

#: Byte alignment of each array within a segment — one cache line, so
#: planes never share a line across the process boundary.
_ALIGN = 64

#: Smallest segment the pool creates; tiny requests share one class.
_MIN_SEGMENT_BYTES = 1 << 12


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


#: The wire format of one packed segment: the segment's name plus one
#: ``(key, shape, dtype_str, offset)`` tuple per array.  Plain tuples —
#: the descriptor crosses a pipe on every request and must pickle fast.
SegmentDescriptor = Tuple[str, Tuple[Tuple[str, Tuple[int, ...], str, int], ...]]


@contextmanager
def _untracked_registration() -> Iterator[None]:
    """Suppress resource-tracker registration inside the scope.

    See the module docstring: attaches must not re-register a segment
    the creator already tracks.  The patch is process-global, so a lock
    serializes concurrent attaches (they are rare — the pool and the
    per-segment attach caches make attaching a warm-up cost).
    """
    original = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None  # type: ignore
    try:
        yield
    finally:
        resource_tracker.register = original


_ATTACH_LOCK = threading.Lock()


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without double-registering it."""
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    with _ATTACH_LOCK, _untracked_registration():
        return shared_memory.SharedMemory(name=name)


class _PooledSegment:
    """One pool-owned segment: the mapping plus its size class."""

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int):
        self.shm = shm
        self.capacity = capacity

    @property
    def name(self) -> str:
        return self.shm.name


class SegmentPool:
    """Reusable shared-memory segments in power-of-two size classes.

    ``acquire(nbytes)`` returns a free segment of at least ``nbytes``
    (creating one only when no free segment fits); ``release`` returns
    it for reuse.  The pool never shrinks — serving traffic is
    steady-state repetitive, so the high-water set of segments *is* the
    working set.  ``close`` unlinks every segment the pool created;
    the pool is thread-safe throughout.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: List[_PooledSegment] = []
        self._all: List[_PooledSegment] = []
        self._closed = False
        self.created = 0
        self.reused = 0

    @staticmethod
    def _size_class(nbytes: int) -> int:
        size = _MIN_SEGMENT_BYTES
        while size < nbytes:
            size <<= 1
        return size

    def acquire(self, nbytes: int) -> _PooledSegment:
        """A segment holding at least ``nbytes``, reused when possible."""
        needed = self._size_class(max(1, nbytes))
        with self._lock:
            if self._closed:
                raise RuntimeError("segment pool is closed")
            for index, segment in enumerate(self._free):
                if segment.capacity >= needed:
                    self.reused += 1
                    return self._free.pop(index)
            self.created += 1
        # Create outside the lock: shm_open is a syscall.
        segment = _PooledSegment(
            shared_memory.SharedMemory(create=True, size=needed), needed
        )
        with self._lock:
            if self._closed:
                # Lost the race with close(): do not leak the mapping.
                segment.shm.close()
                segment.shm.unlink()
                raise RuntimeError("segment pool is closed")
            self._all.append(segment)
        return segment

    def release(self, segment: _PooledSegment) -> None:
        with self._lock:
            if not self._closed:
                self._free.append(segment)

    def close(self) -> None:
        """Unlink every segment this pool ever created (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._all)
            self._all.clear()
            self._free.clear()
        for segment in segments:
            try:
                segment.shm.close()
            except Exception:
                pass  # a live view holds the buffer; unlink still works
            try:
                segment.shm.unlink()
            except FileNotFoundError:
                pass  # already unlinked by the other side's cleanup

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "segments": len(self._all),
                "bytes": sum(s.capacity for s in self._all),
                "created": self.created,
                "reused": self.reused,
            }

    def __enter__(self) -> "SegmentPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def pack_arrays(
    arrays: Dict[str, np.ndarray], pool: SegmentPool
) -> Tuple[SegmentDescriptor, _PooledSegment]:
    """Write ``arrays`` into one pooled segment; returns its descriptor.

    Each array is stored C-contiguous at a 64-byte-aligned offset.  The
    caller must :meth:`SegmentPool.release` the returned segment once
    the peer has consumed it (the sharded dispatcher's per-worker
    round-trip serialization makes that point well defined).
    """
    layout: List[Tuple[str, Tuple[int, ...], str, int]] = []
    offset = 0
    contiguous: Dict[str, np.ndarray] = {}
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        contiguous[key] = array
        layout.append((key, array.shape, array.dtype.str, offset))
        offset = _aligned(offset + array.nbytes)
    segment = pool.acquire(offset or 1)
    for key, shape, dtype, start in layout:
        array = contiguous[key]
        view = np.ndarray(
            shape, dtype=dtype, buffer=segment.shm.buf, offset=start
        )
        view[...] = array
    return (segment.name, tuple(layout)), segment


def unpack_arrays(
    descriptor: SegmentDescriptor,
    shm: shared_memory.SharedMemory,
) -> Dict[str, np.ndarray]:
    """Map a descriptor's arrays as zero-copy views over ``shm``.

    The views alias the segment: copy (``np.array(view)``) anything
    that must outlive the segment's next reuse.
    """
    name, layout = descriptor
    if shm.name.lstrip("/") != name.lstrip("/"):
        raise ValueError(
            f"descriptor names segment {name!r} but {shm.name!r} was mapped"
        )
    return {
        key: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        for key, shape, dtype, offset in layout
    }

"""The compiled-plan cache: fuse once, plan once, serve forever.

Every entry point of the reproduction used to re-fuse and re-plan per
call; the whole point of the paper's compile-time analysis is that the
result is **reusable** — the fused partition and the compiled
instruction tapes depend only on the pipeline's structure, the input
geometry/dtype, the execution engine, and the fusion configuration.
:class:`PlanCache` materializes exactly that key:

    (graph structural signature, input shapes/dtypes, engine,
     fusion configuration)

and holds the fused :class:`~repro.graph.partition.Partition` together
with the compiled :class:`~repro.backend.plan.PartitionPlan` — plus,
for ``engine="native"``, the loaded native-kernel plan whose ``.so``
artifact makes a hit skip the C compile too — under LRU eviction.  Two *separately built* but structurally identical pipelines
hash to the same entry (see :mod:`repro.ir.signature`); changing a mask
constant, an image shape, or any fusion knob misses.

Concurrent requests for the same missing key are **coalesced**: one
thread compiles, the rest wait on the in-flight build and share its
result — a cold cache under a request storm still compiles each plan
exactly once.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.backend.plan import PartitionPlan
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition

__all__ = [
    "CachedPlan",
    "FusionSettings",
    "PlanCache",
    "inputs_signature",
    "plan_key",
]


@dataclass(frozen=True)
class FusionSettings:
    """The fusion half of a plan-cache key.

    ``version`` selects the fusion engine (``baseline`` / ``basic`` /
    ``optimized`` / ...), ``gpu`` the hardware model feeding the benefit
    estimate, and the three floats are the :class:`~repro.model.benefit.
    BenefitConfig` constants.  Together they determine the partition a
    graph fuses into, so they are part of plan identity.
    """

    version: str = "optimized"
    gpu_name: str = "GTX680"
    c_mshared: float = 2.0
    epsilon: float = 1e-3
    gamma: float = 0.0
    is_units: str = "images"
    naive_borders: bool = False

    def key(self) -> tuple:
        return (
            self.version,
            self.gpu_name,
            self.c_mshared,
            self.epsilon,
            self.gamma,
            self.is_units,
            self.naive_borders,
        )


def inputs_signature(inputs: Dict[str, np.ndarray]) -> tuple:
    """Canonical (name, shape, dtype) triples of a request's arrays."""
    return tuple(
        (name, tuple(np.shape(inputs[name])), np.asarray(inputs[name]).dtype.str)
        for name in sorted(inputs)
    )


def plan_key(
    graph_signature: str,
    inputs: Dict[str, np.ndarray],
    engine: str,
    fusion: FusionSettings,
) -> tuple:
    """The full cache key of one (pipeline, request shape, config)."""
    return (graph_signature, inputs_signature(inputs), engine, fusion.key())


@dataclass
class CachedPlan:
    """One cache entry: the fused partition plus its compiled plan.

    ``plan`` is ``None`` only for ``engine="recursive"`` entries — the
    bottom rung of the degradation ladder deliberately skips tape
    compilation (its failure domain must not include the tape
    compiler) and executes the recursive walk from ``graph`` +
    ``partition`` instead.
    """

    key: tuple
    graph: KernelGraph
    partition: Partition
    plan: Optional[PartitionPlan]
    #: Per-stage compile-time breakdown in milliseconds:
    #: ``fuse`` (benefit estimate + partitioning) and ``plan`` (tape
    #: compilation), the costs the cache amortizes across requests.
    timings_ms: Dict[str, float] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)
    serves: int = 0
    #: True when the static plan verifier (:mod:`repro.analysis.verifier`)
    #: checked this entry at insert time (``REPRO_VALIDATE=strict``).
    verified: bool = False
    #: Compiled-native execution plan
    #: (:class:`repro.backend.native_exec.NativePartitionPlan`) carried
    #: alongside the tape plan when the runtime serves
    #: ``engine="native"``; ``None`` otherwise.  Because the native
    #: plan holds the loaded ``.so`` artifact, a cache hit on this
    #: entry skips fusion, tape planning *and* the C compile.
    native_plan: Optional[object] = None
    #: The execution engine this entry was built for (``tape`` /
    #: ``native`` / ``recursive``) — also the third key component.
    engine: str = "tape"


class _InFlight:
    """A build in progress; waiters block on ``event``."""

    def __init__(self) -> None:
        self.event = threading.Event()
        self.entry: Optional[CachedPlan] = None
        self.error: Optional[BaseException] = None


class PlanCache:
    """LRU cache of :class:`CachedPlan` entries with hit/miss stats."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, CachedPlan]" = OrderedDict()
        self._building: Dict[tuple, _InFlight] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0
        self.quarantined = 0

    def get(self, key: tuple) -> Optional[CachedPlan]:
        """The cached entry for ``key``, or ``None`` (counts a hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            entry.serves += 1
            return entry

    def get_or_build(
        self, key: tuple, builder: Callable[[], CachedPlan]
    ) -> Tuple[CachedPlan, bool]:
        """The entry for ``key``, building it at most once per process.

        Returns ``(entry, hit)`` where ``hit`` is False only for the
        thread that actually ran ``builder``.  Threads that arrive while
        a build is in flight wait for it and count as ``coalesced``
        hits — they paid latency, but no compile.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    entry.serves += 1
                    return entry, True
                pending = self._building.get(key)
                if pending is None:
                    pending = _InFlight()
                    self._building[key] = pending
                    self.misses += 1
                    building = True
                else:
                    building = False
            if not building:
                pending.event.wait()
                if pending.error is not None:
                    raise pending.error
                if pending.entry is not None:
                    with self._lock:
                        self.hits += 1
                        self.coalesced += 1
                        pending.entry.serves += 1
                    return pending.entry, True
                continue  # builder failed silently? retry from scratch
            try:
                entry = builder()
            except BaseException as err:
                with self._lock:
                    self._building.pop(key, None)
                pending.error = err
                pending.event.set()
                raise
            entry.serves += 1
            with self._lock:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                self._building.pop(key, None)
            pending.entry = entry
            pending.event.set()
            return entry, False

    def quarantine(self, key: tuple) -> bool:
        """Evict a plan that failed at verify or execute time.

        A poisoned or miscompiled entry must never be served again: the
        resilience layer calls this before rebuilding, so the next
        lookup misses and recompiles from scratch.  Returns whether an
        entry was actually present (idempotent under racing callers).
        """
        with self._lock:
            removed = self._entries.pop(key, None)
            if removed is not None:
                self.quarantined += 1
            return removed is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits (including coalesced waits) over all lookups."""
        total = self.hits + self.misses
        return (self.hits / total) if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "quarantined": self.quarantined,
                "hit_rate": (
                    self.hits / (self.hits + self.misses)
                    if (self.hits + self.misses)
                    else 0.0
                ),
            }

"""The compiled-plan cache: fuse once, plan once, serve forever.

Every entry point of the reproduction used to re-fuse and re-plan per
call; the whole point of the paper's compile-time analysis is that the
result is **reusable** — the fused partition and the compiled
instruction tapes depend only on the pipeline's structure, the input
geometry/dtype, the execution engine, and the fusion configuration.
:class:`PlanCache` materializes exactly that key:

    (graph structural signature, input shapes/dtypes, engine,
     fusion configuration)

and holds the fused :class:`~repro.graph.partition.Partition` together
with the compiled :class:`~repro.backend.plan.PartitionPlan` — plus,
for ``engine="native"``, the loaded native-kernel plan whose ``.so``
artifact makes a hit skip the C compile too — under LRU eviction.  Two *separately built* but structurally identical pipelines
hash to the same entry (see :mod:`repro.ir.signature`); changing a mask
constant, an image shape, or any fusion knob misses.

Concurrent requests for the same missing key are **coalesced**: one
thread compiles, the rest wait on the in-flight build and share its
result — a cold cache under a request storm still compiles each plan
exactly once.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.backend.plan import PartitionPlan
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition

__all__ = [
    "CACHE_KEYINGS",
    "CachedPlan",
    "FusionSettings",
    "PlanCache",
    "inputs_signature",
    "inputs_structure",
    "plan_key",
]

#: The two plan-cache keying modes: ``"shape"`` keys on exact input
#: shapes + dtypes (every entry is shape-specialized), ``"structure"``
#: keys on dtypes only — shapes are passed at call time to a
#: shape-polymorphic native plan, so mixed-resolution traffic over one
#: pipeline structure shares a single entry.
CACHE_KEYINGS = ("shape", "structure")


@dataclass(frozen=True)
class FusionSettings:
    """The fusion half of a plan-cache key.

    ``version`` selects the fusion engine (``baseline`` / ``basic`` /
    ``optimized`` / ...), ``gpu`` the hardware model feeding the benefit
    estimate, and the three floats are the :class:`~repro.model.benefit.
    BenefitConfig` constants.  Together they determine the partition a
    graph fuses into, so they are part of plan identity.
    """

    version: str = "optimized"
    gpu_name: str = "GTX680"
    c_mshared: float = 2.0
    epsilon: float = 1e-3
    gamma: float = 0.0
    is_units: str = "images"
    naive_borders: bool = False

    def key(self) -> tuple:
        return (
            self.version,
            self.gpu_name,
            self.c_mshared,
            self.epsilon,
            self.gamma,
            self.is_units,
            self.naive_borders,
        )


def inputs_signature(inputs: Dict[str, np.ndarray]) -> tuple:
    """Canonical (name, shape, dtype) triples of a request's arrays."""
    return tuple(
        (name, tuple(np.shape(inputs[name])), np.asarray(inputs[name]).dtype.str)
        for name in sorted(inputs)
    )


def inputs_structure(inputs: Dict[str, np.ndarray]) -> tuple:
    """Shape-agnostic (name, dtype) pairs — the structure-keyed flavour
    of :func:`inputs_signature` (shapes are carried by the request and
    bound at call time by the shape-polymorphic plan)."""
    return tuple(
        (name, np.asarray(inputs[name]).dtype.str)
        for name in sorted(inputs)
    )


def plan_key(
    graph_signature: str,
    inputs: Dict[str, np.ndarray],
    engine: str,
    fusion: FusionSettings,
    keying: str = "shape",
) -> tuple:
    """The full cache key of one (pipeline, request, config).

    ``keying="shape"`` (the default) keys on exact input shapes;
    ``keying="structure"`` elides them, so every resolution of one
    pipeline structure maps to the same entry.
    """
    if keying not in CACHE_KEYINGS:
        raise ValueError(
            f"unknown cache keying {keying!r}; expected one of "
            f"{CACHE_KEYINGS}"
        )
    signature = (
        inputs_structure(inputs)
        if keying == "structure"
        else inputs_signature(inputs)
    )
    return (graph_signature, signature, engine, fusion.key())


def _structure_of(key: tuple, structure_key: Optional[str]) -> tuple:
    """The shape-agnostic projection of a cache key.

    Used to split miss accounting: a missing key whose projection was
    seen before is a *shape* miss (same pipeline structure, new
    geometry) — exactly the misses structure keying eliminates.  The
    input triples drop their shape element; ``structure_key`` (the
    graph's :meth:`~repro.graph.dag.KernelGraph.structure_signature`)
    replaces the graph half when the caller provides it — a shape-keyed
    key's own graph signature bakes in the geometry, so it cannot
    identify the structure by itself.  Keys that are not the
    :func:`plan_key` 4-tuple (the cache accepts arbitrary hashable
    keys) project to themselves: each distinct key is its own
    structure, so every miss on them is a structure miss.
    """
    if not (isinstance(key, tuple) and len(key) == 4):
        return (structure_key,) if structure_key is not None else (key,)
    graph_signature, signature, engine, fusion = key
    shapeless = tuple(
        (entry[0], entry[-1]) if len(entry) == 3 else entry
        for entry in signature
    )
    return (structure_key or graph_signature, shapeless, engine, fusion)


@dataclass
class CachedPlan:
    """One cache entry: the fused partition plus its compiled plan.

    ``plan`` is ``None`` only for ``engine="recursive"`` entries — the
    bottom rung of the degradation ladder deliberately skips tape
    compilation (its failure domain must not include the tape
    compiler) and executes the recursive walk from ``graph`` +
    ``partition`` instead.
    """

    key: tuple
    graph: KernelGraph
    partition: Partition
    plan: Optional[PartitionPlan]
    #: Per-stage compile-time breakdown in milliseconds:
    #: ``fuse`` (benefit estimate + partitioning) and ``plan`` (tape
    #: compilation), the costs the cache amortizes across requests.
    timings_ms: Dict[str, float] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)
    serves: int = 0
    #: True when the static plan verifier (:mod:`repro.analysis.verifier`)
    #: checked this entry at insert time (``REPRO_VALIDATE=strict``).
    verified: bool = False
    #: Compiled-native execution plan
    #: (:class:`repro.backend.native_exec.NativePartitionPlan`) carried
    #: alongside the tape plan when the runtime serves
    #: ``engine="native"``; ``None`` otherwise.  Because the native
    #: plan holds the loaded ``.so`` artifact, a cache hit on this
    #: entry skips fusion, tape planning *and* the C compile.
    native_plan: Optional[object] = None
    #: The execution engine this entry was built for (``tape`` /
    #: ``native`` / ``recursive``) — also the third key component.
    engine: str = "tape"


class _InFlight:
    """A build in progress; waiters block on ``event``."""

    def __init__(self) -> None:
        self.event = threading.Event()
        self.entry: Optional[CachedPlan] = None
        self.error: Optional[BaseException] = None


class PlanCache:
    """LRU cache of :class:`CachedPlan` entries with hit/miss stats."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, CachedPlan]" = OrderedDict()
        self._building: Dict[tuple, _InFlight] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Misses split by cause: ``miss_structure`` counts first
        #: sightings of a (pipeline structure, dtypes, engine, fusion)
        #: combination — unavoidable compiles — while ``miss_shape``
        #: counts misses whose structure was already seen (a new
        #: geometry of a known pipeline, or an evicted/quarantined
        #: entry).  Structure-keyed caching turns shape misses into
        #: hits; the split makes that gain directly observable.
        self.miss_structure = 0
        self.miss_shape = 0
        self._seen_structures: set = set()
        self.coalesced = 0
        self.evictions = 0
        self.quarantined = 0

    def _note_miss(self, key: tuple, structure_key: Optional[str]) -> None:
        """Classify one miss (lock held)."""
        self.misses += 1
        structure = _structure_of(key, structure_key)
        if structure in self._seen_structures:
            self.miss_shape += 1
        else:
            self.miss_structure += 1
            self._seen_structures.add(structure)

    def get(
        self, key: tuple, structure_key: Optional[str] = None
    ) -> Optional[CachedPlan]:
        """The cached entry for ``key``, or ``None`` (counts a hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._note_miss(key, structure_key)
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            entry.serves += 1
            return entry

    def get_or_build(
        self,
        key: tuple,
        builder: Callable[[], CachedPlan],
        structure_key: Optional[str] = None,
    ) -> Tuple[CachedPlan, bool]:
        """The entry for ``key``, building it at most once per process.

        Returns ``(entry, hit)`` where ``hit`` is False only for the
        thread that actually ran ``builder``.  Threads that arrive while
        a build is in flight wait for it and count as ``coalesced``
        hits — they paid latency, but no compile.  ``structure_key``
        (when given) feeds the miss_structure/miss_shape split.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    entry.serves += 1
                    return entry, True
                pending = self._building.get(key)
                if pending is None:
                    pending = _InFlight()
                    self._building[key] = pending
                    self._note_miss(key, structure_key)
                    building = True
                else:
                    building = False
            if not building:
                pending.event.wait()
                if pending.error is not None:
                    raise pending.error
                if pending.entry is not None:
                    with self._lock:
                        self.hits += 1
                        self.coalesced += 1
                        pending.entry.serves += 1
                    return pending.entry, True
                continue  # builder failed silently? retry from scratch
            try:
                entry = builder()
            except BaseException as err:
                with self._lock:
                    self._building.pop(key, None)
                pending.error = err
                pending.event.set()
                raise
            entry.serves += 1
            with self._lock:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                self._building.pop(key, None)
            pending.entry = entry
            pending.event.set()
            return entry, False

    def quarantine(self, key: tuple) -> bool:
        """Evict a plan that failed at verify or execute time.

        A poisoned or miscompiled entry must never be served again: the
        resilience layer calls this before rebuilding, so the next
        lookup misses and recompiles from scratch.  Returns whether an
        entry was actually present (idempotent under racing callers).
        """
        with self._lock:
            removed = self._entries.pop(key, None)
            if removed is not None:
                self.quarantined += 1
            return removed is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits (including coalesced waits) over all lookups."""
        total = self.hits + self.misses
        return (self.hits / total) if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "miss_structure": self.miss_structure,
                "miss_shape": self.miss_shape,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "quarantined": self.quarantined,
                "hit_rate": (
                    self.hits / (self.hits + self.misses)
                    if (self.hits + self.misses)
                    else 0.0
                ),
            }

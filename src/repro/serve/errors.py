"""Typed exception hierarchy of the serving layer.

Every failure the serving stack can hand back to a caller derives from
:class:`ServeError`, so a client distinguishes *what went wrong* by
type instead of parsing ``RuntimeError`` strings:

* :class:`RuntimeClosed` — the runtime (or its scheduler) stopped
  accepting work; :class:`SchedulerClosed` is its scheduler-level
  refinement, kept for backward compatibility;
* :class:`QueueFull` — the bounded request queue stayed full
  (:data:`BackpressureError` is the historical alias);
* :class:`DeadlineExceeded` — a request's latency budget expired
  (still a :class:`TimeoutError`, so generic timeout handling works);
  :class:`StageTimeout` narrows it to one pipeline stage exceeding its
  configured per-stage budget;
* :class:`PlanBuildError` — fusing/compiling a plan failed; carries
  the failing ``stage`` and ``engine`` so the resilience layer can
  route the retry down the degradation ladder;
* :class:`WorkerDied` — a sharded-serving worker process died while a
  request was in flight; the dispatcher retries on a sibling shard
  (:mod:`repro.serve.sharding`), so callers only ever see this when
  every candidate shard is gone;
* :class:`RemoteServeError` — a failure raised *inside* a worker
  process, re-raised parent-side with the original type's name
  (exception objects do not cross the pipe; their identity does).

:class:`ServeError` deliberately subclasses :class:`RuntimeError`:
every exception here used to *be* a bare ``RuntimeError``, and callers
that caught that continue to work.
"""

from __future__ import annotations

__all__ = [
    "BackpressureError",
    "DeadlineExceeded",
    "PlanBuildError",
    "QueueFull",
    "RemoteServeError",
    "RuntimeClosed",
    "SchedulerClosed",
    "ServeError",
    "StageTimeout",
    "WorkerDied",
]


class ServeError(RuntimeError):
    """Base class of every serving-layer failure."""


class RuntimeClosed(ServeError):
    """Work was submitted to a runtime that stopped accepting it."""


class SchedulerClosed(RuntimeClosed):
    """Submission after scheduler shutdown, or a request dropped by a
    hard close."""


class QueueFull(ServeError):
    """The bounded queue is full and the caller declined to wait."""


#: Historical name of :class:`QueueFull`; existing callers catch this.
BackpressureError = QueueFull


class DeadlineExceeded(ServeError, TimeoutError):
    """The request's latency budget expired before completion."""


class StageTimeout(DeadlineExceeded):
    """One pipeline stage exceeded its configured per-stage budget.

    ``stage`` names the stage (``fuse`` / ``plan`` / ``compile`` /
    ``execute``); ``timeout_s`` is the budget that was exceeded.
    """

    def __init__(self, stage: str, timeout_s: float):
        super().__init__(f"stage {stage!r} exceeded its {timeout_s:g}s budget")
        self.stage = stage
        self.timeout_s = timeout_s


class WorkerDied(ServeError):
    """A sharded-serving worker process died with a request in flight.

    ``worker_id`` names the shard whose process disappeared.  The
    sharded dispatcher treats this as retriable (sibling shards serve
    the request while the worker respawns); it reaches callers only
    when no live shard remains.
    """

    def __init__(self, worker_id: int, message: str | None = None):
        super().__init__(message or f"shard worker {worker_id} died")
        self.worker_id = worker_id


class RemoteServeError(ServeError):
    """A worker-side failure, re-raised in the parent process.

    ``error_type`` is the class name of the original exception (the
    object itself stays in the worker — arbitrary exceptions do not
    round-trip a pipe reliably); the message is preserved verbatim.
    """

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


class PlanBuildError(ServeError):
    """Fusing or compiling a plan failed.

    ``stage`` is the stage that failed (``fuse`` / ``plan`` /
    ``compile`` / ``verify``) and ``engine`` the execution engine the
    plan was being built for; the original failure is chained as
    ``__cause__``.
    """

    def __init__(self, stage: str, engine: str, message: str):
        super().__init__(message)
        self.stage = stage
        self.engine = engine

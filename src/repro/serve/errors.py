"""Typed exception hierarchy of the serving layer.

Every failure the serving stack can hand back to a caller derives from
:class:`ServeError`, so a client distinguishes *what went wrong* by
type instead of parsing ``RuntimeError`` strings:

* :class:`RuntimeClosed` — the runtime (or its scheduler) stopped
  accepting work; :class:`SchedulerClosed` is its scheduler-level
  refinement, kept for backward compatibility;
* :class:`QueueFull` — the bounded request queue stayed full
  (:data:`BackpressureError` is the historical alias);
* :class:`DeadlineExceeded` — a request's latency budget expired
  (still a :class:`TimeoutError`, so generic timeout handling works);
  :class:`StageTimeout` narrows it to one pipeline stage exceeding its
  configured per-stage budget;
* :class:`PlanBuildError` — fusing/compiling a plan failed; carries
  the failing ``stage`` and ``engine`` so the resilience layer can
  route the retry down the degradation ladder.

:class:`ServeError` deliberately subclasses :class:`RuntimeError`:
every exception here used to *be* a bare ``RuntimeError``, and callers
that caught that continue to work.
"""

from __future__ import annotations

__all__ = [
    "BackpressureError",
    "DeadlineExceeded",
    "PlanBuildError",
    "QueueFull",
    "RuntimeClosed",
    "SchedulerClosed",
    "ServeError",
    "StageTimeout",
]


class ServeError(RuntimeError):
    """Base class of every serving-layer failure."""


class RuntimeClosed(ServeError):
    """Work was submitted to a runtime that stopped accepting it."""


class SchedulerClosed(RuntimeClosed):
    """Submission after scheduler shutdown, or a request dropped by a
    hard close."""


class QueueFull(ServeError):
    """The bounded queue is full and the caller declined to wait."""


#: Historical name of :class:`QueueFull`; existing callers catch this.
BackpressureError = QueueFull


class DeadlineExceeded(ServeError, TimeoutError):
    """The request's latency budget expired before completion."""


class StageTimeout(DeadlineExceeded):
    """One pipeline stage exceeded its configured per-stage budget.

    ``stage`` names the stage (``fuse`` / ``plan`` / ``compile`` /
    ``execute``); ``timeout_s`` is the budget that was exceeded.
    """

    def __init__(self, stage: str, timeout_s: float):
        super().__init__(f"stage {stage!r} exceeded its {timeout_s:g}s budget")
        self.stage = stage
        self.timeout_s = timeout_s


class PlanBuildError(ServeError):
    """Fusing or compiling a plan failed.

    ``stage`` is the stage that failed (``fuse`` / ``plan`` /
    ``compile`` / ``verify``) and ``engine`` the execution engine the
    plan was being built for; the original failure is chained as
    ``__cause__``.
    """

    def __init__(self, stage: str, engine: str, message: str):
        super().__init__(message)
        self.stage = stage
        self.engine = engine

"""Deterministic fault injection at named sites of the serving path.

Every degradation path of the resilience layer — retry, circuit
breaker, engine downgrade, plan quarantine, per-stage timeout — exists
to absorb failures that are rare in practice.  This module makes those
failures *reproducible on demand* so each path is testable in CI: a
registry of fault rules, armed programmatically (:func:`inject` /
:func:`fault_injection`) or through the ``REPRO_FAULTS`` environment
knob, fires at named **sites** instrumented throughout the stack:

========================  ====================================================
site                      instrumented where
========================  ====================================================
``fuse``                  partitioning a graph (runtime / ``repro.api``)
``plan.compile``          tape compilation (:func:`repro.backend.plan.
                          plan_for_partition` / ``plan_for_block`` miss)
``native.compile``        native-plan build (:mod:`repro.backend.native_exec`)
``cc.compile``            the C compiler invocation (:mod:`repro.backend.
                          cpu_exec`)
``verify``                strict plan verification (serving cache insert)
``execute``               plan execution (runtime worker / ``repro.api``)
``cache.hit``             a plan-cache hit — ``corrupt`` poisons the served
                          entry, exercising quarantine-and-rebuild
``worker.kill``           sharded-serving dispatch (:mod:`repro.serve.
                          sharding`) — an ``error`` rule SIGKILLs the target
                          worker process instead of raising, exercising
                          death detection, sibling retry, and respawn
========================  ====================================================

``worker.kill`` is checked **parent-side** (the dispatcher kills the
worker it was about to use, then proceeds so detection and recovery
run).  Firing it in the worker would re-arm in every respawned
process — a fresh process re-reads ``REPRO_FAULTS`` — and kill the
fleet in a loop; one parent-held registry keeps the rule's ``*count``
exact.

Three **actions**: ``error`` raises :class:`FaultInjected`, ``slow``
sleeps ``delay_s`` (tripping per-stage timeouts), ``corrupt`` marks a
cache hit poisoned.  Rules fire a bounded number of ``times``, or
deterministically every ``every``-th hit (``every=10`` = a 10% failure
rate with no randomness), so CI runs are bit-for-bit repeatable.

The ``REPRO_FAULTS`` grammar is comma-separated rules::

    site:action[:seconds][*count|@every]

    REPRO_FAULTS=native.compile:error            # every native compile fails
    REPRO_FAULTS=native.compile:error@10         # every 10th fails
    REPRO_FAULTS=execute:slow:0.2*3              # first three executes stall
    REPRO_FAULTS=cache.hit:corrupt*1             # poison one cache hit

Malformed specs raise :class:`repro.envknobs.EnvKnobError` naming the
variable.  The backends reach this module through a ``sys.modules``
probe (see :func:`repro.backend.plan._fault_check`), so a process that
never imports the serving stack pays nothing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.envknobs import FAULTS_ENV, EnvKnobError, faults_env

__all__ = [
    "FAULT_SITES",
    "FaultInjected",
    "FaultRule",
    "armed",
    "check",
    "clear",
    "fault_injection",
    "inject",
    "parse_spec",
    "refresh_from_env",
    "stats",
    "take",
    "take_corruption",
]

#: The instrumented sites, in pipeline order.
FAULT_SITES = (
    "fuse",
    "plan.compile",
    "native.compile",
    "cc.compile",
    "verify",
    "execute",
    "cache.hit",
    "worker.kill",
)

#: The supported actions.
FAULT_ACTIONS = ("error", "slow", "corrupt")


class FaultInjected(RuntimeError):
    """An injected failure; carries the ``site`` it fired at."""

    def __init__(self, site: str, message: str | None = None):
        super().__init__(message or f"injected fault at {site!r}")
        self.site = site


@dataclass
class FaultRule:
    """One armed fault: where it fires, what it does, and how often.

    ``times`` bounds the number of firings (``None`` = unbounded);
    ``every`` makes the rule fire on hits ``every, 2*every, ...`` of
    its site — an exact ``1/every`` failure rate with zero randomness.
    """

    site: str
    action: str = "error"
    delay_s: float = 0.0
    times: int | None = 1
    every: int | None = None
    fired: int = 0
    hits: int = 0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"known: {FAULT_ACTIONS}"
            )
        if self.action == "slow" and self.delay_s <= 0:
            raise ValueError("slow faults need a positive delay_s")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None for unbounded)")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be >= 1")

    def should_fire(self) -> bool:
        """Account one hit; True when the rule fires on it."""
        self.hits += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.every is not None and self.hits % self.every != 0:
            return False
        self.fired += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


class FaultRegistry:
    """Thread-safe store of armed fault rules, programmatic + env."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rules: List[FaultRule] = []
        self._env_rules: List[FaultRule] = []
        self._env_spec: str | None = None
        self._fired: Dict[str, int] = {}
        #: Lock-free fast-path flag: ``check`` is called on hot paths
        #: and must cost one attribute read when nothing is armed.
        self.armed = False

    # -- arming ----------------------------------------------------------

    def inject(self, rule: FaultRule) -> FaultRule:
        with self._lock:
            self._rules.append(rule)
            self.armed = True
        return rule

    def remove(self, rule: FaultRule) -> None:
        with self._lock:
            if rule in self._rules:
                self._rules.remove(rule)
            self._refresh_armed()

    def clear(self) -> None:
        """Disarm every programmatic and env-sourced rule."""
        with self._lock:
            self._rules.clear()
            self._env_rules.clear()
            self._env_spec = None
            self._fired.clear()
            self.armed = False

    def refresh_from_env(self) -> None:
        """(Re)arm the rules named by ``REPRO_FAULTS``.

        Idempotent per spec string: the env rules are rebuilt only when
        the variable changed since the last refresh, so long-lived
        runtimes can call this on every construction for free.
        """
        spec = faults_env()
        with self._lock:
            if spec == self._env_spec:
                return
            self._env_spec = spec
            self._env_rules = parse_spec(spec) if spec else []
            self._refresh_armed()

    def _refresh_armed(self) -> None:
        self.armed = bool(self._rules or self._env_rules)

    # -- firing ----------------------------------------------------------

    def _fire(self, site: str, actions: Tuple[str, ...]) -> FaultRule | None:
        """The first matching armed rule that fires at ``site``."""
        with self._lock:
            for rule in self._rules + self._env_rules:
                if rule.site != site or rule.action not in actions:
                    continue
                if rule.should_fire():
                    self._fired[site] = self._fired.get(site, 0) + 1
                    return rule
            return None

    def check(self, site: str) -> None:
        """Fire any armed ``error``/``slow`` rule at ``site``.

        ``slow`` rules sleep, then fall through to the next rule, so a
        site can be both slowed and failed in one spec.
        """
        if not self.armed:
            return
        rule = self._fire(site, ("slow",))
        if rule is not None:
            time.sleep(rule.delay_s)
        rule = self._fire(site, ("error",))
        if rule is not None:
            raise FaultInjected(site)

    def take_corruption(self, site: str = "cache.hit") -> bool:
        """True when an armed ``corrupt`` rule fires at ``site``."""
        if not self.armed:
            return False
        return self._fire(site, ("corrupt",)) is not None

    def take(self, site: str) -> bool:
        """True when an armed ``error`` rule fires at ``site``.

        The boolean form of :meth:`check` for sites whose failure is an
        *act* rather than an exception — ``worker.kill``'s caller kills
        a process instead of raising.  ``slow`` rules still sleep.
        """
        if not self.armed:
            return False
        rule = self._fire(site, ("slow",))
        if rule is not None:
            time.sleep(rule.delay_s)
        return self._fire(site, ("error",)) is not None

    def stats(self) -> Dict[str, int]:
        """Fired-fault counts per site (the injection ledger)."""
        with self._lock:
            return dict(self._fired)


def parse_spec(spec: str) -> List[FaultRule]:
    """Parse a ``REPRO_FAULTS`` spec into rules.

    Unsuffixed rules fire on every hit of their site; ``*count`` bounds
    the firings; ``@every`` fires deterministically on every
    ``every``-th hit.  Raises :class:`~repro.envknobs.EnvKnobError`
    naming the variable on any malformed rule, so a typo in a
    deployment manifest fails at startup with one clear message.
    """
    rules: List[FaultRule] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        times: int | None = None
        every: int | None = None
        body = chunk
        try:
            if "@" in body:
                body, _, rate = body.partition("@")
                every = int(rate)
            elif "*" in body:
                body, _, count = body.partition("*")
                times = int(count)
            parts = body.split(":")
            if len(parts) == 2:
                site, action = parts
                delay = 0.0
            elif len(parts) == 3:
                site, action, seconds = parts
                delay = float(seconds)
            else:
                raise ValueError("expected site:action[:seconds]")
            rule = FaultRule(
                site=site.strip(),
                action=action.strip(),
                delay_s=delay,
                times=times,
                every=every,
            )
        except ValueError as err:
            raise EnvKnobError(
                f"invalid {FAULTS_ENV} rule {chunk!r}: {err}"
            ) from None
        rules.append(rule)
    return rules


#: The process-wide registry every instrumented site consults.
_REGISTRY = FaultRegistry()


def inject(
    site: str,
    action: str = "error",
    *,
    delay_s: float = 0.0,
    times: int | None = 1,
    every: int | None = None,
) -> FaultRule:
    """Arm one fault rule programmatically; returns it (see
    :meth:`FaultRegistry.remove` via :func:`remove`)."""
    return _REGISTRY.inject(
        FaultRule(
            site=site, action=action, delay_s=delay_s, times=times, every=every
        )
    )


def remove(rule: FaultRule) -> None:
    """Disarm one previously injected rule."""
    _REGISTRY.remove(rule)


def clear() -> None:
    """Disarm everything (tests call this between cases)."""
    _REGISTRY.clear()


def armed() -> bool:
    """Whether any fault rule is currently armed."""
    return _REGISTRY.armed


def check(site: str) -> None:
    """Instrumentation hook: raise/sleep when a rule fires at ``site``."""
    _REGISTRY.check(site)


def take_corruption(site: str = "cache.hit") -> bool:
    """Instrumentation hook for ``corrupt`` rules (plan-cache hits)."""
    return _REGISTRY.take_corruption(site)


def take(site: str) -> bool:
    """Instrumentation hook returning whether an ``error`` rule fired.

    Used by sites whose injected failure is an action the caller
    performs (``worker.kill``) rather than an exception to raise.
    """
    return _REGISTRY.take(site)


def refresh_from_env() -> None:
    """(Re)load the ``REPRO_FAULTS`` environment spec into the registry."""
    _REGISTRY.refresh_from_env()


def stats() -> Dict[str, int]:
    """Fired-fault counts per site."""
    return _REGISTRY.stats()


@contextmanager
def fault_injection(
    site: str,
    action: str = "error",
    *,
    delay_s: float = 0.0,
    times: int | None = 1,
    every: int | None = None,
) -> Iterator[FaultRule]:
    """Scoped fault: armed inside the ``with``, disarmed after."""
    rule = inject(
        site, action, delay_s=delay_s, times=times, every=every
    )
    try:
        yield rule
    finally:
        remove(rule)


# Arm any faults the environment requested as soon as the serving stack
# is imported; runtimes re-check at construction (the spec may change
# between imports in long-lived test processes).
refresh_from_env()

"""Micro-batching request scheduler.

Kernel fusion amortizes memory traffic across kernels; the scheduler
amortizes *serving* overhead across requests.  Requests enter a bounded
FIFO queue; worker threads pull the oldest request and then sweep the
queue for every request sharing its **batch key** (same pipeline, same
geometry, same configuration — i.e. same compiled plan), up to
``max_batch``.  The whole batch executes against one cached plan, so
plan lookup, grid-store warmup, and scheduling bookkeeping are paid
once per batch instead of once per request (the runtime analogue of
Filipovič et al.'s per-launch overhead argument for kernel fusion).

Operational semantics, in one place:

* **Backpressure** — the queue is bounded; ``submit`` blocks until
  space frees (optionally up to a timeout) or raises
  :class:`BackpressureError` immediately with ``block=False``.
* **Deadlines** — each request may carry a latency budget; requests
  whose budget expires while queued fail with
  :class:`DeadlineExceeded` instead of wasting execution on an answer
  nobody is waiting for.
* **Graceful shutdown** — ``close(drain=True)`` stops admissions,
  lets queued work finish, then joins the workers; ``drain=False``
  fails queued requests with :class:`SchedulerClosed`.

The scheduler is execution-agnostic: a *handler* callback receives
``(batch_key, [requests])`` and settles each request's
:class:`ResponseHandle`.  The serving runtime supplies the handler that
looks up plans and runs tapes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

# The exception types historically lived here; they are defined in
# :mod:`repro.serve.errors` now (as part of the typed ServeError
# hierarchy) and re-exported for compatibility.
from repro.serve.errors import (
    BackpressureError,
    DeadlineExceeded,
    SchedulerClosed,
)

__all__ = [
    "BackpressureError",
    "DeadlineExceeded",
    "MicroBatchScheduler",
    "ResponseHandle",
    "SchedulerClosed",
    "ServeRequest",
]


class ResponseHandle:
    """A waitable, one-shot result slot for a submitted request."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def set_result(self, value: Any) -> None:
        self._result = value
        self._event.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """Block for the outcome; re-raises the request's error."""
        if not self._event.wait(timeout):
            raise TimeoutError("request not completed within timeout")
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: float | None = None) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise TimeoutError("request not completed within timeout")
        return self._error


@dataclass
class ServeRequest:
    """One queued unit of work.

    ``batch_key`` groups requests that share a compiled plan;
    ``payload`` is opaque to the scheduler (the runtime stores the
    bound arrays, parameters, and plan builder there).  ``deadline`` is
    an absolute ``time.monotonic()`` instant, or ``None`` for
    best-effort requests.
    """

    batch_key: Any
    payload: Dict[str, Any]
    deadline: Optional[float] = None
    handle: ResponseHandle = field(default_factory=ResponseHandle)
    enqueued_at: float = field(default_factory=time.monotonic)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline

    def queue_wait_s(self, now: float | None = None) -> float:
        return (now if now is not None else time.monotonic()) - self.enqueued_at


Handler = Callable[[Any, List[ServeRequest]], None]


class MicroBatchScheduler:
    """Bounded queue + worker pool grouping same-key requests."""

    def __init__(
        self,
        handler: Handler,
        workers: int = 2,
        max_queue: int = 128,
        max_batch: int = 8,
        name: str = "repro-serve",
    ):
        if workers < 1:
            raise ValueError("scheduler needs at least one worker")
        if max_queue < 1:
            raise ValueError("queue bound must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._handler = handler
        self.max_queue = max_queue
        self.max_batch = max_batch
        self._pending: Deque[ServeRequest] = deque()
        self._cond = threading.Condition()
        self._accepting = True
        self._stop = False
        self._inflight = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        request: ServeRequest,
        block: bool = True,
        timeout: float | None = None,
    ) -> ResponseHandle:
        """Enqueue ``request``; returns its handle.

        Raises :class:`SchedulerClosed` after shutdown began and
        :class:`BackpressureError` when the queue stays full
        (immediately with ``block=False``, after ``timeout`` seconds
        otherwise; ``timeout=None`` waits indefinitely).
        """
        limit = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if not self._accepting:
                    raise SchedulerClosed("scheduler is shut down")
                if len(self._pending) < self.max_queue:
                    break
                if not block:
                    raise BackpressureError(
                        f"queue full ({self.max_queue} pending)"
                    )
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise BackpressureError(
                        f"queue full ({self.max_queue} pending) "
                        f"after {timeout:g}s"
                    )
                self._cond.wait(remaining)
            self._pending.append(request)
            self._cond.notify_all()
        return request.handle

    # -- worker loop -------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stop:
                    self._cond.wait()
                if not self._pending and self._stop:
                    return
                batch = self._take_batch()
                self._inflight += len(batch)
                self._cond.notify_all()
            try:
                self._handler(batch[0].batch_key, batch)
            except BaseException as err:  # handler bug: fail the batch
                for request in batch:
                    if not request.handle.done():
                        request.handle.set_error(err)
            finally:
                with self._cond:
                    self._inflight -= len(batch)
                    self._cond.notify_all()

    def _take_batch(self) -> List[ServeRequest]:
        """Pop the head request plus queued same-key requests (FIFO kept)."""
        first = self._pending.popleft()
        batch = [first]
        if self.max_batch > 1 and self._pending:
            keep: Deque[ServeRequest] = deque()
            while self._pending:
                request = self._pending.popleft()
                if (
                    len(batch) < self.max_batch
                    and request.batch_key == first.batch_key
                ):
                    batch.append(request)
                else:
                    keep.append(request)
            self._pending.extend(keep)
        return batch

    # -- lifecycle ---------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._pending)

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def drain(self, timeout: float | None = None) -> bool:
        """Block until queue and in-flight work are empty; True on success."""
        limit = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._pending or self._inflight:
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admissions, optionally drain, then join the workers.

        With ``drain=False`` (or on drain timeout) still-queued
        requests fail with :class:`SchedulerClosed` rather than hanging
        their waiters forever.
        """
        with self._cond:
            self._accepting = False
            self._cond.notify_all()
        if drain:
            self.drain(timeout)
        with self._cond:
            self._stop = True
            while self._pending:
                request = self._pending.popleft()
                request.handle.set_error(
                    SchedulerClosed("scheduler shut down before execution")
                )
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)

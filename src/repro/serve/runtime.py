"""The serving runtime: registry + plan cache + scheduler + metrics.

:class:`ServingRuntime` turns the reproduction into a long-lived
pipeline service.  A request names a registered pipeline and binds
input arrays; the runtime

1. resolves the pipeline's dependence DAG at the request's geometry
   (inferred from the bound arrays — one registered pipeline serves
   any image size),
2. derives the plan-cache key from the graph's structural signature,
   the input shapes/dtypes, the execution engine, and the fusion
   configuration,
3. enqueues the request in the micro-batching scheduler; a worker
   groups it with same-key requests, fetches (or compiles, exactly
   once) the fused partition + instruction tapes from the
   :class:`~repro.serve.plancache.PlanCache`, and runs each request on
   the cached plan through the tape executor of PR 1,
4. records per-stage metrics: queue wait, execution latency,
   end-to-end latency, compile/fuse timings on misses, cache hit rate,
   queue depth, batch sizes.

Results are **bit-identical** to direct
:func:`repro.backend.numpy_exec.execute_partitioned` execution — the
serving layer reorders *when* work happens, never *what* is computed.

The runtime is a context manager; exiting drains the queue and joins
the workers.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Dict, List

import numpy as np

from repro.backend.numpy_exec import Arrays, Params
from repro.backend.plan import plan_for_partition, resolve_workers
from repro.envknobs import validate_mode
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition
from repro.model.benefit import BenefitConfig
from repro.model.hardware import KNOWN_GPUS, GpuSpec
from repro.serve.metrics import Metrics
from repro.serve.plancache import (
    CachedPlan,
    FusionSettings,
    PlanCache,
    plan_key,
)
from repro.serve.registry import PipelineRegistry, default_registry
from repro.serve.scheduler import (
    BackpressureError,
    DeadlineExceeded,
    MicroBatchScheduler,
    ResponseHandle,
    ServeRequest,
)

__all__ = ["ServingRuntime", "fusion_settings"]


def fusion_settings(
    version: str = "optimized",
    gpu: "GpuSpec | str" = "GTX680",
    config: BenefitConfig | None = None,
    naive_borders: bool = False,
) -> FusionSettings:
    """Build :class:`FusionSettings` from the toolchain's native types."""
    gpu_name = gpu if isinstance(gpu, str) else gpu.name
    if gpu_name not in KNOWN_GPUS:
        known = ", ".join(sorted(KNOWN_GPUS))
        raise ValueError(f"unknown GPU {gpu_name!r}; known: {known}")
    config = config or BenefitConfig()
    return FusionSettings(
        version=version,
        gpu_name=gpu_name,
        c_mshared=config.c_mshared,
        epsilon=config.epsilon,
        gamma=config.gamma,
        is_units=config.is_units,
        naive_borders=naive_borders,
    )


class ServingRuntime:
    """A long-lived, thread-safe pipeline service.

    Parameters
    ----------
    registry:
        Named pipelines to serve; defaults to the six paper apps
        (:func:`repro.serve.registry.default_registry`).
    fusion:
        Fusion configuration applied to every request (engine version,
        GPU model, benefit constants).  Part of the plan-cache key.
    workers:
        Scheduler worker threads — the request-level concurrency.
    intra_workers:
        Block-level parallelism *within* one request, forwarded to the
        tape executor (``None`` defers to ``REPRO_EXEC_WORKERS``).
    max_queue / max_batch:
        Queue bound (backpressure) and micro-batch size cap.
    cache_capacity:
        LRU capacity of the plan cache, in distinct plans.
    engine:
        Execution engine serving requests: ``"tape"`` (default),
        ``"recursive"``, or ``"native"`` — the compiled-C backend of
        :mod:`repro.backend.native_exec`.  With ``"native"`` each plan
        cache entry also carries the loaded kernel library, so a cache
        hit skips fusion, tape planning *and* the C compile; hosts
        without a C toolchain downgrade to ``"tape"`` at construction
        (recorded under ``metrics_snapshot()["engine"]``).
    """

    def __init__(
        self,
        registry: PipelineRegistry | None = None,
        *,
        fusion: FusionSettings | None = None,
        workers: int = 2,
        intra_workers: int | None = None,
        max_queue: int = 128,
        max_batch: int = 8,
        cache_capacity: int = 64,
        engine: str = "tape",
        metrics: Metrics | None = None,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.fusion = fusion or FusionSettings()
        if self.fusion.gpu_name not in KNOWN_GPUS:
            known = ", ".join(sorted(KNOWN_GPUS))
            raise ValueError(
                f"unknown GPU {self.fusion.gpu_name!r}; known: {known}"
            )
        self.gpu: GpuSpec = KNOWN_GPUS[self.fusion.gpu_name]
        if engine not in ("tape", "recursive", "native"):
            raise ValueError(
                f"unknown engine {engine!r}; expected 'tape', 'recursive' "
                "or 'native'"
            )
        #: The engine the caller asked for, before availability checks.
        self.requested_engine = engine
        if engine == "native":
            from repro.backend.native_exec import native_available

            if not native_available():
                # No C toolchain on this host: serve through the tape
                # engine instead of failing every request.  The
                # downgrade is visible in ``metrics_snapshot()``.
                engine = "tape"
        self.engine = engine
        self.intra_workers = intra_workers
        self.cache = PlanCache(capacity=cache_capacity)
        self.metrics = metrics or Metrics()
        self._closed = False
        self.scheduler = MicroBatchScheduler(
            self._handle_batch,
            workers=workers,
            max_queue=max_queue,
            max_batch=max_batch,
        )

    # -- request admission -------------------------------------------------

    def submit(
        self,
        pipeline: str,
        inputs: Arrays,
        params: Params | None = None,
        *,
        deadline_s: float | None = None,
        block: bool = True,
        queue_timeout: float | None = None,
    ) -> ResponseHandle:
        """Enqueue one request against a registered pipeline.

        ``deadline_s`` is the request's total latency budget (queue wait
        included); expired requests fail with
        :class:`~repro.serve.scheduler.DeadlineExceeded`.  ``block`` /
        ``queue_timeout`` control backpressure behaviour when the queue
        is full.  Returns a handle; ``handle.result()`` yields the same
        surviving-image environment ``execute_partitioned`` returns.
        """
        entry = self.registry.get(pipeline)
        height, width = _infer_geometry(inputs)
        graph = entry.graph(width, height)
        merged = dict(entry.params)
        merged.update(params or {})
        return self._submit_graph(
            graph,
            inputs,
            merged,
            partition=None,
            deadline_s=deadline_s,
            block=block,
            queue_timeout=queue_timeout,
        )

    def execute(
        self,
        pipeline: str,
        inputs: Arrays,
        params: Params | None = None,
        *,
        deadline_s: float | None = None,
    ) -> Arrays:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(
            pipeline, inputs, params, deadline_s=deadline_s
        ).result()

    def execute_graph(
        self,
        graph: KernelGraph,
        inputs: Arrays,
        params: Params | None = None,
        partition: Partition | None = None,
        *,
        naive_borders: bool | None = None,
        deadline_s: float | None = None,
    ) -> Arrays:
        """Serve an unregistered graph through the runtime.

        This is the integration hook behind
        ``execute_pipeline(..., runtime=...)``: ``partition=None``
        fuses under the runtime's settings, while an explicit partition
        serves exactly those blocks (``Partition.singletons`` for
        staged semantics).  Plan caching still applies — the key is the
        graph's structural signature plus the partition's block
        signature, so repeated calls with structurally identical graphs
        reuse one compiled plan.  ``naive_borders`` overrides the
        runtime's border handling for this call (part of the key).
        """
        handle = self._submit_graph(
            graph,
            inputs,
            params,
            partition=partition,
            naive_borders=naive_borders,
            deadline_s=deadline_s,
        )
        return handle.result()

    def _submit_graph(
        self,
        graph: KernelGraph,
        inputs: Arrays,
        params: Params | None,
        partition: Partition | None,
        naive_borders: bool | None = None,
        deadline_s: float | None = None,
        block: bool = True,
        queue_timeout: float | None = None,
    ) -> ResponseHandle:
        if naive_borders is None:
            naive_borders = self.fusion.naive_borders
        fusion = self.fusion
        if naive_borders != fusion.naive_borders:
            fusion = replace(fusion, naive_borders=naive_borders)
        if partition is None:
            key = plan_key(
                graph.structural_signature(), inputs, self.engine, fusion
            )
        else:
            # Explicit partition: fusion settings do not matter, the
            # block structure is the plan identity.
            key = (
                graph.structural_signature(),
                plan_key("", inputs, self.engine, self.fusion)[1],
                self.engine,
                ("explicit", partition.signature(), naive_borders),
            )
        request = ServeRequest(
            batch_key=key,
            payload={
                "graph": graph,
                "inputs": inputs,
                "params": params,
                "partition": partition,
                "naive_borders": naive_borders,
            },
            deadline=(
                time.monotonic() + deadline_s if deadline_s is not None else None
            ),
        )
        self.metrics.counter("requests_submitted").inc()
        try:
            self.scheduler.submit(request, block=block, timeout=queue_timeout)
        except BackpressureError:
            self.metrics.counter("requests_rejected").inc()
            raise
        self.metrics.gauge("queue_depth").set(self.scheduler.queue_depth)
        return request.handle

    # -- batch execution (scheduler workers land here) ----------------------

    def _handle_batch(self, key: Any, batch: List[ServeRequest]) -> None:
        self.metrics.counter("batches_executed").inc()
        self.metrics.histogram("batch_size").observe(len(batch))
        self.metrics.gauge("queue_depth").set(self.scheduler.queue_depth)
        for request in batch:
            now = time.monotonic()
            self.metrics.histogram("queue_wait_ms").observe(
                request.queue_wait_s(now) * 1e3
            )
            if request.expired(now):
                self.metrics.counter("requests_timed_out").inc()
                request.handle.set_error(
                    DeadlineExceeded(
                        "deadline expired after "
                        f"{request.queue_wait_s(now):.3f}s in queue"
                    )
                )
                continue
            try:
                entry, hit = self.cache.get_or_build(
                    key, lambda: self._build_plan(key, request)
                )
                plan = (
                    entry.native_plan
                    if entry.native_plan is not None
                    else entry.plan
                )
                started = time.monotonic()
                env = plan.execute(
                    request.payload["inputs"],
                    request.payload["params"],
                    workers=self.intra_workers,
                )
                finished = time.monotonic()
            except BaseException as err:
                self.metrics.counter("requests_failed").inc()
                request.handle.set_error(err)
                continue
            executed = "native" if entry.native_plan is not None else "tape"
            self.metrics.counter(f"engine_{executed}_executions").inc()
            self.metrics.histogram("execute_ms").observe(
                (finished - started) * 1e3
            )
            self.metrics.histogram("total_ms").observe(
                (finished - request.enqueued_at) * 1e3
            )
            self.metrics.counter("requests_completed").inc()
            request.handle.set_result(env)

    def _build_plan(self, key: Any, request: ServeRequest) -> CachedPlan:
        """Fuse and tape-compile one plan (cache miss path)."""
        graph: KernelGraph = request.payload["graph"]
        partition: Partition | None = request.payload["partition"]
        timings: Dict[str, float] = {}
        if partition is None:
            from repro.eval.runner import partition_for

            started = time.perf_counter()
            partition = partition_for(
                graph,
                self.gpu,
                self.fusion.version,
                BenefitConfig(
                    c_mshared=self.fusion.c_mshared,
                    epsilon=self.fusion.epsilon,
                    gamma=self.fusion.gamma,
                    is_units=self.fusion.is_units,
                ),
            )
            timings["fuse_ms"] = (time.perf_counter() - started) * 1e3
        started = time.perf_counter()
        plan = plan_for_partition(
            graph,
            partition,
            naive_borders=request.payload.get(
                "naive_borders", self.fusion.naive_borders
            ),
        )
        timings["plan_ms"] = (time.perf_counter() - started) * 1e3
        native_plan = None
        if self.engine == "native":
            from repro.backend.native_exec import native_plan_for_partition

            started = time.perf_counter()
            native_plan = native_plan_for_partition(
                graph,
                partition,
                naive_borders=request.payload.get(
                    "naive_borders", self.fusion.naive_borders
                ),
            )
            timings["native_compile_ms"] = (
                time.perf_counter() - started
            ) * 1e3
            self.metrics.counter("native_blocks_compiled").inc(
                native_plan.native_block_count
            )
            if native_plan.fallback_block_count:
                self.metrics.counter("native_blocks_fallback").inc(
                    native_plan.fallback_block_count
                )
            if native_plan.from_cache:
                self.metrics.counter("native_artifact_cache_hits").inc()
        verified = False
        if validate_mode() == "strict":
            # Strict mode verifies every plan cache insert — including
            # plans that were compiled earlier (module-level plan cache
            # hit) under a weaker validation mode.
            from repro.analysis.verifier import enforce, verify_partition_plan

            started = time.perf_counter()
            enforce(
                verify_partition_plan(plan, graph=graph),
                context="plan cache insert",
            )
            timings["verify_ms"] = (time.perf_counter() - started) * 1e3
            verified = True
        for stage, value in timings.items():
            self.metrics.histogram(f"compile_{stage}").observe(value)
        return CachedPlan(
            key=key,
            graph=graph,
            partition=partition,
            plan=plan,
            timings_ms=timings,
            verified=verified,
            native_plan=native_plan,
        )

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Instruments + plan-cache stats + scheduler state, one dict."""
        snapshot = self.metrics.snapshot()
        snapshot["plan_cache"] = self.cache.stats()
        snapshot["engine"] = {
            "requested": self.requested_engine,
            "active": self.engine,
        }
        snapshot["scheduler"] = {
            "queue_depth": self.scheduler.queue_depth,
            "inflight": self.scheduler.inflight,
            "max_queue": self.scheduler.max_queue,
            "max_batch": self.scheduler.max_batch,
            "intra_workers": resolve_workers(self.intra_workers),
        }
        snapshot["fusion"] = dict(zip(
            (
                "version",
                "gpu",
                "c_mshared",
                "epsilon",
                "gamma",
                "is_units",
                "naive_borders",
            ),
            self.fusion.key(),
        ))
        return snapshot

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        return self.scheduler.drain(timeout)

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admissions, optionally finish queued work, join workers."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _infer_geometry(inputs: Arrays) -> tuple[int, int]:
    """(height, width) from the bound arrays; they must agree."""
    geometries = {np.shape(a)[:2] for a in inputs.values()}
    if len(geometries) != 1:
        raise ValueError(
            f"cannot infer request geometry from input shapes {geometries}"
        )
    return geometries.pop()

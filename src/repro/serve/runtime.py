"""The serving runtime: registry + plan cache + scheduler + metrics.

:class:`ServingRuntime` turns the reproduction into a long-lived
pipeline service.  A request names a registered pipeline and binds
input arrays; the runtime

1. resolves the pipeline's dependence DAG at the request's geometry
   (inferred from the bound arrays — one registered pipeline serves
   any image size),
2. derives the plan-cache key from the graph's structural signature,
   the input shapes/dtypes, the execution engine, and the fusion
   configuration,
3. enqueues the request in the micro-batching scheduler; a worker
   groups it with same-key requests, fetches (or compiles, exactly
   once) the fused partition + instruction tapes from the
   :class:`~repro.serve.plancache.PlanCache`, and runs each request on
   the cached plan through the tape executor of PR 1,
4. records per-stage metrics: queue wait, execution latency,
   end-to-end latency, compile/fuse timings on misses, cache hit rate,
   queue depth, batch sizes.

Results are **bit-identical** to direct :func:`repro.api.run`
execution of the same configuration — the serving layer reorders
*when* work happens, never *what* is computed.

Every request additionally runs under the runtime's
:class:`~repro.serve.resilience.ResiliencePolicy`: a failed fuse /
plan / compile / verify stage steps the request down the degradation
ladder ``native → tape → recursive`` immediately (the three engines
compute bit-identical results, so the caller sees a slower answer, not
an error), repeated build failures trip a per-pipeline circuit breaker
that routes *future* requests straight to the degraded rung until a
half-open probe recovers, plans that fail at execute time are
quarantined out of the cache and rebuilt, and each stage can carry a
latency budget enforced with
:class:`~repro.serve.errors.StageTimeout`.  Every retry, downgrade,
breaker transition, timeout, and quarantine is visible in
:meth:`ServingRuntime.metrics_snapshot`.

The runtime is a context manager; exiting drains the queue and joins
the workers.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.backend.numpy_exec import Arrays, Params
from repro.backend.plan import plan_for_partition, resolve_workers
from repro.envknobs import validate_mode
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition
from repro.model.benefit import BenefitConfig
from repro.model.hardware import KNOWN_GPUS, GpuSpec
from repro.serve import faultinject
from repro.serve.errors import (
    BackpressureError,
    DeadlineExceeded,
    PlanBuildError,
    RuntimeClosed,
    StageTimeout,
)
from repro.serve.metrics import Metrics
from repro.serve.plancache import (
    CACHE_KEYINGS,
    CachedPlan,
    FusionSettings,
    PlanCache,
    inputs_signature,
    plan_key,
)
from repro.serve.registry import PipelineRegistry, default_registry
from repro.serve.resilience import (
    BreakerBoard,
    CircuitBreaker,
    ResiliencePolicy,
    ladder_from,
)
from repro.serve.scheduler import (
    MicroBatchScheduler,
    ResponseHandle,
    ServeRequest,
)

__all__ = ["ServingRuntime", "fusion_settings"]


def fusion_settings(
    version: str = "optimized",
    gpu: "GpuSpec | str" = "GTX680",
    config: BenefitConfig | None = None,
    naive_borders: bool = False,
) -> FusionSettings:
    """Build :class:`FusionSettings` from the toolchain's native types."""
    gpu_name = gpu if isinstance(gpu, str) else gpu.name
    if gpu_name not in KNOWN_GPUS:
        known = ", ".join(sorted(KNOWN_GPUS))
        raise ValueError(f"unknown GPU {gpu_name!r}; known: {known}")
    config = config or BenefitConfig()
    return FusionSettings(
        version=version,
        gpu_name=gpu_name,
        c_mshared=config.c_mshared,
        epsilon=config.epsilon,
        gamma=config.gamma,
        is_units=config.is_units,
        naive_borders=naive_borders,
    )


class ServingRuntime:
    """A long-lived, thread-safe, fault-tolerant pipeline service.

    Parameters
    ----------
    registry:
        Named pipelines to serve; defaults to the six paper apps
        (:func:`repro.serve.registry.default_registry`).
    fusion:
        Fusion configuration applied to every request (engine version,
        GPU model, benefit constants).  Part of the plan-cache key.
    workers:
        Scheduler worker threads — the request-level concurrency.
    intra_workers:
        Block-level parallelism *within* one request, forwarded to the
        tape executor (``None`` defers to ``REPRO_EXEC_WORKERS``).
    max_queue / max_batch:
        Queue bound (backpressure) and micro-batch size cap.
    cache_capacity:
        LRU capacity of the plan cache, in distinct plans.
    engine:
        Execution engine serving requests: ``"tape"`` (default),
        ``"recursive"``, or ``"native"`` — the compiled-C backend of
        :mod:`repro.backend.native_exec`.  With ``"native"`` each plan
        cache entry also carries the loaded kernel library, so a cache
        hit skips fusion, tape planning *and* the C compile; hosts
        without a C toolchain downgrade to ``"tape"`` at construction
        (recorded under ``metrics_snapshot()["engine"]``).
    resilience:
        The :class:`~repro.serve.resilience.ResiliencePolicy` applied
        to every request: retry/backoff, per-stage timeouts, circuit
        breakers routing down the degradation ladder, plan quarantine.
        Defaults to an enabled policy;
        ``ResiliencePolicy.disabled()`` restores the fail-fast
        behaviour of earlier revisions.
    cache_keying:
        ``"shape"`` (default) keys the plan cache on exact input
        shapes — one entry per resolution.  ``"structure"`` keys on the
        graph's shape-agnostic structure signature + input dtypes only
        and serves every resolution of a pipeline from **one**
        shape-polymorphic native plan (compiled once; shapes bound at
        call time), so mixed-resolution traffic stops missing per
        shape.  Structure keying needs the native engine; it downgrades
        to ``"shape"`` alongside an engine downgrade on hosts without a
        C compiler, and degraded (tape/recursive) ladder rungs always
        use shape-specialized keys — their plans are not polymorphic.
    """

    def __init__(
        self,
        registry: PipelineRegistry | None = None,
        *,
        fusion: FusionSettings | None = None,
        workers: int = 2,
        intra_workers: int | None = None,
        max_queue: int = 128,
        max_batch: int = 8,
        cache_capacity: int = 64,
        engine: str = "tape",
        resilience: ResiliencePolicy | None = None,
        metrics: Metrics | None = None,
        cache_keying: str = "shape",
        register_lint: bool = False,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.fusion = fusion or FusionSettings()
        if self.fusion.gpu_name not in KNOWN_GPUS:
            known = ", ".join(sorted(KNOWN_GPUS))
            raise ValueError(
                f"unknown GPU {self.fusion.gpu_name!r}; known: {known}"
            )
        self.gpu: GpuSpec = KNOWN_GPUS[self.fusion.gpu_name]
        if engine not in ("tape", "recursive", "native"):
            raise ValueError(
                f"unknown engine {engine!r}; expected 'tape', 'recursive' "
                "or 'native'"
            )
        if cache_keying not in CACHE_KEYINGS:
            raise ValueError(
                f"unknown cache keying {cache_keying!r}; expected one of "
                f"{CACHE_KEYINGS}"
            )
        if cache_keying == "structure" and engine != "native":
            raise ValueError(
                "structure-keyed plan caching requires engine='native' "
                "(only shape-polymorphic native plans execute at "
                "geometries other than the one they were built at)"
            )
        #: The keying mode the caller asked for, before availability.
        self.requested_cache_keying = cache_keying
        #: The engine the caller asked for, before availability checks.
        self.requested_engine = engine
        if engine == "native":
            from repro.backend.native_exec import native_available

            if not native_available():
                # No C toolchain on this host: serve through the tape
                # engine instead of failing every request.  The
                # downgrade is visible in ``metrics_snapshot()``.
                engine = "tape"
                # Structure keying rides on polymorphic native plans;
                # without them every entry is shape-specialized.
                cache_keying = "shape"
        self.engine = engine
        self.cache_keying = cache_keying
        self.intra_workers = intra_workers
        self.cache = PlanCache(capacity=cache_capacity)
        self.metrics = metrics or Metrics()
        self.resilience = resilience or ResiliencePolicy()
        self._ladder = ladder_from(engine)
        self._board = BreakerBoard(
            self.resilience.breaker, self.resilience.clock
        )
        for rung in self._ladder[:-1]:
            self.metrics.state_gauge(f"breaker_{rung}", CircuitBreaker.CLOSED)
        # Stage-timeout enforcement runs the stage on a side thread; the
        # pool exists only when some budget is configured, so the
        # default no-timeout hot path pays nothing.
        self._timeout_pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=max(2, workers), thread_name_prefix="repro-stage"
            )
            if self.resilience.timeouts.any_set
            else None
        )
        # Pick up any REPRO_FAULTS rules armed since module import (the
        # registry makes this free when the spec is unchanged).
        faultinject.refresh_from_env()
        #: Whether construction linted the registered pipelines.
        self.register_lint = register_lint
        if register_lint:
            reports = self.lint_registered()
            failing = {
                name: report
                for name, report in reports.items()
                if not report.ok
            }
            if failing:
                from repro.analysis.verifier import PlanVerificationError

                diagnostics = [
                    d
                    for report in failing.values()
                    for d in report.diagnostics
                ]
                raise PlanVerificationError(
                    diagnostics,
                    context="register-time lint of "
                    + ", ".join(sorted(failing)),
                )
        self._closed = False
        self.scheduler = MicroBatchScheduler(
            self._handle_batch,
            workers=workers,
            max_queue=max_queue,
            max_batch=max_batch,
        )

    @classmethod
    def from_options(
        cls,
        options: Any,
        registry: PipelineRegistry | None = None,
        **overrides: Any,
    ) -> "ServingRuntime":
        """Build a runtime from :class:`repro.api.ExecutionOptions`.

        The options contribute engine, fusion configuration,
        intra-request workers, and the resilience policy; serving-only
        knobs (scheduler workers, queue/batch bounds, cache capacity)
        pass through ``overrides``.
        """
        from repro.backend.numpy_exec import _resolve_engine

        kwargs: Dict[str, Any] = {
            "fusion": options.fusion_settings(),
            "engine": _resolve_engine(options.engine),
            "intra_workers": options.workers,
        }
        if options.resilience is not None:
            kwargs["resilience"] = options.resilience
        kwargs.update(overrides)
        return cls(registry, **kwargs)

    def lint_registered(
        self, *, native: bool = False
    ) -> "Dict[str, Any]":
        """Run the static-analysis stack over every registered pipeline.

        Returns ``name -> LintReport`` (see
        :func:`repro.analysis.lint.lint_app`); pipelines are linted at
        the standard lint geometry with this runtime's GPU model and
        fusion version.  ``native=True`` additionally sanitizes the
        emitted native C (needs a toolchain).  Constructing the runtime
        with ``register_lint=True`` runs this once and refuses to start
        on any error-severity diagnostic.
        """
        from repro.analysis.lint import lint_app

        version = self.fusion.version
        if version not in ("baseline", "basic", "optimized", "greedy"):
            version = "optimized"
        return {
            name: lint_app(
                self.registry.get(name),
                gpu=self.gpu,
                version=version,
                native=native,
            )
            for name in self.registry.names()
        }

    # -- request admission -------------------------------------------------

    def submit(
        self,
        pipeline: str,
        inputs: Arrays,
        params: Params | None = None,
        *,
        deadline_s: float | None = None,
        block: bool = True,
        queue_timeout: float | None = None,
    ) -> ResponseHandle:
        """Enqueue one request against a registered pipeline.

        ``deadline_s`` is the request's total latency budget (queue wait
        included); expired requests fail with
        :class:`~repro.serve.errors.DeadlineExceeded`.  ``block`` /
        ``queue_timeout`` control backpressure behaviour when the queue
        is full.  Returns a handle; ``handle.result()`` yields the same
        surviving-image environment :func:`repro.api.run` returns.
        """
        entry = self.registry.get(pipeline)
        height, width = _infer_geometry(inputs)
        graph = entry.graph(width, height)
        merged = dict(entry.params)
        merged.update(params or {})
        return self._submit_graph(
            graph,
            inputs,
            merged,
            partition=None,
            deadline_s=deadline_s,
            block=block,
            queue_timeout=queue_timeout,
        )

    def execute(
        self,
        pipeline: str,
        inputs: Arrays,
        params: Params | None = None,
        *,
        deadline_s: float | None = None,
    ) -> Arrays:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(
            pipeline, inputs, params, deadline_s=deadline_s
        ).result()

    def execute_graph(
        self,
        graph: KernelGraph,
        inputs: Arrays,
        params: Params | None = None,
        partition: Partition | None = None,
        *,
        naive_borders: bool | None = None,
        deadline_s: float | None = None,
    ) -> Arrays:
        """Serve an unregistered graph through the runtime.

        This is the integration hook behind
        ``repro.api.run(..., options=ExecutionOptions(runtime=...))``:
        ``partition=None`` fuses under the runtime's settings, while an
        explicit partition serves exactly those blocks
        (``Partition.singletons`` for staged semantics).  Plan caching
        still applies — the key is the graph's structural signature
        plus the partition's block signature, so repeated calls with
        structurally identical graphs reuse one compiled plan.
        ``naive_borders`` overrides the runtime's border handling for
        this call (part of the key).
        """
        handle = self._submit_graph(
            graph,
            inputs,
            params,
            partition=partition,
            naive_borders=naive_borders,
            deadline_s=deadline_s,
        )
        return handle.result()

    def _submit_graph(
        self,
        graph: KernelGraph,
        inputs: Arrays,
        params: Params | None,
        partition: Partition | None,
        naive_borders: bool | None = None,
        deadline_s: float | None = None,
        block: bool = True,
        queue_timeout: float | None = None,
    ) -> ResponseHandle:
        if self._closed:
            # Refuse immediately instead of racing the scheduler's own
            # shutdown flag — close() stops admissions synchronously.
            raise RuntimeClosed("runtime is closed")
        if naive_borders is None:
            naive_borders = self.fusion.naive_borders
        fusion = self.fusion
        if naive_borders != fusion.naive_borders:
            fusion = replace(fusion, naive_borders=naive_borders)
        if partition is None:
            structure_keyed = self.cache_keying == "structure"
            key = plan_key(
                graph.structure_signature()
                if structure_keyed
                else graph.structural_signature(),
                inputs,
                self.engine,
                fusion,
                keying=self.cache_keying,
            )
        else:
            # Explicit partition: fusion settings do not matter, the
            # block structure is the plan identity.
            key = (
                graph.structural_signature(),
                plan_key("", inputs, self.engine, self.fusion)[1],
                self.engine,
                ("explicit", partition.signature(), naive_borders),
            )
        request = ServeRequest(
            batch_key=key,
            payload={
                "graph": graph,
                "inputs": inputs,
                "params": params,
                "partition": partition,
                "naive_borders": naive_borders,
            },
            deadline=(
                time.monotonic() + deadline_s if deadline_s is not None else None
            ),
        )
        self.metrics.counter("requests_submitted").inc()
        try:
            self.scheduler.submit(request, block=block, timeout=queue_timeout)
        except BackpressureError:
            self.metrics.counter("requests_rejected").inc()
            raise
        self.metrics.gauge("queue_depth").set(self.scheduler.queue_depth)
        return request.handle

    # -- batch execution (scheduler workers land here) ----------------------

    def _handle_batch(self, key: Any, batch: List[ServeRequest]) -> None:
        self.metrics.counter("batches_executed").inc()
        self.metrics.histogram("batch_size").observe(len(batch))
        self.metrics.gauge("queue_depth").set(self.scheduler.queue_depth)
        for request in batch:
            now = time.monotonic()
            self.metrics.histogram("queue_wait_ms").observe(
                request.queue_wait_s(now) * 1e3
            )
            if request.expired(now):
                self.metrics.counter("requests_timed_out").inc()
                request.handle.set_error(
                    DeadlineExceeded(
                        "deadline expired after "
                        f"{request.queue_wait_s(now):.3f}s in queue"
                    )
                )
                continue
            try:
                env, engine = self._serve_request(key, request)
                finished = time.monotonic()
            except BaseException as err:
                self.metrics.counter("requests_failed").inc()
                request.handle.set_error(err)
                continue
            self.metrics.counter(f"engine_{engine}_executions").inc()
            self.metrics.histogram("total_ms").observe(
                (finished - request.enqueued_at) * 1e3
            )
            self.metrics.counter("requests_completed").inc()
            request.handle.set_result(env)

    def _serve_request(
        self, key: Any, request: ServeRequest
    ) -> Tuple[Arrays, str]:
        """Serve one request under the resilience policy.

        The attempt loop owns the whole failure story: build failures
        step the request down the degradation ladder *immediately* (the
        caller gets a slower bit-identical answer instead of an error,
        even before the breaker trips), execute failures quarantine the
        plan and rebuild, and each retry beyond the first pays the
        policy's backoff against the per-request budget.  Returns the
        environment plus the ladder rung that produced it.
        """
        policy = self.resilience
        retry = policy.retry
        pipeline = key[0]  # structural signature = per-pipeline identity
        backoff_spent = 0.0
        floor = 0  # lowest ladder index this request may still try
        stepped_down = False
        last_error: Optional[BaseException] = None
        for attempt in range(retry.max_attempts):
            if attempt:
                # A ladder step-down retries on a *different* engine —
                # the failure was not transient, so backing off first
                # would only add latency.  Same-rung retries pay the
                # policy's backoff against the per-request budget.  The
                # jitter token is derived here, not per request: only
                # retries ever need it.
                delay = (
                    0.0
                    if stepped_down
                    else retry.delay_s(
                        attempt - 1, zlib.crc32(repr(key).encode())
                    )
                )
                stepped_down = False
                if delay:
                    if backoff_spent + delay > retry.budget_s:
                        self.metrics.counter("retry_budget_exhausted").inc()
                        break
                    backoff_spent += delay
                    policy.sleep(delay)
                self.metrics.counter("request_retries").inc()
            if policy.degradation:
                routed = self._board.engine_for(pipeline, self._ladder)
                index = max(self._ladder.index(routed), floor)
            else:
                index = min(floor, len(self._ladder) - 1)
            engine = self._ladder[index]
            attempt_key = self._attempt_key(key, engine, request)
            if engine != self.engine:
                self.metrics.counter(f"degraded_to_{engine}").inc()
            try:
                entry = self._lookup_plan(attempt_key, request, engine)
            except BaseException as err:
                last_error = err
                if policy.degradation:
                    self._board.record_failure(pipeline, engine)
                    self._update_breaker_gauges()
                    if index < len(self._ladder) - 1:
                        # Step down *this* request right away; the
                        # breaker handles future traffic.
                        floor = index + 1
                        stepped_down = True
                    continue
                raise
            started = time.monotonic()
            try:
                env = self._execute_entry(entry, request, engine)
            except BaseException as err:
                last_error = err
                if policy.quarantine:
                    if self.cache.quarantine(attempt_key):
                        self.metrics.counter("plans_quarantined").inc()
                if retry.max_attempts == 1:
                    raise
                continue
            self.metrics.histogram("execute_ms").observe(
                (time.monotonic() - started) * 1e3
            )
            if policy.degradation and engine in self._ladder[:-1]:
                # record_success is a no-op (False) while the breaker
                # is quiet, so healthy traffic skips the gauge sweep.
                if self._board.record_success(pipeline, engine):
                    self._update_breaker_gauges()
            return env, engine
        assert last_error is not None
        raise last_error

    def _attempt_key(self, key: tuple, engine: str, request: ServeRequest) -> tuple:
        """The cache key of one (request, ladder rung) attempt.

        Normally the submitted key with the rung's engine swapped in.
        Under structure keying, degraded (non-native) rungs get the
        request's exact shapes appended back — tape and recursive plans
        are shape-specialized, so sharing them across geometries would
        compute the wrong image.
        """
        if self.cache_keying == "structure" and engine != "native":
            return (
                key[0],
                inputs_signature(request.payload["inputs"]),
                engine,
                key[3],
            )
        return key[:2] + (engine,) + key[3:]

    def _lookup_plan(
        self, attempt_key: tuple, request: ServeRequest, engine: str
    ) -> CachedPlan:
        """Fetch or build the plan for one (request, ladder rung)."""
        structure = request.payload["graph"].structure_signature()
        entry, hit = self.cache.get_or_build(
            attempt_key,
            lambda: self._build_plan(attempt_key, request, engine),
            structure_key=structure,
        )
        if (
            hit
            and faultinject.armed()
            and faultinject.take_corruption("cache.hit")
        ):
            # An injected corruption marks the served entry poisoned:
            # quarantine it and rebuild, exactly as the resilience
            # layer does for a genuinely bad plan.
            if self.cache.quarantine(attempt_key):
                self.metrics.counter("plans_quarantined").inc()
            entry, hit = self.cache.get_or_build(
                attempt_key,
                lambda: self._build_plan(attempt_key, request, engine),
                structure_key=structure,
            )
        return entry

    def _timed_stage(self, stage: str, fn: Callable[[], Any]) -> Any:
        """Run one pipeline stage under its configured latency budget.

        Without a budget (the default) the stage runs inline; with one,
        it runs on the side pool and a blown budget raises
        :class:`StageTimeout` (the stage thread is abandoned — numpy
        work cannot be interrupted — but the request moves on).
        """
        budget = self.resilience.timeouts.budget_for(stage)
        if budget is None or self._timeout_pool is None:
            return fn()
        future = self._timeout_pool.submit(fn)
        try:
            return future.result(timeout=budget)
        except _FutureTimeout:
            future.cancel()
            self.metrics.counter(f"stage_timeout_{stage}").inc()
            raise StageTimeout(stage, budget) from None

    def _execute_entry(
        self, entry: CachedPlan, request: ServeRequest, engine: str
    ) -> Arrays:
        inputs = request.payload["inputs"]
        params = request.payload["params"]

        def run() -> Arrays:
            faultinject.check("execute")
            if engine == "native" and entry.native_plan is not None:
                return entry.native_plan.execute(
                    inputs, params, workers=self.intra_workers
                )
            if entry.plan is None:
                # Recursive rung: no tape, walk the graph directly.
                from repro.backend.numpy_exec import (
                    _execute_partitioned_recursive,
                )

                return _execute_partitioned_recursive(
                    entry.graph,
                    entry.partition,
                    inputs,
                    params,
                    naive_borders=request.payload.get(
                        "naive_borders", self.fusion.naive_borders
                    ),
                )
            return entry.plan.execute(
                inputs, params, workers=self.intra_workers
            )

        return self._timed_stage("execute", run)

    def _build_plan(
        self, key: Any, request: ServeRequest, engine: str
    ) -> CachedPlan:
        """Fuse and compile one plan for one ladder rung (cache miss).

        Each stage runs under its latency budget and failures surface
        as :class:`PlanBuildError` carrying the stage and engine, so
        the retry loop can route the request down the ladder.  The
        ``recursive`` rung deliberately skips tape compilation — its
        failure domain must not include the tape compiler.
        """
        graph: KernelGraph = request.payload["graph"]
        partition: Partition | None = request.payload["partition"]
        naive_borders = request.payload.get(
            "naive_borders", self.fusion.naive_borders
        )
        timings: Dict[str, float] = {}
        if partition is None:

            def fuse() -> Partition:
                faultinject.check("fuse")
                from repro.eval.runner import partition_for

                return partition_for(
                    graph,
                    self.gpu,
                    self.fusion.version,
                    BenefitConfig(
                        c_mshared=self.fusion.c_mshared,
                        epsilon=self.fusion.epsilon,
                        gamma=self.fusion.gamma,
                        is_units=self.fusion.is_units,
                    ),
                )

            started = time.perf_counter()
            try:
                partition = self._timed_stage("fuse", fuse)
            except StageTimeout:
                raise
            except Exception as err:
                raise PlanBuildError(
                    "fuse", engine, f"fusing the graph failed: {err}"
                ) from err
            timings["fuse_ms"] = (time.perf_counter() - started) * 1e3
        plan = None
        if engine != "recursive":
            started = time.perf_counter()
            try:
                plan = self._timed_stage(
                    "plan",
                    lambda: plan_for_partition(
                        graph, partition, naive_borders=naive_borders
                    ),
                )
            except StageTimeout:
                raise
            except Exception as err:
                raise PlanBuildError(
                    "plan", engine, f"tape compilation failed: {err}"
                ) from err
            timings["plan_ms"] = (time.perf_counter() - started) * 1e3
        native_plan = None
        if engine == "native":
            from repro.backend.native_exec import native_plan_for_partition

            polymorphic = self.cache_keying == "structure"
            started = time.perf_counter()
            try:
                native_plan = self._timed_stage(
                    "compile",
                    lambda: native_plan_for_partition(
                        graph,
                        partition,
                        naive_borders=naive_borders,
                        polymorphic=polymorphic,
                    ),
                )
            except StageTimeout:
                raise
            except Exception as err:
                raise PlanBuildError(
                    "compile", engine, f"native compilation failed: {err}"
                ) from err
            timings["native_compile_ms"] = (
                time.perf_counter() - started
            ) * 1e3
            self.metrics.counter("native_blocks_compiled").inc(
                native_plan.native_block_count
            )
            if native_plan.fallback_block_count:
                self.metrics.counter("native_blocks_fallback").inc(
                    native_plan.fallback_block_count
                )
            if native_plan.from_cache:
                self.metrics.counter("native_artifact_cache_hits").inc()
            if polymorphic and native_plan.fallback_block_count:
                # A structure-keyed entry serves every geometry through
                # its polymorphic native blocks; a tape-fallback block
                # is shape-specialized and would poison foreign-
                # geometry requests.  Refuse the build — the resilience
                # ladder serves this request through a shape-keyed tape
                # plan instead.
                raise PlanBuildError(
                    "compile",
                    engine,
                    "structure-keyed caching needs a fully native plan; "
                    f"fallback blocks: {native_plan.fallback_reasons}",
                )
        if (
            native_plan is not None
            and validate_mode() == "strict"
            and not native_plan.sanitized
        ):
            # A module-level native-cache hit built under a weaker
            # validation mode must still pass the codegen sanitizer
            # before this strict-mode cache insert.
            from repro.analysis.native_check import verify_native_blocks
            from repro.analysis.verifier import enforce

            def sanitize() -> None:
                faultinject.check("sanitize")
                enforce(
                    verify_native_blocks(
                        native
                        for _plan, native in native_plan.blocks
                        if native is not None
                    ),
                    context="plan cache insert (native codegen sanitizer)",
                )

            started = time.perf_counter()
            try:
                self._timed_stage("sanitize", sanitize)
            except StageTimeout:
                raise
            except Exception as err:
                raise PlanBuildError(
                    "sanitize",
                    engine,
                    f"native codegen sanitizing failed: {err}",
                ) from err
            native_plan.verify_ms = (time.perf_counter() - started) * 1e3
            native_plan.sanitized = True
        if native_plan is not None and native_plan.sanitized:
            timings["native_verify_ms"] = native_plan.verify_ms
        verified = False
        if plan is not None and validate_mode() == "strict":
            # Strict mode verifies every plan cache insert — including
            # plans that were compiled earlier (module-level plan cache
            # hit) under a weaker validation mode.
            from repro.analysis.verifier import enforce, verify_partition_plan

            def verify() -> None:
                faultinject.check("verify")
                enforce(
                    verify_partition_plan(plan, graph=graph),
                    context="plan cache insert",
                )

            started = time.perf_counter()
            try:
                self._timed_stage("verify", verify)
            except StageTimeout:
                raise
            except Exception as err:
                raise PlanBuildError(
                    "verify", engine, f"plan verification failed: {err}"
                ) from err
            timings["verify_ms"] = (time.perf_counter() - started) * 1e3
            verified = True
        for stage, value in timings.items():
            self.metrics.histogram(f"compile_{stage}").observe(value)
        return CachedPlan(
            key=key,
            graph=graph,
            partition=partition,
            plan=plan,
            timings_ms=timings,
            verified=verified,
            native_plan=native_plan,
            engine=engine,
        )

    def _update_breaker_gauges(self) -> None:
        for rung in self._ladder[:-1]:
            self.metrics.state_gauge(
                f"breaker_{rung}", CircuitBreaker.CLOSED
            ).set(self._board.worst_state(rung))

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Instruments + plan-cache stats + scheduler state, one dict."""
        snapshot = self.metrics.snapshot()
        snapshot["plan_cache"] = self.cache.stats()
        snapshot["plan_cache"]["keying"] = self.cache_keying
        snapshot["engine"] = {
            "requested": self.requested_engine,
            "active": self.engine,
        }
        snapshot["scheduler"] = {
            "queue_depth": self.scheduler.queue_depth,
            "inflight": self.scheduler.inflight,
            "max_queue": self.scheduler.max_queue,
            "max_batch": self.scheduler.max_batch,
            "intra_workers": resolve_workers(self.intra_workers),
        }
        snapshot["fusion"] = dict(zip(
            (
                "version",
                "gpu",
                "c_mshared",
                "epsilon",
                "gamma",
                "is_units",
                "naive_borders",
            ),
            self.fusion.key(),
        ))
        retry = self.resilience.retry
        snapshot["resilience"] = {
            "ladder": list(self._ladder),
            "degradation": self.resilience.degradation,
            "quarantine": self.resilience.quarantine,
            "retry": {
                "max_attempts": retry.max_attempts,
                "backoff_base_s": retry.backoff_base_s,
                "backoff_max_s": retry.backoff_max_s,
                "budget_s": retry.budget_s,
            },
            "breakers": self._board.states(),
            "faults": faultinject.stats(),
        }
        return snapshot

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        return self.scheduler.drain(timeout)

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admissions, optionally finish queued work, join workers.

        New submits fail with :class:`RuntimeClosed` from the moment
        this is entered, *before* the scheduler starts draining — a
        drain cannot race fresh work into the queue.
        """
        if self._closed:
            return
        self._closed = True
        self.scheduler.close(drain=drain, timeout=timeout)
        if self._timeout_pool is not None:
            self._timeout_pool.shutdown(wait=False)

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _infer_geometry(inputs: Arrays) -> tuple[int, int]:
    """(height, width) from the bound arrays; they must agree."""
    geometries = {np.shape(a)[:2] for a in inputs.values()}
    if len(geometries) != 1:
        raise ValueError(
            f"cannot infer request geometry from input shapes {geometries}"
        )
    return geometries.pop()

"""Fault tolerance for the serving runtime: retry, breakers, degradation.

The pipeline a request crosses — fuse → plan → (native) compile →
execute — now spans three engines, a plan cache, and a C toolchain.
Any of them can fail or stall at runtime: a native compile hits a
toolchain bug, a cached plan is poisoned, a stage hangs.  This module
holds the *policy* objects that decide what happens next; the
:class:`~repro.serve.runtime.ServingRuntime` enforces them:

* :class:`RetryPolicy` — bounded attempts with exponential backoff,
  deterministic jitter, and a per-request backoff budget;
* :class:`StageTimeouts` — per-stage latency budgets (fuse / plan /
  compile / execute), enforced with :class:`~repro.serve.errors.
  StageTimeout`;
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-(pipeline,
  engine) breakers that trip after repeated compile or verify
  failures and route traffic down the **degradation ladder**
  ``native → tape → recursive``, with half-open probing to recover;
* :class:`ResiliencePolicy` — the bundle the runtime (and
  :func:`repro.api.run`) consumes, with injectable ``clock`` and
  ``sleep`` so every path is deterministic under test;
* :class:`ShardPolicy` — the process-level layer on top: how the
  sharded runtime (:mod:`repro.serve.sharding`) reacts when a whole
  worker *process* dies — sibling-shard retries for in-flight
  requests and automatic respawn of the dead worker.

All three engines compute bit-identical results (the native engine
under its pinned tolerance policy), so degradation trades *throughput*
for availability, never correctness — the property the fault-injected
suite in ``tests/serve/test_resilience.py`` pins.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "DEGRADATION_LADDER",
    "ResiliencePolicy",
    "RetryPolicy",
    "ShardPolicy",
    "StageTimeouts",
    "ladder_from",
]


#: The engine degradation ladder, fastest first.  A breaker guards
#: every rung except the last; tripping routes traffic one rung down.
DEGRADATION_LADDER: Tuple[str, ...] = ("native", "tape", "recursive")


def ladder_from(engine: str) -> Tuple[str, ...]:
    """The degradation ladder starting at ``engine``."""
    if engine not in DEGRADATION_LADDER:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {DEGRADATION_LADDER}"
        )
    return DEGRADATION_LADDER[DEGRADATION_LADDER.index(engine):]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts the first try: ``3`` means one try plus two
    retries.  The delay before retry *n* (0-based) is::

        min(backoff_max_s, backoff_base_s * backoff_multiplier ** n)

    plus/minus up to ``jitter`` (a fraction) derived from a CRC of the
    attempt and the caller-supplied token — stable across runs, so
    tests and incident reproductions see identical schedules.
    ``budget_s`` caps the *total* backoff one request may spend; a
    retry whose delay would exceed the remaining budget is abandoned
    and the request fails with its last error.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.01
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 0.25
    jitter: float = 0.1
    budget_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.budget_s < 0:
            raise ValueError("budget_s must be >= 0")

    def delay_s(self, attempt: int, token: int = 0) -> float:
        """The backoff before retry ``attempt`` (0-based), jittered."""
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_multiplier**attempt,
        )
        if not self.jitter or not base:
            return base
        # Deterministic jitter in [-jitter, +jitter]: a CRC of the
        # (attempt, token) pair spreads concurrent retries without an
        # RNG, so schedules reproduce bit-for-bit.
        crc = zlib.crc32(f"{attempt}:{token}".encode())
        fraction = (crc % 10001) / 5000.0 - 1.0
        return max(0.0, base * (1.0 + self.jitter * fraction))


@dataclass(frozen=True)
class StageTimeouts:
    """Per-stage latency budgets in seconds; ``None`` disables a stage's
    budget (the default — timeout enforcement runs the stage on a side
    thread, which the no-timeout hot path should not pay for)."""

    fuse_s: float | None = None
    plan_s: float | None = None
    compile_s: float | None = None
    execute_s: float | None = None

    def budget_for(self, stage: str) -> float | None:
        return {
            "fuse": self.fuse_s,
            "plan": self.plan_s,
            "compile": self.compile_s,
            "execute": self.execute_s,
        }.get(stage)

    @property
    def any_set(self) -> bool:
        return any(
            budget is not None
            for budget in (
                self.fuse_s, self.plan_s, self.compile_s, self.execute_s
            )
        )


@dataclass(frozen=True)
class BreakerConfig:
    """When a circuit breaker trips and how it probes to recover.

    ``failure_threshold`` consecutive compile/verify failures open the
    breaker; after ``reset_timeout_s`` the next request becomes the
    **half-open probe** — its success closes the breaker, its failure
    re-opens it for another full timeout.
    """

    failure_threshold: int = 3
    reset_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")


class CircuitBreaker:
    """One breaker: closed → open → half-open → closed (or open again).

    Thread-safe; the ``clock`` is injectable so recovery timing is
    testable without sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def quiet(self) -> bool:
        """Closed with zero recorded failures — read without the lock.

        The serving hot path uses this to skip breaker bookkeeping on
        healthy traffic; a stale read can at worst admit one request
        during a concurrent trip, which breaker semantics tolerate.
        """
        return self._state == self.CLOSED and self._failures == 0

    def allow(self) -> bool:
        """Whether a request may use the guarded engine right now.

        An open breaker whose reset timeout elapsed transitions to
        half-open and admits exactly one probe; concurrent requests are
        refused until the probe settles via :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if (
                    self._clock() - self._opened_at
                    >= self.config.reset_timeout_s
                ):
                    self._state = self.HALF_OPEN
                    return True
                return False
            return False  # half-open: a probe is already in flight

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                # The probe failed: back to a full open window.
                self._state = self.OPEN
                self._opened_at = self._clock()
                return
            self._failures += 1
            if (
                self._state == self.CLOSED
                and self._failures >= self.config.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1


class BreakerBoard:
    """Per-(pipeline, engine) breakers plus the ladder walk.

    Keys are ``(pipeline identity, engine)`` — a native-compile failure
    in one pipeline must not degrade every other pipeline's traffic.
    Breakers are created on first use; :meth:`engine_for` walks the
    degradation ladder top-down and returns the first rung whose
    breaker admits the request (the last rung is unguarded).
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def breaker(self, pipeline: str, engine: str) -> CircuitBreaker:
        key = (pipeline, engine)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.config, self._clock)
                self._breakers[key] = breaker
            return breaker

    def engine_for(self, pipeline: str, ladder: Tuple[str, ...]) -> str:
        """The highest ladder rung currently admitting ``pipeline``."""
        # Healthy fast path: no breaker yet (none was ever tripped for
        # this pipeline's top rung) or a quiet one — no locks taken.
        top = self._breakers.get((pipeline, ladder[0]))
        if top is None or top.quiet:
            return ladder[0]
        for engine in ladder[:-1]:
            if self.breaker(pipeline, engine).allow():
                return engine
        return ladder[-1]

    def record_success(self, pipeline: str, engine: str) -> bool:
        """Record a success; returns whether any breaker state changed.

        Quiet breakers (and pipelines that never failed, which have no
        breaker at all) are left untouched so the no-fault hot path
        pays no locking.
        """
        breaker = self._breakers.get((pipeline, engine))
        if breaker is None or breaker.quiet:
            return False
        breaker.record_success()
        return True

    def record_failure(self, pipeline: str, engine: str) -> None:
        self.breaker(pipeline, engine).record_failure()

    def states(self) -> Dict[str, Dict[str, object]]:
        """Every breaker's state, keyed ``"<pipeline>/<engine>"``."""
        with self._lock:
            items = list(self._breakers.items())
        return {
            f"{pipeline}/{engine}": {
                "state": breaker.state,
                "trips": breaker.trips,
            }
            for (pipeline, engine), breaker in items
        }

    def worst_state(self, engine: str) -> str:
        """The most-degraded state of any pipeline's ``engine`` breaker
        (``open`` > ``half_open`` > ``closed``) — the aggregate behind
        the per-rung breaker state gauge."""
        rank = {
            CircuitBreaker.CLOSED: 0,
            CircuitBreaker.HALF_OPEN: 1,
            CircuitBreaker.OPEN: 2,
        }
        with self._lock:
            states = [
                breaker.state
                for (_, rung), breaker in self._breakers.items()
                if rung == engine
            ]
        if not states:
            return CircuitBreaker.CLOSED
        return max(states, key=rank.__getitem__)


@dataclass(frozen=True)
class ResiliencePolicy:
    """The full resilience configuration one runtime enforces.

    ``degradation`` gates the breaker/ladder machinery and
    ``quarantine`` the evict-and-rebuild of plans that fail at execute
    or verify time.  ``clock`` and ``sleep`` are injectable for
    deterministic tests.  :meth:`disabled` yields the PR-4 behaviour —
    one attempt, no breakers, no quarantine — which the overhead
    benchmark uses as its baseline.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeouts: StageTimeouts = field(default_factory=StageTimeouts)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    quarantine: bool = True
    degradation: bool = True
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep

    @classmethod
    def disabled(cls) -> "ResiliencePolicy":
        """No retries, no breakers, no quarantine, no stage budgets."""
        return cls(
            retry=RetryPolicy(max_attempts=1),
            quarantine=False,
            degradation=False,
        )


@dataclass(frozen=True)
class ShardPolicy:
    """Failure policy of the multi-process tier (one level above
    :class:`ResiliencePolicy`, whose ladder runs *inside* each worker).

    ``sibling_retries`` bounds how many further shards — walking the
    consistent-hash ring clockwise from the request's primary — an
    in-flight request tries after its worker dies (each sibling owns a
    cold plan cache for that key, so the retry pays a compile, not a
    failure).  ``respawn`` restores dead workers in the background;
    ``respawn_timeout_s`` bounds the replacement's startup handshake.
    The dataclass must stay picklable: it rides in the worker config.
    """

    sibling_retries: int = 2
    respawn: bool = True
    respawn_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.sibling_retries < 0:
            raise ValueError("sibling_retries must be >= 0")
        if self.respawn_timeout_s <= 0:
            raise ValueError("respawn_timeout_s must be > 0")

"""Hardened parsing of ``REPRO_*`` environment knobs.

Every runtime tunable that can arrive through the environment —
``REPRO_EXEC_WORKERS``, ``REPRO_EXEC_ENGINE``, ``REPRO_CC_CACHE``,
``REPRO_CC_CACHE_MAX``, ``REPRO_NATIVE_THREADS``, ``REPRO_GRID_CACHE``,
``REPRO_NATIVE_TILE2D``, ``REPRO_NATIVE_F32``, ``REPRO_VALIDATE``,
``REPRO_SERVE_PROCS`` — funnels through the
helpers here, so a typo in a
deployment manifest fails with one clear message naming the variable
and the accepted values instead of a bare ``int()`` traceback deep
inside an executor.

The helpers raise :class:`EnvKnobError`, a :class:`ValueError`:
misconfigured environments are configuration errors, not execution
errors, and long-lived serving processes (:mod:`repro.serve`) want to
reject them at startup.
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Sequence


class EnvKnobError(ValueError):
    """An environment variable holds a value the knob cannot accept."""


def raw_env(name: str) -> str | None:
    """The stripped value of ``name``; ``None`` when unset or blank."""
    raw = os.environ.get(name)
    if raw is None:
        return None
    raw = raw.strip()
    return raw or None


def int_env(name: str, default: int, minimum: int | None = None) -> int:
    """Parse an integer knob; blank/unset yields ``default``."""
    raw = raw_env(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise EnvKnobError(
            f"invalid {name}={raw!r}: expected an integer"
        ) from None
    if minimum is not None and value < minimum:
        raise EnvKnobError(
            f"invalid {name}={raw!r}: expected an integer >= {minimum}"
        )
    return value


#: Multipliers accepted by :func:`size_env` suffixes (case-insensitive).
_SIZE_SUFFIXES = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3}


def size_env(name: str, default: int | None) -> int | None:
    """Parse a byte-size knob; blank/unset yields ``default``.

    Accepts a plain byte count (``1048576``) or a ``K``/``M``/``G``
    suffix (``512M``, ``1g``) with 1024-based multipliers.  ``0``
    disables the limit the knob governs, by convention; negative sizes
    are rejected.
    """
    raw = raw_env(name)
    if raw is None:
        return default
    suffix = raw[-1].lower() if raw[-1].isalpha() else ""
    digits = raw[:-1] if suffix else raw
    multiplier = _SIZE_SUFFIXES.get(suffix)
    try:
        value = int(digits)
    except ValueError:
        multiplier = None
    if multiplier is None:
        raise EnvKnobError(
            f"invalid {name}={raw!r}: expected a byte count with an "
            "optional K/M/G suffix"
        ) from None
    if value < 0:
        raise EnvKnobError(f"invalid {name}={raw!r}: expected a size >= 0")
    return value * multiplier


def choice_env(name: str, choices: Sequence[str], default: str) -> str:
    """Parse an enumerated knob; blank/unset yields ``default``."""
    raw = raw_env(name)
    if raw is None:
        return default
    if raw not in choices:
        raise EnvKnobError(
            f"invalid {name}={raw!r}: expected one of {tuple(choices)}"
        )
    return raw


#: Environment knob selecting the static-validation level.
VALIDATE_ENV = "REPRO_VALIDATE"

#: Accepted ``REPRO_VALIDATE`` values, weakest first.
VALIDATE_MODES = ("off", "standard", "strict")


#: Per-context override of the validation level, installed by
#: :func:`validate_override` (a contextvar so serving worker threads and
#: nested calls see their own scope, not a process-global toggle).
_VALIDATE_OVERRIDE: "contextvars.ContextVar[str | None]" = (
    contextvars.ContextVar("repro_validate_override", default=None)
)


@contextmanager
def validate_override(mode: str | None) -> Iterator[None]:
    """Scope a validation level stronger (or weaker) than the env knob.

    ``ExecutionOptions.validate`` routes through this so one call can
    ask for strict plan verification without mutating ``os.environ``;
    ``None`` leaves the environment's level in force.
    """
    if mode is not None and mode not in VALIDATE_MODES:
        raise EnvKnobError(
            f"invalid validate override {mode!r}: expected one of "
            f"{VALIDATE_MODES}"
        )
    token = _VALIDATE_OVERRIDE.set(mode)
    try:
        yield
    finally:
        _VALIDATE_OVERRIDE.reset(token)


def validate_mode() -> str:
    """The ``REPRO_VALIDATE`` level: ``off``, ``standard`` or ``strict``.

    ``standard`` (the default) keeps construction-time checks exactly
    as they always were; ``strict`` additionally runs the static plan
    verifier (:mod:`repro.analysis.verifier`) on every compiled tape
    before it is cached or served; ``off`` skips the optional analysis
    layers for benchmarking.  Anything else raises
    :class:`EnvKnobError` naming the variable and the accepted values.
    Case-insensitive: ``STRICT`` in a deployment manifest means strict.
    A :func:`validate_override` scope takes precedence over the
    environment.
    """
    override = _VALIDATE_OVERRIDE.get()
    if override is not None:
        return override
    raw = raw_env(VALIDATE_ENV)
    if raw is None:
        return "standard"
    mode = raw.lower()
    if mode not in VALIDATE_MODES:
        raise EnvKnobError(
            f"invalid {VALIDATE_ENV}={raw!r}: expected one of "
            f"{VALIDATE_MODES}"
        )
    return mode


#: Environment knob: whether the native lowering folds the provable
#: simplifications of :func:`repro.analysis.dataflow.tape_simplifications`
#: (identity boundary resolvers, all-false masks, dead selects, identity
#: min/max) into the emitted C.  ``off`` emits the literal tape.
NATIVE_SIMPLIFY_ENV = "REPRO_NATIVE_SIMPLIFY"


def native_simplify_enabled() -> bool:
    """Whether analysis-driven native simplification is on (default)."""
    return choice_env(NATIVE_SIMPLIFY_ENV, ("on", "off"), "on") == "on"


#: Environment knob: 2D overlapped tiling in the native engine.
#: ``auto`` (the default) lets :mod:`repro.model.tiling` choose the tile
#: shape from the detected cache hierarchy, ``off`` keeps the classic
#: row-tiled lowering, and an explicit ``HxW`` (e.g. ``64x128``) pins
#: the tile to ``H`` rows by ``W`` columns.
NATIVE_TILE2D_ENV = "REPRO_NATIVE_TILE2D"


def native_tile2d_env() -> "str | tuple[int, int]":
    """The ``REPRO_NATIVE_TILE2D`` setting: ``"auto"``, ``"off"`` or ``(h, w)``.

    Blank/unset yields ``"auto"``.  An explicit shape must be two
    positive integers joined by ``x`` (case-insensitive), e.g.
    ``64x128``; anything else raises :class:`EnvKnobError` naming the
    variable and the accepted grammar.
    """
    raw = raw_env(NATIVE_TILE2D_ENV)
    if raw is None:
        return "auto"
    lowered = raw.lower()
    if lowered in ("auto", "off"):
        return lowered
    parts = lowered.split("x")
    if len(parts) == 2:
        try:
            height, width = int(parts[0]), int(parts[1])
        except ValueError:
            height = width = 0
        if height >= 1 and width >= 1:
            return (height, width)
    raise EnvKnobError(
        f"invalid {NATIVE_TILE2D_ENV}={raw!r}: expected 'auto', 'off' or "
        "an explicit HxW tile shape of two positive integers (e.g. 64x128)"
    )


#: Environment knob: opt-in float32 compute fast path in the native
#: engine.  Plane I/O stays float64; only the per-pixel arithmetic runs
#: in single precision, under the pinned f32 tolerance policy
#: (:data:`repro.backend.native_exec.F32_RTOL` /
#: :data:`~repro.backend.native_exec.F32_ATOL`).
NATIVE_F32_ENV = "REPRO_NATIVE_F32"


def native_f32_enabled() -> bool:
    """Whether the float32 native fast path is on (default off)."""
    return choice_env(NATIVE_F32_ENV, ("on", "off"), "off") == "on"


#: Environment knob: extra space-separated compiler/linker flags for the
#: native ``.so`` builds (e.g. ``-fsanitize=address,undefined`` in the
#: CI sanitizer job).  Flags participate in the content-hash artifact
#: key through the compile command, so changing them recompiles.
NATIVE_CFLAGS_ENV = "REPRO_NATIVE_CFLAGS"


def native_cflags_env() -> tuple:
    """The extra native compile flags, split on whitespace (may be empty)."""
    raw = raw_env(NATIVE_CFLAGS_ENV)
    return tuple(raw.split()) if raw else ()


#: Environment knob: worker processes of the sharded serving tier
#: (``repro serve --processes`` / :class:`repro.serve.sharding.
#: ShardedRuntime`); 1 means the single-process runtime.
SERVE_PROCS_ENV = "REPRO_SERVE_PROCS"


def serve_procs_env(default: int = 1) -> int:
    """The ``REPRO_SERVE_PROCS`` worker-process count (>= 1).

    Blank/unset yields ``default``; anything that is not an integer of
    at least 1 raises :class:`EnvKnobError` naming the variable.
    """
    return int_env(SERVE_PROCS_ENV, default=default, minimum=1)


#: Environment knob injecting deterministic faults at named sites
#: (see :mod:`repro.serve.faultinject`, which owns the grammar).
FAULTS_ENV = "REPRO_FAULTS"


def faults_env() -> str | None:
    """The raw ``REPRO_FAULTS`` fault-injection spec, or ``None``.

    The spec grammar — comma-separated ``site:action[:seconds]``
    rules with optional ``*count`` / ``@every`` triggers — is parsed
    by :func:`repro.serve.faultinject.parse_spec`, which raises
    :class:`EnvKnobError` naming this variable on a malformed value.
    The raw accessor lives here so the knob is catalogued with every
    other ``REPRO_*`` tunable.
    """
    return raw_env(FAULTS_ENV)


def dir_env(name: str, default: Path) -> Path:
    """Parse a directory knob; blank/unset yields ``default``.

    The directory need not exist yet (caches create it on first use),
    but an existing *non-directory* at the path is rejected here rather
    than surfacing later as an opaque ``mkdir`` failure.
    """
    raw = raw_env(name)
    if raw is None:
        return default
    path = Path(raw)
    if path.exists() and not path.is_dir():
        raise EnvKnobError(
            f"invalid {name}={raw!r}: path exists and is not a directory"
        )
    return path

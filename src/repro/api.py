"""The canonical execution API: one entry point, one options object.

The reproduction grew nine ways to run a pipeline — ``execute_pipeline``
/ ``execute_block`` / ``execute_partitioned`` and their ``*_tape`` /
``*_native`` engine variants — each threading its own subset of loose
keyword arguments (engine, workers, runtime, naive borders, ...).  This
module replaces that sprawl with a single dispatch path:

>>> from repro.api import ExecutionOptions, run
>>> env = run(graph, {"src": image})                      # fuse + tape
>>> env = run(graph, {"src": image},
...           options=ExecutionOptions(engine="native"))  # compiled C
>>> env = run("Harris", {"src": image})                   # by app name

:class:`ExecutionOptions` carries everything that used to be a keyword:
the execution engine, intra-request parallelism, an optional
:class:`~repro.serve.runtime.ServingRuntime` to route through, a
per-call validation level, the fusion configuration (version / GPU
model / benefit constants) or an explicit
:class:`~repro.graph.partition.Partition`, and an optional
:class:`~repro.serve.resilience.ResiliencePolicy` whose degradation
ladder also protects direct (non-serving) execution.

The legacy ``execute_*`` entry points survive as thin shims over
:func:`run` / :func:`run_block` that emit ``DeprecationWarning`` — the
differential test suites keep passing through them, but first-party
code calls this module (CI enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.backend.numpy_exec import (
    _ENGINES,
    Arrays,
    ExecutionError,
    Params,
    _execute_block_recursive,
    _execute_partitioned_recursive,
    _execute_pipeline_recursive,
    _resolve_engine,
)
from repro.envknobs import VALIDATE_MODES, validate_override
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition, PartitionBlock
from repro.model.benefit import BenefitConfig
from repro.model.hardware import KNOWN_GPUS, GpuSpec

__all__ = ["ExecutionOptions", "run", "run_block"]


@dataclass(frozen=True)
class ExecutionOptions:
    """Everything that shapes one execution, in one immutable object.

    Parameters
    ----------
    engine:
        ``"tape"`` / ``"recursive"`` / ``"native"``; ``None`` defers to
        ``REPRO_EXEC_ENGINE`` (default tape).  A requested native
        engine falls back to tape on hosts without a C compiler.
    workers:
        Parallelism across independent blocks within the call
        (``None`` defers to ``REPRO_EXEC_WORKERS``).
    runtime:
        A :class:`~repro.serve.runtime.ServingRuntime` to route the
        call through — plan caching, micro-batching, and the serving
        resilience layer apply; the options' own engine/fusion fields
        are ignored in favour of the runtime's configuration.  A
        :class:`~repro.serve.sharding.ShardedRuntime` also works for
        *named* pipelines (requests fan out over its worker
        processes); ad-hoc graph execution needs the single-process
        runtime, since unregistered graphs do not cross process
        boundaries.
    validate:
        Per-call validation level (``"off"`` / ``"standard"`` /
        ``"strict"``) scoped over the call via
        :func:`repro.envknobs.validate_override`; ``None`` leaves the
        ``REPRO_VALIDATE`` environment level in force.
    fuse:
        With no explicit ``partition``: ``True`` fuses the graph under
        the fusion configuration below, ``False`` runs staged
        (unfused) semantics — every kernel separately.
    partition:
        An explicit fusion partition to execute; overrides ``fuse``.
    naive_borders:
        ``True`` reproduces the border-incorrect single-stage
        composition (Fig. 4b); ``None``/``False`` is correct fusion.
        ``None`` additionally defers to the runtime's configured
        default when routing through one.
    fusion_version / gpu / benefit:
        The fusion configuration used when ``fuse=True`` and no
        partition is given: algorithm version (``baseline`` …
        ``exhaustive``), the GPU model feeding the benefit estimate,
        and the benefit-model constants.
    resilience:
        A :class:`~repro.serve.resilience.ResiliencePolicy`.  For
        direct execution an enabled policy walks the degradation
        ladder from the requested engine on failure; when constructing
        a runtime (``ServingRuntime.from_options``) it becomes the
        runtime's policy.
    """

    engine: Optional[str] = None
    workers: Optional[int] = None
    runtime: Optional[Any] = None
    validate: Optional[str] = None
    fuse: bool = True
    partition: Optional[Partition] = None
    naive_borders: Optional[bool] = None
    fusion_version: str = "optimized"
    gpu: Union[str, GpuSpec] = "GTX680"
    benefit: Optional[BenefitConfig] = None
    resilience: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.engine is not None and self.engine not in _ENGINES:
            raise ExecutionError(
                f"unknown execution engine {self.engine!r}; "
                f"expected one of {_ENGINES}"
            )
        if self.validate is not None and self.validate not in VALIDATE_MODES:
            raise ExecutionError(
                f"unknown validation level {self.validate!r}; "
                f"expected one of {VALIDATE_MODES}"
            )
        gpu_name = self.gpu if isinstance(self.gpu, str) else self.gpu.name
        if gpu_name not in KNOWN_GPUS:
            known = ", ".join(sorted(KNOWN_GPUS))
            raise ExecutionError(
                f"unknown GPU {gpu_name!r}; known: {known}"
            )

    @property
    def gpu_spec(self) -> GpuSpec:
        return (
            KNOWN_GPUS[self.gpu] if isinstance(self.gpu, str) else self.gpu
        )

    def fusion_settings(self):
        """The equivalent :class:`repro.serve.plancache.FusionSettings`
        (for building a :class:`ServingRuntime` from these options)."""
        from repro.serve.runtime import fusion_settings

        return fusion_settings(
            version=self.fusion_version,
            gpu=self.gpu_spec,
            config=self.benefit,
            naive_borders=bool(self.naive_borders),
        )


def run(
    pipeline: Union[KernelGraph, str],
    inputs: Arrays,
    params: Params | None = None,
    *,
    options: ExecutionOptions | None = None,
) -> Arrays:
    """Run a pipeline: the one entry point every path dispatches through.

    ``pipeline`` is a built :class:`~repro.graph.dag.KernelGraph` or
    the name of a registered paper app (``"Harris"``, ``"Canny"``, …);
    names resolve against ``options.runtime``'s registry when routing
    through a serving runtime, otherwise against the default registry
    at the geometry inferred from ``inputs``.  Returns the environment
    mapping surviving image names to arrays — identical, bit for bit,
    to what the legacy ``execute_*`` entry points return for the same
    configuration.
    """
    opts = options or ExecutionOptions()
    if opts.runtime is not None:
        if isinstance(pipeline, str):
            return opts.runtime.execute(pipeline, inputs, params)
        partition = opts.partition
        if partition is None and not opts.fuse:
            partition = Partition.singletons(pipeline)
        return opts.runtime.execute_graph(
            pipeline,
            inputs,
            params,
            partition,
            naive_borders=opts.naive_borders,
        )
    graph, params = _resolve_pipeline(pipeline, inputs, params)
    engine = _resolve_engine(opts.engine)
    with validate_override(opts.validate):
        if opts.resilience is not None and getattr(
            opts.resilience, "degradation", False
        ):
            return _run_ladder(graph, inputs, params, opts, engine)
        return _run_direct(graph, inputs, params, opts, engine)


def run_block(
    graph: KernelGraph,
    block: PartitionBlock,
    arrays: Arrays,
    params: Params | None = None,
    *,
    options: ExecutionOptions | None = None,
    call_counter: Dict[str, int] | None = None,
) -> np.ndarray:
    """Run one partition block with fused-kernel semantics.

    ``call_counter`` (when given) is filled with per-kernel
    re-evaluation counts and forces the recursive engine — the counts
    instrument *its* evaluation order (the tape engine deduplicates
    producer evaluations by grid).
    """
    opts = options or ExecutionOptions()
    naive = bool(opts.naive_borders)
    engine = (
        "recursive"
        if call_counter is not None
        else _resolve_engine(opts.engine)
    )
    with validate_override(opts.validate):
        if engine == "native":
            from repro.backend.native_exec import (
                native_available,
                native_plan_for_block,
            )

            if native_available():
                plan = native_plan_for_block(graph, block, naive)
                return plan.execute(arrays, params)
            engine = "tape"
        if engine == "tape":
            from repro.backend.plan import plan_for_block

            return plan_for_block(graph, block, naive).execute(arrays, params)
        return _execute_block_recursive(
            graph,
            block,
            arrays,
            params,
            naive_borders=naive,
            call_counter=call_counter,
        )


def _resolve_pipeline(
    pipeline: Union[KernelGraph, str],
    inputs: Arrays,
    params: Params | None,
) -> Tuple[KernelGraph, Params | None]:
    if isinstance(pipeline, KernelGraph):
        return pipeline, params
    if isinstance(pipeline, str):
        from repro.serve.registry import default_registry

        entry = default_registry().get(pipeline)
        geometries = {np.shape(a)[:2] for a in inputs.values()}
        if len(geometries) != 1:
            raise ExecutionError(
                "cannot infer pipeline geometry from input shapes "
                f"{geometries}"
            )
        height, width = geometries.pop()
        merged = dict(entry.params)
        merged.update(params or {})
        return entry.graph(width, height), merged
    raise ExecutionError(
        f"cannot run a {type(pipeline).__name__}; expected a KernelGraph "
        "or a registered pipeline name"
    )


def _partition_of(graph: KernelGraph, opts: ExecutionOptions) -> Partition:
    """The partition one call executes: explicit, fused, or singletons."""
    if opts.partition is not None:
        return opts.partition
    if not opts.fuse:
        return Partition.singletons(graph)
    from repro.eval.runner import partition_for

    return partition_for(
        graph,
        opts.gpu_spec,
        opts.fusion_version,
        opts.benefit or BenefitConfig(),
    )


def _run_direct(
    graph: KernelGraph,
    inputs: Arrays,
    params: Params | None,
    opts: ExecutionOptions,
    engine: str,
) -> Arrays:
    staged = opts.partition is None and not opts.fuse
    naive = bool(opts.naive_borders)
    if engine == "recursive" and staged:
        # The reference walk of the unfused program, kernel by kernel.
        return _execute_pipeline_recursive(graph, inputs, params)
    partition = _partition_of(graph, opts)
    if engine == "native":
        from repro.backend.native_exec import (
            native_available,
            native_plan_for_partition,
        )

        if native_available():
            plan = native_plan_for_partition(graph, partition, naive)
            return plan.execute(inputs, params, opts.workers)
        engine = "tape"
    if engine == "tape":
        from repro.backend.plan import plan_for_partition

        plan = plan_for_partition(graph, partition, naive)
        return plan.execute(inputs, params, opts.workers)
    return _execute_partitioned_recursive(
        graph, partition, inputs, params, naive_borders=naive
    )


def _run_ladder(
    graph: KernelGraph,
    inputs: Arrays,
    params: Params | None,
    opts: ExecutionOptions,
    engine: str,
) -> Arrays:
    """Direct execution under a resilience policy's degradation ladder.

    All rungs compute bit-identical results, so a failed compile on a
    fast engine degrades to a slower answer rather than an error —
    the same availability contract the serving runtime enforces, for
    callers that execute directly.
    """
    from repro.serve.resilience import ladder_from

    last_error: Optional[BaseException] = None
    for rung in ladder_from(engine):
        try:
            return _run_direct(graph, inputs, params, opts, rung)
        except Exception as err:
            last_error = err
    assert last_error is not None
    raise last_error

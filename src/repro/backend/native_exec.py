"""Native execution engine: block tapes lowered to compiled C kernels.

The tape interpreter (:mod:`repro.backend.plan`) already removes the
recursive engine's Python-dispatch tax, but it still *interprets* each
SSA instruction as a separate NumPy op: every intermediate slot is a
full ``(h, w)`` array that round-trips through memory — exactly the
"global memory" traffic Eq. 3–4 credits kernel fusion for removing.
This module finishes the journey from loop fusion to kernel fusion on
the CPU: each :class:`~repro.backend.plan.BlockPlan` tape is lowered to
**one C function** — a single row-tiled loop nest whose per-pixel SSA
slots become ``const double`` register temporaries (the degenerate,
tightest form of per-tile scratch), compiled through
:mod:`repro.backend.cpu_exec`'s content-hash ``.so`` cache and driven
via :mod:`ctypes` on zero-copy ``float64`` NumPy buffers.

The loop nest mirrors :mod:`repro.backend.codegen_c`'s region analysis
(Section IV-B): an **interior** body where every boundary resolver is
provably the identity (direct loads, no branches), and a **halo** body
that replays the tape's index exchange exactly — ``idx_clamp`` /
``idx_mirror`` / ``idx_repeat`` resolvers and CONSTANT-mode masks are
bit-compatible with :func:`repro.dsl.boundary.resolve_array`.  Rows are
processed in tiles (``REPRO_NATIVE_TILE`` rows each) and tiles are the
OpenMP work units (``REPRO_NATIVE_THREADS``; compiled in only when the
toolchain supports ``-fopenmp``).  Every innermost x-loop carries
``#pragma omp simd`` so the compiler vectorizes without reassociating
(per-lane IEEE semantics keep the bit-identity contract).

**2D overlapped tiling** (``REPRO_NATIVE_TILE2D``, default ``auto``).
The fused tape recomputes every producer per consumer pixel — a
depth-3 chain of 3×3 stencils evaluates the first stage ~49 times per
output pixel.  For eligible fused local chains the lowering instead
partitions the plane into (tile_h × tile_w) tiles and computes each
non-destination stage **once** per pixel of its halo-extended tile
region into a small stack scratch buffer (the CPU analogue of the
paper's shared-memory overlapped tiling, Section IV): redundant work
shrinks from a product of stencil areas to a ~1.1–1.3× halo fraction
while every intermediate stays cache-resident.  The tile shape comes
from the geometry-free cost model in :mod:`repro.model.tiling`
(working set vs the detected cache hierarchy, plus the halo recompute
term) or from an explicit ``HxW`` knob value; ineligible chains
(single kernels, reductions, MIRROR/REPEAT internal edges, margins
past the cap) silently keep the classic row-tiled form.  Stage values
are computed by the same ``-ffp-contract=off`` expression sequences
the fused tape inlines, so tile2d output is **bit-identical** to both
the classic lowering and the tape interpreter.

**Float32 fast path** (``REPRO_NATIVE_F32=on``, default off).  Plane
I/O stays float64, but per-pixel slots, literals and libm calls run in
single precision (roughly double SIMD lanes per vector).  The pinned
tolerance policy becomes :data:`F32_RTOL`/:data:`F32_ATOL` and strict
mode still differentially verifies against the float64 tape.

**Strided views.**  Shape-polymorphic kernels take one leading-stride
``const int`` per input plane, so row-strided ``float64`` views (crops,
row subsampling) bind zero-copy instead of paying an
``ascontiguousarray`` copy; :func:`noncontiguous_zero_copy_count`
tallies the avoided copies.

**Numerical contract.**  Sources compile with ``-ffp-contract=off`` so
the compiler cannot fuse multiply-adds; every ALU op (`+ - * /`, the
NumPy-exact ``repro_mod`` / ``repro_min`` / ``repro_max`` helpers),
comparisons, selects, ``sqrt`` and ``rsqrt`` (``1/sqrt``; both
IEEE-correctly rounded) are then **bit-identical** to the tape
interpreter.  Remaining libm calls (``exp``, ``tan``, ``pow``, …) may
differ from NumPy by a couple of ulp, so plans whose tapes use them
carry an explicit tolerance instead — :func:`tolerance_for` pins the
policy, and ``REPRO_VALIDATE=strict`` differentially verifies native
output against the tape interpreter on a plan's first execution.

**Fallbacks.**  The engine degrades gracefully, block by block, to the
tape interpreter: when no C compiler is on PATH, when a block cannot be
lowered (global reduction operators, casts to unsupported dtypes), or —
at call time — when the bound arrays are not plain ``float64`` planes
of the declared geometry (the tape resolves such cases dynamically;
baking their shapes would change semantics).

**Shape polymorphism.**  With ``polymorphic=True`` the lowering emits
``width`` / ``height`` as runtime ``const int`` parameters instead of
baked literals: every extent in the tape's grid keys is checked against
the block's iteration space and replaced by the matching symbol, the
interior bounds become static margins off the runtime extents, and the
tile count is computed at run time.  The generated C source is then
**byte-identical across resolutions** of the same block structure, so
the content-hash ``.so`` cache compiles each structure exactly once and
one loaded artifact serves every geometry (the actual ``(height,
width)`` is inferred from the bound arrays per call).  Blocks whose
tapes mix image geometries have no polymorphic lowering and fall back;
a polymorphic plan refuses to run tape fallbacks at a geometry other
than the one it was planned at (the tape is shape-specialized).
"""

from __future__ import annotations

import ctypes
import math
import re
import threading
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.envknobs import (
    NATIVE_F32_ENV,
    NATIVE_TILE2D_ENV,
    int_env,
    native_cflags_env,
    native_f32_enabled,
    native_simplify_enabled,
    native_tile2d_env,
    validate_mode,
)

from repro.backend.cpu_exec import (
    _find_compiler,
    compiler_available,
    load_shared_library,
    openmp_available,
)
from repro.backend.numpy_exec import (
    Arrays,
    ExecutionError,
    Params,
    _array_for,
    _deprecated_entry,
    block_schedule,
    fault_check,
)
from repro.backend.plan import (
    BlockPlan,
    PartitionPlan,
    _TapeCompiler,
    _iteration_grids,
    plan_for_block,
    plan_for_partition,
    resolve_key,
    resolve_workers,
)
from repro.dsl.boundary import BoundaryMode
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition, PartitionBlock

__all__ = [
    "F32_ATOL",
    "F32_RTOL",
    "NATIVE_F32_ENV",
    "NATIVE_THREADS_ENV",
    "NATIVE_TILE2D_ENV",
    "NATIVE_TILE_ENV",
    "NativeBlock",
    "NativeBlockPlan",
    "NativeLoweringError",
    "NativePartitionPlan",
    "NativeVerificationError",
    "assert_native_equiv",
    "clear_native_caches",
    "execute_block_native",
    "execute_partitioned_native",
    "execute_pipeline_native",
    "lower_block_source",
    "native_available",
    "native_plan_for_block",
    "native_plan_for_partition",
    "noncontiguous_zero_copy_count",
    "reset_noncontiguous_zero_copy",
    "resolve_native_threads",
    "resolve_native_tile",
    "resolve_native_tile2d",
    "tolerance_for",
]

#: Environment knob: OpenMP threads for the row-tiled loop nests.
NATIVE_THREADS_ENV = "REPRO_NATIVE_THREADS"

#: Environment knob: rows per parallel tile (the OpenMP work unit).
NATIVE_TILE_ENV = "REPRO_NATIVE_TILE"

#: Default rows per tile — large enough to amortize scheduling, small
#: enough to load-balance tall images across threads.
DEFAULT_TILE_ROWS = 64


def native_available() -> bool:
    """Whether the native engine can compile (a C compiler is on PATH)."""
    return compiler_available()


def resolve_native_threads(threads: int | None = None) -> int:
    """The effective OpenMP thread count: explicit argument, else the
    ``REPRO_NATIVE_THREADS`` knob, else serial (1)."""
    if threads is not None:
        return max(1, int(threads))
    return max(1, int_env(NATIVE_THREADS_ENV, default=1))


def resolve_native_tile() -> int:
    """Rows per parallel tile (``REPRO_NATIVE_TILE``, default 64)."""
    return int_env(NATIVE_TILE_ENV, default=DEFAULT_TILE_ROWS, minimum=1)


def resolve_native_tile2d() -> "str | Tuple[int, int]":
    """The 2D overlapped-tiling setting: ``"auto"``, ``"off"`` or an
    explicit ``(tile_h, tile_w)`` from ``REPRO_NATIVE_TILE2D``."""
    return native_tile2d_env()


# -- zero-copy metric for row-strided polymorphic inputs -------------------

_metrics_lock = threading.Lock()
_noncontiguous_zero_copy = 0


def _note_zero_copy() -> None:
    global _noncontiguous_zero_copy
    with _metrics_lock:
        _noncontiguous_zero_copy += 1


def noncontiguous_zero_copy_count() -> int:
    """How many non-contiguous input planes ran without a copy.

    Shape-polymorphic kernels take a per-plane leading stride, so any
    row-strided ``float64`` view (a crop, every other row, a
    sub-sampled plane) binds zero-copy; this process-wide counter
    tallies each such avoided ``ascontiguousarray`` copy.
    """
    with _metrics_lock:
        return _noncontiguous_zero_copy


def reset_noncontiguous_zero_copy() -> None:
    """Reset the zero-copy counter (tests, benchmark sections)."""
    global _noncontiguous_zero_copy
    with _metrics_lock:
        _noncontiguous_zero_copy = 0


class NativeLoweringError(ExecutionError):
    """A block tape has no native lowering (reduction, exotic cast).

    Raised by the lowering pass and caught by the plan builders, which
    fall back to the tape interpreter for the offending block.
    """


class NativeVerificationError(ExecutionError):
    """Strict-mode differential verification against the tape failed."""


class _RuntimeFallback(Exception):
    """Bound arrays do not fit the compiled geometry; use the tape."""


# ---------------------------------------------------------------------------
# Tolerance policy
# ---------------------------------------------------------------------------

#: Tape ``call`` functions whose C lowering is bit-identical to NumPy:
#: IEEE 754 requires correctly-rounded sqrt and division, so ``sqrt``
#: and ``rsqrt`` (``1.0 / sqrt``) carry no tolerance.  Every other libm
#: function (exp, log, trig, pow, atan2) is only guaranteed to within a
#: few ulp of NumPy's implementation.
EXACT_CALLS = frozenset({"sqrt", "rsqrt"})

#: Relative/absolute tolerance for plans that use non-exact libm calls.
#: Measured libm-vs-NumPy divergence is <= ~4e-16 relative per call;
#: 1e-12 leaves four orders of magnitude of headroom for compounding
#: across fused chains while still catching any real lowering bug.
LIBM_RTOL = 1e-12
LIBM_ATOL = 1e-12

#: Pinned tolerance of the opt-in float32 fast path
#: (``REPRO_NATIVE_F32``): plane I/O stays float64 but every per-pixel
#: operation rounds to single precision, so the divergence budget is
#: ~n_ops × 2^-24 relative.  1e-4 relative / 1e-5 absolute covers the
#: deepest fused chains in the suite (hundreds of f32 roundings) with
#: two orders of magnitude to spare while still catching any use of the
#: wrong precision in the lowering.
F32_RTOL = 1e-4
F32_ATOL = 1e-5


def tolerance_for(
    plans: Sequence[BlockPlan], f32: Optional[bool] = None
) -> Optional[Tuple[float, float]]:
    """The pinned comparison policy for native output vs the tape.

    Returns ``None`` when the tapes only use bit-exact operations
    (ALU ops, comparisons, selects, ``sqrt``/``rsqrt``) — outputs must
    then be **bit-identical** — or ``(rtol, atol)`` when any other libm
    call is present.  Under the float32 fast path (``f32=None`` reads
    ``REPRO_NATIVE_F32``) nothing is bit-exact and the pinned policy is
    ``(F32_RTOL, F32_ATOL)``.
    """
    if f32 is None:
        f32 = native_f32_enabled()
    if f32:
        return (F32_RTOL, F32_ATOL)
    calls = set()
    for plan in plans:
        calls.update(
            instr.aux[0] for instr in plan.tape if instr.op == "call"
        )
    if calls <= EXACT_CALLS:
        return None
    return (LIBM_RTOL, LIBM_ATOL)


def assert_native_equiv(
    expected: np.ndarray,
    actual: np.ndarray,
    tolerance: Optional[Tuple[float, float]],
    context: str = "output",
) -> None:
    """Compare native output against the tape under the pinned policy.

    Bit-identical (``tolerance=None``) or ``allclose`` within
    ``(rtol, atol)``; raises :class:`NativeVerificationError` with the
    NumPy diff report on mismatch.
    """
    try:
        if tolerance is None:
            np.testing.assert_array_equal(actual, expected)
        else:
            rtol, atol = tolerance
            np.testing.assert_allclose(
                actual, expected, rtol=rtol, atol=atol
            )
    except AssertionError as err:
        raise NativeVerificationError(
            f"native output diverges from the tape interpreter for "
            f"{context!r}:\n{err}"
        ) from None


# ---------------------------------------------------------------------------
# C lowering
# ---------------------------------------------------------------------------

_PREAMBLE = """\
/* Generated by repro (kernel fusion reproduction of Qiao et al., CGO 2019).
 * Native tape backend: one row-tiled loop nest per fused block, SSA
 * slots in registers, interior/halo splitting, boundary resolvers
 * bit-compatible with repro.dsl.boundary.resolve_array.  Compile with
 * -ffp-contract=off: the numerical contract forbids FMA contraction. */
#include <math.h>

static inline int idx_clamp(int i, int n) {
    return i < 0 ? 0 : (i >= n ? n - 1 : i);
}
static inline int idx_mirror(int i, int n) {
    int p = 2 * n;
    int j = ((i % p) + p) % p;
    return j < n ? j : p - 1 - j;
}
static inline int idx_repeat(int i, int n) {
    return ((i % n) + n) % n;
}
/* np.mod: remainder with the divisor's sign (and np.mod's signed zero). */
static inline double repro_mod(double a, double b) {
    double r = fmod(a, b);
    if (r != 0.0) {
        if ((r < 0.0) != (b < 0.0)) r += b;
    } else {
        r = copysign(0.0, b);
    }
    return r;
}
/* np.minimum / np.maximum: NaN-propagating (unlike fmin/fmax). */
static inline double repro_min(double a, double b) {
    if (isnan(a)) return a;
    if (isnan(b)) return b;
    return a < b ? a : b;
}
static inline double repro_max(double a, double b) {
    if (isnan(a)) return a;
    if (isnan(b)) return b;
    return a > b ? a : b;
}
/* Single-precision twins for the REPRO_NATIVE_F32 fast path. */
static inline float repro_modf32(float a, float b) {
    float r = fmodf(a, b);
    if (r != 0.0f) {
        if ((r < 0.0f) != (b < 0.0f)) r += b;
    } else {
        r = copysignf(0.0f, b);
    }
    return r;
}
static inline float repro_minf32(float a, float b) {
    if (isnan(a)) return a;
    if (isnan(b)) return b;
    return a < b ? a : b;
}
static inline float repro_maxf32(float a, float b) {
    if (isnan(a)) return a;
    if (isnan(b)) return b;
    return a > b ? a : b;
}
"""

_BIN_C = {
    "add": "({} + {})",
    "sub": "({} - {})",
    "mul": "({} * {})",
    "div": "({} / {})",
    "mod": "repro_mod({}, {})",
    "min": "repro_min({}, {})",
    "max": "repro_max({}, {})",
}

_CMP_C = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}

_CALL_C = {
    "exp": "exp({})",
    "log": "log({})",
    "sqrt": "sqrt({})",
    "rsqrt": "(1.0 / sqrt({}))",
    "sin": "sin({})",
    "cos": "cos({})",
    "tan": "tan({})",
    "tanh": "tanh({})",
    "pow": "pow({}, {})",
    "atan2": "atan2({}, {})",
}

_BIN_C_F32 = {
    "add": "({} + {})",
    "sub": "({} - {})",
    "mul": "({} * {})",
    "div": "({} / {})",
    "mod": "repro_modf32({}, {})",
    "min": "repro_minf32({}, {})",
    "max": "repro_maxf32({}, {})",
}

_CALL_C_F32 = {
    "exp": "expf({})",
    "log": "logf({})",
    "sqrt": "sqrtf({})",
    "rsqrt": "(1.0f / sqrtf({}))",
    "sin": "sinf({})",
    "cos": "cosf({})",
    "tan": "tanf({})",
    "tanh": "tanhf({})",
    "pow": "powf({}, {})",
    "atan2": "atan2f({}, {})",
}

_RESOLVER_C = {
    "clamp": "idx_clamp",
    "undefined": "idx_clamp",
    "mirror": "idx_mirror",
    "repeat": "idx_repeat",
}


def _double_literal(value: float, f32: bool = False) -> str:
    """An exact C99 literal for a Python float (hex-float form).

    With ``f32`` the literal carries an ``f`` suffix, so the compiler
    rounds it to single precision exactly as ``np.float32(value)``
    would (NaN/infinity convert implicitly).
    """
    value = float(value)
    if math.isnan(value):
        return "NAN"
    if math.isinf(value):
        return "INFINITY" if value > 0 else "-INFINITY"
    return value.hex() + ("f" if f32 else "")


def _identifier(prefix: str, name: str, used: set) -> str:
    candidate = f"{prefix}_{re.sub(r'[^0-9A-Za-z_]', '_', name)}"
    while candidate in used:
        candidate += "_"
    used.add(candidate)
    return candidate


def _axis_of(key: tuple) -> str:
    while key[0] != "base":
        key = key[1]
    return key[1]


def _offsets(key: tuple) -> Tuple[int, int]:
    """Offset interval of a grid key relative to its base coordinate,
    under the interior assumption that every resolver is the identity."""
    tag = key[0]
    if tag == "base":
        return (0, 0)
    if tag == "shift":
        low, high = _offsets(key[1])
        return (low + key[2], high + key[2])
    if tag == "resolve":
        return _offsets(key[1])
    raise NativeLoweringError(f"grid key {key!r} has no native lowering")


def _interior_bounds(
    tape: Sequence, width: int, height: int
) -> Tuple[int, int, int, int]:
    """``(xlo, xhi, ylo, yhi)`` of the interior region (half-open).

    A pixel is interior when every boundary resolver and out-of-bounds
    mask in the tape — including the runtime resolution of external
    gathers against the baked ``(width, height)`` geometry — is provably
    the identity there, so the interior body can load directly.
    """
    x_cons: List[Tuple[int, int]] = []
    y_cons: List[Tuple[int, int]] = []

    def note(parent: tuple, n: int) -> None:
        low, high = _offsets(parent)
        cons = x_cons if _axis_of(parent) == "x" else y_cons
        cons.append((-low, n - high))

    def walk(key: tuple) -> None:
        if key[0] == "shift":
            walk(key[1])
        elif key[0] == "resolve":
            note(key[1], key[2])
            walk(key[1])

    for instr in tape:
        if instr.op == "gather":
            _, xi, yi, boundary = instr.aux
            walk(xi)
            walk(yi)
            for key, n in ((xi, width), (yi, height)):
                if resolve_key(key, n, boundary.mode) != key:
                    note(key, n)
                if boundary.mode is BoundaryMode.CONSTANT:
                    note(key, n)
        elif instr.op == "maskfill":
            mask_key = instr.aux[0]
            for _, parent, n in mask_key[1:]:
                note(parent, n)
                walk(parent)
    xlo = max([0] + [lo for lo, _ in x_cons])
    xhi = min([width] + [hi for _, hi in x_cons])
    ylo = max([0] + [lo for lo, _ in y_cons])
    yhi = min([height] + [hi for _, hi in y_cons])
    return (xlo, max(xlo, xhi), ylo, max(ylo, yhi))


class _Body:
    """Emits one per-pixel body variant (interior or halo) from a tape.

    Coordinate and mask expressions are value-numbered per grid key, so
    shared resolve chains (the producer-result cache's grids) land in
    one ``const int`` temporary each.
    """

    def __init__(
        self,
        interior: bool,
        width: int,
        height: int,
        img_ids: Dict[str, str],
        polymorphic: bool = False,
        simp=None,
        f32: bool = False,
        pitches: Optional[Dict[str, str]] = None,
        scratch: Optional[Dict[str, Tuple[str, str, str, str]]] = None,
    ):
        self.interior = interior
        self.width = width
        self.height = height
        self.img_ids = img_ids
        self.polymorphic = polymorphic
        #: Value-analysis facts (:class:`repro.analysis.dataflow.
        #: TapeSimplifications`) proving some resolvers/masks are the
        #: identity; ``None`` emits the literal tape.
        self.simp = simp
        #: Float32 fast path: slots, literals and libm calls go single
        #: precision (loads/stores convert implicitly on assignment).
        self.f32 = f32
        #: Per-image row-pitch tokens.  Defaults to the width symbol;
        #: polymorphic lowerings map each plane to its runtime leading
        #: stride formal so row-strided views bind zero-copy.
        self.pitches = pitches or {}
        #: Overlapped-tiling scratch redirection: image name ->
        #: ``(buffer, sx0, sy0, pitch)`` for intermediates materialized
        #: per-tile.  Reads subtract the region origin and use the
        #: compile-time scratch pitch.
        self.scratch = scratch or {}
        #: The extent tokens used in emitted C: literals when the
        #: geometry is baked, the runtime parameter names otherwise.
        self.width_sym = "width" if polymorphic else str(width)
        self.height_sym = "height" if polymorphic else str(height)
        self.lines: List[str] = []
        self._coords: Dict[tuple, str] = {}
        self._oobs: Dict[tuple, str] = {}
        self._counter = 0

    def extent(self, axis: str, n: int) -> str:
        """The C token for an extent baked into a grid/mask key.

        In polymorphic mode the key's extent must equal the block's
        iteration-space extent on that axis — that is what makes the
        substitution by the runtime ``width`` / ``height`` parameter
        sound for every uniform geometry.  Mixed-geometry tapes have no
        polymorphic lowering.
        """
        if not self.polymorphic:
            return str(n)
        expected = self.width if axis == "x" else self.height
        if n != expected:
            raise NativeLoweringError(
                f"{axis}-axis extent {n} differs from the iteration "
                f"space ({expected}); shape-polymorphic lowering needs "
                "a uniform geometry"
            )
        return "width" if axis == "x" else "height"

    def _temp(self, expr: str) -> str:
        name = f"c{self._counter}"
        self._counter += 1
        self.lines.append(f"    const int {name} = {expr};")
        return name

    def coord(self, key: tuple) -> str:
        cached = self._coords.get(key)
        if cached is not None:
            return cached
        tag = key[0]
        if tag == "base":
            out = "x" if key[1] == "x" else "y"
        elif tag == "shift":
            out = f"({self.coord(key[1])} + ({key[2]}))"
        elif tag == "resolve":
            parent = self.coord(key[1])
            if self.interior or (
                self.simp is not None
                and key in self.simp.identity_resolves
            ):
                out = parent
            else:
                _, _, n, mode = key
                n_sym = self.extent(_axis_of(key), n)
                if mode == "constant":
                    raw = self._temp(parent)
                    out = self._temp(
                        f"({raw} < 0 || {raw} >= {n_sym}) ? 0 : {raw}"
                    )
                else:
                    resolver = _RESOLVER_C.get(mode)
                    if resolver is None:
                        raise NativeLoweringError(
                            f"boundary mode {mode!r} has no native lowering"
                        )
                    out = self._temp(f"{resolver}({parent}, {n_sym})")
        else:
            raise NativeLoweringError(
                f"grid key {key!r} has no native lowering"
            )
        self._coords[key] = out
        return out

    def oob(self, key: tuple) -> str:
        if self.interior:
            return "0"
        if self.simp is not None and key in self.simp.identity_masks:
            return "0"
        cached = self._oobs.get(key)
        if cached is not None:
            return cached
        _, parent, n = key
        n_sym = self.extent(_axis_of(parent), n)
        raw = self._temp(self.coord(parent))
        out = self._temp(f"({raw} < 0 || {raw} >= {n_sym})")
        self._oobs[key] = out
        return out

    def mask(self, key: tuple) -> str:
        if self.interior:
            return "0"
        _, xmask, ymask = key
        x_oob, y_oob = self.oob(xmask), self.oob(ymask)
        if x_oob == "0" and y_oob == "0":
            return "0"
        if x_oob == "0":
            return y_oob
        if y_oob == "0":
            return x_oob
        return f"({x_oob} || {y_oob})"

    def read(self, image: str, xi: tuple, yi: tuple, boundary) -> str:
        if image in self.scratch:
            return self._read_scratch(image, xi, yi, boundary)
        width, height = self.width, self.height
        buffer = self.img_ids[image]
        pitch = self.pitches.get(image, self.width_sym)
        if self.interior:
            return (
                f"{buffer}[({self.coord(yi)}) * {pitch} "
                f"+ ({self.coord(xi)})]"
            )
        mode = boundary.mode
        # ``resolve_key``'s identity collapse (an un-shifted base grid
        # inside ``[0, n)``) is shape-relative at uniform geometry, so
        # deciding it against the plan geometry is valid for every
        # geometry a polymorphic block can run at.
        xr = self.coord(resolve_key(xi, width, mode))
        yr = self.coord(resolve_key(yi, height, mode))
        value = f"{buffer}[({yr}) * {pitch} + ({xr})]"
        if mode is BoundaryMode.CONSTANT:
            oob = self.mask(
                ("ormask", ("oob", xi, width), ("oob", yi, height))
            )
            if oob != "0":
                fill = _double_literal(boundary.constant, self.f32)
                value = f"({oob} ? {fill} : {value})"
        return value

    def _read_scratch(
        self, image: str, xi: tuple, yi: tuple, boundary
    ) -> str:
        """A read of a per-tile materialized intermediate.

        Every non-interior scratch read resolves through ``idx_clamp``:
        for CLAMP/UNDEFINED that is the two-stage index exchange
        verbatim, and for CONSTANT the clamped index is a safe
        in-region dummy whose value the out-of-bounds guard discards —
        the margin ledger proves the clamped coordinate stays inside
        the producer's scratch region, where the tape's 0-index dummy
        could step outside the tile.
        """
        buffer, sx0, sy0, pitch = self.scratch[image]
        width, height = self.width, self.height
        if self.interior:
            xr = self.coord(xi)
            yr = self.coord(yi)
        else:
            xr = self.coord(resolve_key(xi, width, BoundaryMode.CLAMP))
            yr = self.coord(resolve_key(yi, height, BoundaryMode.CLAMP))
        value = f"{buffer}[(({yr}) - {sy0}) * {pitch} + (({xr}) - {sx0})]"
        if not self.interior and boundary.mode is BoundaryMode.CONSTANT:
            oob = self.mask(
                ("ormask", ("oob", xi, width), ("oob", yi, height))
            )
            if oob != "0":
                fill = _double_literal(boundary.constant, self.f32)
                value = f"({oob} ? {fill} : {value})"
        return value


def _emit_tape_body(
    tape: Sequence,
    root: int,
    width: int,
    height: int,
    interior: bool,
    img_ids: Dict[str, str],
    param_ids: Dict[str, str],
    polymorphic: bool = False,
    simp=None,
    f32: bool = False,
    pitches: Optional[Dict[str, str]] = None,
    scratch: Optional[Dict[str, Tuple[str, str, str, str]]] = None,
) -> List[str]:
    body = _Body(
        interior,
        width,
        height,
        img_ids,
        polymorphic,
        simp,
        f32=f32,
        pitches=pitches,
        scratch=scratch,
    )
    ctype = "float" if f32 else "double"
    one, zero = ("1.0f", "0.0f") if f32 else ("1.0", "0.0")
    bin_c = _BIN_C_F32 if f32 else _BIN_C
    call_c = _CALL_C_F32 if f32 else _CALL_C
    for index, instr in enumerate(tape):
        op, args, aux = instr.op, instr.args, instr.aux
        if op == "const":
            expr = _double_literal(aux[0], f32)
        elif op == "param":
            # Parameters arrive as double formals; in f32 mode the slot
            # assignment rounds them to single precision exactly once.
            expr = param_ids[aux[0]]
        elif op == "gather":
            expr = body.read(*aux)
        elif op == "bin":
            if simp is not None and index in simp.identity_ops:
                # Value analysis proved this min/max always passes one
                # operand through (strict interval separation, NaN-free
                # loser) — the copy is bit-identical and the compiler
                # propagates it away.
                expr = f"s{simp.identity_ops[index]}"
            else:
                template = bin_c.get(aux[0])
                if template is None:
                    raise NativeLoweringError(
                        f"binary op {aux[0]!r} has no native lowering"
                    )
                expr = template.format(f"s{args[0]}", f"s{args[1]}")
        elif op == "un":
            fabs = "fabsf" if f32 else "fabs"
            expr = (
                f"(-s{args[0]})"
                if aux[0] == "neg"
                else f"{fabs}(s{args[0]})"
            )
        elif op == "cmp":
            operator = _CMP_C.get(aux[0])
            if operator is None:
                raise NativeLoweringError(
                    f"comparison {aux[0]!r} has no native lowering"
                )
            expr = f"((s{args[0]} {operator} s{args[1]}) ? {one} : {zero})"
        elif op == "select":
            if simp is not None and index in simp.dead_selects:
                expr = f"s{simp.dead_selects[index]}"
            else:
                expr = f"((s{args[0]} != {zero}) ? s{args[1]} : s{args[2]})"
        elif op == "call":
            template = call_c.get(aux[0])
            if template is None:
                raise NativeLoweringError(
                    f"call {aux[0]!r} has no native lowering"
                )
            expr = template.format(*(f"s{slot}" for slot in args))
        elif op == "cast":
            if aux[0] == "float64":
                expr = f"s{args[0]}"
            elif aux[0] == "float32":
                # In f32 mode every slot already holds a float.
                expr = (
                    f"s{args[0]}" if f32 else f"((double)(float)s{args[0]})"
                )
            else:
                raise NativeLoweringError(
                    f"cast to {aux[0]!r} has no native lowering"
                )
        elif op == "maskfill":
            mask = body.mask(aux[0])
            if mask == "0":
                expr = f"s{args[0]}"
            else:
                fill = _double_literal(aux[1], f32)
                expr = f"({mask} ? {fill} : s{args[0]})"
        else:
            raise NativeLoweringError(
                f"tape op {op!r} has no native lowering"
            )
        body.lines.append(f"    const {ctype} s{index} = {expr};")
    body.lines.append(f"    return s{root};")
    return body.lines


def _emit_body(
    plan: BlockPlan,
    interior: bool,
    img_ids: Dict[str, str],
    param_ids: Dict[str, str],
    polymorphic: bool = False,
    simp=None,
    f32: bool = False,
    pitches: Optional[Dict[str, str]] = None,
) -> List[str]:
    space = plan.destination.space
    return _emit_tape_body(
        plan.tape,
        plan.root,
        space.width,
        space.height,
        interior,
        img_ids,
        param_ids,
        polymorphic,
        simp,
        f32=f32,
        pitches=pitches,
    )


class _BlockSpec:
    """The lowered form of one block: C source + call signature."""

    def __init__(
        self,
        fn_name: str,
        source: str,
        images: Tuple[str, ...],
        params: Tuple[str, ...],
        width: int,
        height: int,
        channels: int,
        polymorphic: bool = False,
        simplified: int = 0,
        tile2d: Optional[Tuple[int, int]] = None,
        f32: bool = False,
    ):
        self.fn_name = fn_name
        self.source = source
        self.images = images
        self.params = params
        self.width = width
        self.height = height
        self.channels = channels
        self.polymorphic = polymorphic
        #: How many analysis-proven simplifications the emitted body
        #: folded (identity resolvers/masks, dead selects, identity
        #: min/max); 0 when the knob is off or nothing was provable.
        self.simplified = simplified
        #: The (tile_h, tile_w) of a 2D overlapped-tiling lowering, or
        #: ``None`` for the classic row-tiled form.
        self.tile2d = tile2d
        #: Whether the per-pixel arithmetic runs in single precision
        #: (``REPRO_NATIVE_F32``); plane I/O stays float64 either way.
        self.f32 = f32


def _lower_block(
    plan: BlockPlan,
    fn_name: str,
    tile: int,
    polymorphic: bool = False,
    graph: Optional[KernelGraph] = None,
    block: Optional[PartitionBlock] = None,
) -> _BlockSpec:
    """Lower one block tape to a C function (raises
    :class:`NativeLoweringError` when the tape has no lowering).

    With ``polymorphic=True`` the geometry becomes two runtime ``const
    int`` parameters and the emitted source carries no baked extents —
    byte-identical across resolutions of the same structure, so the
    content-hash ``.so`` cache dedupes the compile.  When the graph and
    partition block are known and ``REPRO_NATIVE_TILE2D`` is not
    ``off``, eligible fused chains take the 2D overlapped-tiling
    lowering instead; any ineligibility silently keeps the classic
    row-tiled form.
    """
    kernel = plan.destination
    if plan.apply_reduction and kernel.reduction is not None:
        raise NativeLoweringError(
            f"global operator {kernel.name!r} "
            f"({plan.destination.reduction.value}) has no native lowering"
        )
    f32 = native_f32_enabled()
    setting = native_tile2d_env()
    if setting != "off" and graph is not None and block is not None:
        try:
            return _lower_block_tile2d(
                plan, graph, block, fn_name, setting, polymorphic, f32
            )
        except NativeLoweringError:
            pass  # ineligible chain: classic row-tiled lowering below
    space = kernel.space
    width, height, channels = space.width, space.height, space.channels
    images = tuple(
        sorted({i.aux[0] for i in plan.tape if i.op == "gather"})
    )
    params = tuple(
        sorted({i.aux[0] for i in plan.tape if i.op == "param"})
    )
    used: set = set()
    img_ids = {name: _identifier("in", name, used) for name in images}
    param_ids = {name: _identifier("p", name, used) for name in params}
    stride_ids = (
        {name: _identifier("st", name, used) for name in images}
        if polymorphic
        else {}
    )

    simp = None
    # The simplifier's facts (identity resolvers, dead selects, identity
    # min/max) are proven over float64 value ranges; f32 rounding could
    # flip a near-tie, so the fast path always emits the literal tape.
    if native_simplify_enabled() and not f32:
        from repro.analysis.dataflow import tape_simplifications

        try:
            simp = tape_simplifications(plan, polymorphic=polymorphic)
        except Exception:
            # Simplification is an optimization; an analysis surprise
            # must never block the literal lowering.
            simp = None
        if simp is not None and simp.count == 0:
            simp = None

    pitches = dict(stride_ids) if polymorphic else None
    halo_lines = _emit_body(
        plan, False, img_ids, param_ids, polymorphic, simp, f32, pitches
    )
    xlo, xhi, ylo, yhi = _interior_bounds(plan.tape, width, height)
    has_interior = xlo < xhi and ylo < yhi

    if polymorphic:
        # The interior margins are static (offset intervals of the grid
        # keys), so the upper bounds are expressible off the runtime
        # extents.  When the runtime image is smaller than the margins
        # the interior loop is simply empty and the flanking halo loops
        # overlap — both compute the (always-correct) halo body, so the
        # overlap is benign.
        W, H = "width", "height"
        xhi_sym = W if xhi >= width else f"(width - {width - xhi})"
        yhi_sym = H if yhi >= height else f"(height - {height - yhi})"
        # A runtime geometry smaller than the baked halo margins must
        # not let the flanking loops index past the plane: clamp the
        # left flank's bound to the runtime width, and the right
        # flank's start to zero.  At any geometry at least as wide as
        # the margins the clamps are identities, so behaviour (and the
        # differential check) is unchanged.
        xlo_sym = f"({xlo} < width ? {xlo} : width)" if xlo > 0 else "0"
        xhi_lo_sym = (
            f"({xhi_sym} > 0 ? {xhi_sym} : 0)" if xhi < width else xhi_sym
        )
    else:
        W, H = str(width), str(height)
        xhi_sym, yhi_sym = str(xhi), str(yhi)
        xlo_sym, xhi_lo_sym = str(xlo), str(xhi)

    geometry_formals = ["const int width", "const int height"]
    geometry_actuals = ["width", "height"]
    stride_formals = [f"const int {stride_ids[n]}" for n in images] if polymorphic else []
    stride_actuals = [stride_ids[n] for n in images] if polymorphic else []
    pixel_args = ", ".join(
        [f"const double *restrict {img_ids[n]}" for n in images]
        + [f"const double {param_ids[n]}" for n in params]
        + (geometry_formals if polymorphic else [])
        + stride_formals
        + ["const int x", "const int y"]
    )
    call_args = ", ".join(
        [img_ids[n] for n in images]
        + [param_ids[n] for n in params]
        + (geometry_actuals if polymorphic else [])
        + stride_actuals
        + ["x", "y"]
    )
    driver_args = ", ".join(
        ["double *restrict out"]
        + [f"const double *restrict {img_ids[n]}" for n in images]
        + [f"const double {param_ids[n]}" for n in params]
        + (geometry_formals if polymorphic else [])
        + stride_formals
        + ["const int threads"]
    )

    ct = "float" if f32 else "double"
    parts = [
        f"static inline {ct} {fn_name}_halo({pixel_args})",
        "{",
        *halo_lines,
        "}",
    ]
    if has_interior:
        interior_lines = _emit_body(
            plan, True, img_ids, param_ids, polymorphic, simp, f32, pitches
        )
        parts += [
            f"static inline {ct} {fn_name}_interior({pixel_args})",
            "{",
            *interior_lines,
            "}",
        ]

    tiles_sym = (
        f"(({H} + {tile - 1}) / {tile})"
        if polymorphic
        else str((height + tile - 1) // tile)
    )
    halo_row = (
        "#pragma omp simd\n"
        f"                for (int x = 0; x < {W}; ++x)\n"
        f"                    out[y * {W} + x] = "
        f"{fn_name}_halo({call_args});"
    )
    if has_interior:
        row_body = f"""\
                if (y >= {ylo} && y < {yhi_sym}) {{
#pragma omp simd
                    for (int x = 0; x < {xlo_sym}; ++x)
                        out[y * {W} + x] = {fn_name}_halo({call_args});
#pragma omp simd
                    for (int x = {xlo}; x < {xhi_sym}; ++x)
                        out[y * {W} + x] = {fn_name}_interior({call_args});
#pragma omp simd
                    for (int x = {xhi_lo_sym}; x < {W}; ++x)
                        out[y * {W} + x] = {fn_name}_halo({call_args});
                }} else {{
{halo_row}
                }}"""
    else:
        row_body = halo_row
    parts += [
        f"void {fn_name}({driver_args})",
        "{",
        "    (void)threads;",
        f"    const int n_tiles = {tiles_sym};",
        "#ifdef _OPENMP",
        "#pragma omp parallel for schedule(static) "
        "num_threads(threads > 0 ? threads : 1)",
        "#endif",
        "    for (int t = 0; t < n_tiles; ++t) {",
        f"        const int y_end = "
        f"(t + 1) * {tile} < {H} ? (t + 1) * {tile} : {H};",
        f"        for (int y = t * {tile}; y < y_end; ++y) {{",
        row_body,
        "        }",
        "    }",
        "}",
        "",
    ]
    return _BlockSpec(
        fn_name,
        "\n".join(parts),
        images,
        params,
        width,
        height,
        channels,
        polymorphic,
        simplified=simp.count if simp is not None else 0,
        f32=f32,
    )


#: Stage margins beyond this gain nothing from overlapped tiling — the
#: halo would dominate every candidate tile — so such chains keep the
#: classic row-tiled lowering.
_TILE2D_MAX_MARGIN = 32

#: Internal (producer→consumer) boundary modes whose per-tile scratch
#: reads resolve through ``idx_clamp`` with a margin-ledger containment
#: proof.  MIRROR/REPEAT on an internal edge would fold far-side values
#: into the halo ring, which a tile cannot see — classic fallback.
_TILE2D_INTERNAL_MODES = frozenset(
    {BoundaryMode.CLAMP, BoundaryMode.UNDEFINED, BoundaryMode.CONSTANT}
)


def _stage_tape(kernel) -> Tuple[list, int]:
    """Compile one member kernel standalone: every read (internal or
    external) lands as a plain ``gather`` with raw shifted coordinates,
    ready for scratch redirection at lowering."""
    compiler = _TapeCompiler(None, {}, False)
    gx, gy = _iteration_grids(kernel)
    root = compiler.expr(kernel.body, kernel, gx, gy, {})
    return compiler.tape, root


def _stage_margins(
    members: list, tapes: list, produced: Dict[str, int]
) -> List[List[int]]:
    """Per-stage halo margins ``[left, right, top, bottom]``.

    A consumer computed over its own margin reads each producer at the
    consumer's margin extended by the read's static offset interval;
    walking members in reverse topological order makes every consumer's
    ledger final before it propagates (producers always precede their
    consumers in ``ordered_vertices``).
    """
    margins: List[List[int]] = [[0, 0, 0, 0] for _ in members]
    for ci in range(len(members) - 1, -1, -1):
        cm = margins[ci]
        for instr in tapes[ci]:
            if instr.op != "gather":
                continue
            image, xi, yi, boundary = instr.aux
            pi = produced.get(image)
            if pi is None:
                continue
            if boundary.mode not in _TILE2D_INTERNAL_MODES:
                raise NativeLoweringError(
                    f"tile2d: internal boundary mode "
                    f"{boundary.mode.value!r} folds far-side values into "
                    "the halo; keeping the classic lowering"
                )
            xlo, xhi = _offsets(xi)
            ylo, yhi = _offsets(yi)
            pm = margins[pi]
            pm[0] = max(pm[0], cm[0] - xlo)
            pm[1] = max(pm[1], cm[1] + xhi)
            pm[2] = max(pm[2], cm[2] - ylo)
            pm[3] = max(pm[3], cm[3] + yhi)
    return margins


def _tile2d_stages(plan, graph, block):
    """The eligibility front-half of the tile2d lowering.

    Returns the ordered chain members, their per-stage tapes and roots,
    the halo-margin ledger, the produced-name index, and the cost-model
    :class:`~repro.model.tiling.StageFootprint` list.  Raises
    :class:`NativeLoweringError` for every ineligible block shape, so
    both the lowering and the ``repro tiling`` report agree on what
    keeps the classic form.
    """
    from repro.model.tiling import StageFootprint

    if plan.naive_borders:
        raise NativeLoweringError(
            "tile2d: naive-borders composition keeps the classic lowering"
        )
    members = [graph.kernel(name) for name in block.ordered_vertices()]
    if len(members) < 2:
        raise NativeLoweringError(
            "tile2d: single-kernel blocks have no intermediates to tile"
        )
    dest = plan.destination
    if members[-1].name != dest.name:
        raise NativeLoweringError(
            "tile2d: destination is not the chain's topological sink"
        )
    space = dest.space
    width, height, channels = space.width, space.height, space.channels
    for member in members:
        if member.reduction is not None:
            raise NativeLoweringError(
                f"tile2d: member {member.name!r} is a global operator"
            )
        for member_space in (member.space, member.output.space):
            shape = (
                member_space.width,
                member_space.height,
                member_space.channels,
            )
            if shape != (width, height, channels):
                raise NativeLoweringError(
                    "tile2d: member geometries are not uniform"
                )
    produced = {
        member.output.name: index
        for index, member in enumerate(members[:-1])
    }
    tapes: List[list] = []
    roots: List[int] = []
    for member in members:
        tape, root = _stage_tape(member)
        tapes.append(tape)
        roots.append(root)
    margins = _stage_margins(members, tapes, produced)
    if any(m > _TILE2D_MAX_MARGIN for per_stage in margins for m in per_stage):
        raise NativeLoweringError(
            f"tile2d: stage margins exceed {_TILE2D_MAX_MARGIN}"
        )
    n = len(members)
    footprints = [
        StageFootprint(
            name=member.name,
            left=margins[index][0],
            right=margins[index][1],
            top=margins[index][2],
            bottom=margins[index][3],
            weight=float(len(tapes[index])),
            materialized=index < n - 1,
        )
        for index, member in enumerate(members)
    ]
    return members, tapes, roots, margins, produced, footprints


def tile2d_report(
    graph: KernelGraph,
    partition: Partition,
    caches=None,
) -> List[dict]:
    """Per-block tile2d eligibility and model choices, without lowering.

    For each partition block: the block's output name, its member
    kernels, and either the cost model's :class:`TileChoice` (as a
    dict, with the ranked runner-up count) or the
    :class:`NativeLoweringError` reason the block keeps the classic
    row-tiled form.  Used by ``repro tiling``; needs no C compiler.
    """
    from repro.model.tiling import sweep_tiles

    plan = plan_for_partition(graph, partition, naive_borders=False)
    schedule = block_schedule(graph, partition)
    report = []
    for block_plan, part_block in zip(plan.plans, schedule):
        entry = {
            "output": block_plan.output_name,
            "kernels": list(part_block.ordered_vertices()),
        }
        try:
            _m, _t, _r, _mg, _p, footprints = _tile2d_stages(
                block_plan, graph, part_block
            )
            ranked = sweep_tiles(footprints, caches=caches)
            if not ranked:
                raise NativeLoweringError(
                    "tile2d: no candidate tile shape fits the scratch caps"
                )
            best = ranked[0]
            entry["choice"] = {
                "tile": [best.height, best.width],
                "scratch_bytes": best.scratch_bytes,
                "recompute": best.recompute,
                "fits": best.fits,
                "cost": best.cost,
                "candidates": len(ranked),
            }
        except NativeLoweringError as err:
            entry["classic_reason"] = str(err)
        report.append(entry)
    return report


def _lower_block_tile2d(
    plan: BlockPlan,
    graph: KernelGraph,
    block: PartitionBlock,
    fn_name: str,
    setting: "str | Tuple[int, int]",
    polymorphic: bool,
    f32: bool,
) -> _BlockSpec:
    """Lower a fused local chain as 2D overlapped tiles.

    The plane is partitioned into (tile_h × tile_w) tiles; within each
    tile every non-destination stage is computed **once** per pixel of
    its halo-extended region into a small stack scratch buffer (instead
    of the fused tape's per-pixel producer recomputation), and the
    destination stage reads producers from scratch.  Stage values are
    pure functions of the (resolved) coordinate computed by the same
    ``-ffp-contract=off`` expression sequences the fused tape inlines,
    so the output is bit-identical to the classic lowering.

    Tile shape comes from :func:`repro.model.tiling.choose_tile`
    (``REPRO_NATIVE_TILE2D=auto``) or the knob's explicit ``HxW``; the
    model is geometry-free, so polymorphic sources stay byte-identical
    across resolutions.  Raises :class:`NativeLoweringError` for every
    ineligible shape — the caller falls back to the classic form.
    """
    from repro.model.tiling import (
        STACK_SCRATCH_CAP,
        choose_tile,
        scratch_bytes,
    )

    members, tapes, roots, margins, produced, footprints = _tile2d_stages(
        plan, graph, block
    )
    space = plan.destination.space
    width, height, channels = space.width, space.height, space.channels

    # -- tile shape (model pick or the knob's explicit HxW) ---------------
    n = len(members)
    bpe = 4 if f32 else 8
    if setting == "auto":
        choice = choose_tile(footprints, bytes_per_element=bpe)
        if choice is None:
            raise NativeLoweringError(
                "tile2d: no candidate tile shape fits the scratch caps"
            )
        tile_h, tile_w = choice.height, choice.width
    else:
        tile_h, tile_w = setting
        need = scratch_bytes(footprints, tile_h, tile_w, bpe)
        if need > STACK_SCRATCH_CAP:
            raise NativeLoweringError(
                f"tile2d: explicit {tile_h}x{tile_w} tile needs {need} "
                f"bytes of stack scratch (cap {STACK_SCRATCH_CAP})"
            )
    pitch = {
        i: tile_w + margins[i][0] + margins[i][1] for i in range(n - 1)
    }
    rows = {
        i: tile_h + margins[i][2] + margins[i][3] for i in range(n - 1)
    }

    # -- identifiers and signatures ---------------------------------------
    images = tuple(
        sorted(
            {
                instr.aux[0]
                for tape in tapes
                for instr in tape
                if instr.op == "gather" and instr.aux[0] not in produced
            }
        )
    )
    params = tuple(
        sorted(
            {
                instr.aux[0]
                for tape in tapes
                for instr in tape
                if instr.op == "param"
            }
        )
    )
    used: set = set()
    img_ids = {name: _identifier("in", name, used) for name in images}
    param_ids = {name: _identifier("p", name, used) for name in params}
    stride_ids = (
        {name: _identifier("st", name, used) for name in images}
        if polymorphic
        else {}
    )
    geometry_formals = ["const int width", "const int height"]
    geometry_actuals = ["width", "height"]
    ct = "float" if f32 else "double"
    W, H = ("width", "height") if polymorphic else (str(width), str(height))

    def stage_signature(index: int) -> Tuple[str, str, dict]:
        """(formals, actuals, scratch map) of one stage's pixel fn."""
        tape = tapes[index]
        stage_images = sorted(
            {
                instr.aux[0]
                for instr in tape
                if instr.op == "gather" and instr.aux[0] not in produced
            }
        )
        stage_params = sorted(
            {instr.aux[0] for instr in tape if instr.op == "param"}
        )
        stage_producers = sorted(
            {
                produced[instr.aux[0]]
                for instr in tape
                if instr.op == "gather" and instr.aux[0] in produced
            }
        )
        scratch = {
            members[j].output.name: (
                f"scr_{j}",
                f"sx0_{j}",
                f"sy0_{j}",
                str(pitch[j]),
            )
            for j in stage_producers
        }
        scratch_formals = []
        scratch_actuals = []
        for j in stage_producers:
            scratch_formals += [
                f"const {ct} *restrict scr_{j}",
                f"const int sx0_{j}",
                f"const int sy0_{j}",
            ]
            scratch_actuals += [f"scr_{j}", f"sx0_{j}", f"sy0_{j}"]
        formals = ", ".join(
            [f"const double *restrict {img_ids[m]}" for m in stage_images]
            + [f"const double {param_ids[m]}" for m in stage_params]
            + scratch_formals
            + (geometry_formals if polymorphic else [])
            + (
                [f"const int {stride_ids[m]}" for m in stage_images]
                if polymorphic
                else []
            )
            + ["const int x", "const int y"]
        )
        actuals = ", ".join(
            [img_ids[m] for m in stage_images]
            + [param_ids[m] for m in stage_params]
            + scratch_actuals
            + (geometry_actuals if polymorphic else [])
            + (
                [stride_ids[m] for m in stage_images]
                if polymorphic
                else []
            )
            + ["x", "y"]
        )
        return formals, actuals, scratch

    def stage_body(index: int, interior: bool, scratch: dict) -> List[str]:
        stage_pitches = (
            {m: stride_ids[m] for m in stride_ids} if polymorphic else None
        )
        return _emit_tape_body(
            tapes[index],
            roots[index],
            width,
            height,
            interior,
            img_ids,
            param_ids,
            polymorphic,
            None,
            f32=f32,
            pitches=stage_pitches,
            scratch=scratch,
        )

    parts: List[str] = []
    stage_calls: List[str] = []
    # Stages with a stencil get a clamp-free interior variant (_s{i}i)
    # driven by the same three-segment split the destination loop uses:
    # the fill guard and fl/fh clamps confine it to the in-plane band
    # where every resolver is the identity, so values are bit-identical
    # while interior tiles skip the per-read clamping.
    stage_interiors: Dict[int, Tuple[int, str, int, str]] = {}
    for index in range(n - 1):
        formals, actuals, scratch = stage_signature(index)
        stage_calls.append(actuals)
        parts += [
            f"static inline {ct} {fn_name}_s{index}({formals})",
            "{",
            *stage_body(index, False, scratch),
            "}",
        ]
        sxlo, sxhi, sylo, syhi = _interior_bounds(tapes[index], width, height)
        full_plane = (sxlo, sylo) == (0, 0) and (sxhi, syhi) == (width, height)
        if sxlo < sxhi and sylo < syhi and not full_plane:
            parts += [
                f"static inline {ct} {fn_name}_s{index}i({formals})",
                "{",
                *stage_body(index, True, scratch),
                "}",
            ]
            if polymorphic:
                fxhi = W if sxhi >= width else f"(width - {width - sxhi})"
                fyhi = H if syhi >= height else f"(height - {height - syhi})"
            else:
                fxhi, fyhi = str(sxhi), str(syhi)
            stage_interiors[index] = (sxlo, fxhi, sylo, fyhi)
    dest_formals, dest_call, dest_scratch = stage_signature(n - 1)
    stage_calls.append(dest_call)
    parts += [
        f"static inline {ct} {fn_name}_halo({dest_formals})",
        "{",
        *stage_body(n - 1, False, dest_scratch),
        "}",
    ]
    xlo, xhi, ylo, yhi = _interior_bounds(tapes[n - 1], width, height)
    has_interior = xlo < xhi and ylo < yhi
    if has_interior:
        parts += [
            f"static inline {ct} {fn_name}_interior({dest_formals})",
            "{",
            *stage_body(n - 1, True, dest_scratch),
            "}",
        ]
    if polymorphic:
        ixhi_sym = W if xhi >= width else f"(width - {width - xhi})"
        iyhi_sym = H if yhi >= height else f"(height - {height - yhi})"
    else:
        ixhi_sym, iyhi_sym = str(xhi), str(yhi)

    # -- driver: tile grid, per-tile scratch, stage loops, dest loops -----
    driver_args = ", ".join(
        ["double *restrict out"]
        + [f"const double *restrict {img_ids[m]}" for m in images]
        + [f"const double {param_ids[m]}" for m in params]
        + (geometry_formals if polymorphic else [])
        + (
            [f"const int {stride_ids[m]}" for m in images]
            if polymorphic
            else []
        )
        + ["const int threads"]
    )
    lines = [
        f"void {fn_name}({driver_args})",
        "{",
        "    (void)threads;",
        f"    const int n_tx = ({W} + {tile_w - 1}) / {tile_w};",
        f"    const int n_ty = ({H} + {tile_h - 1}) / {tile_h};",
        "    const int n_tiles = n_tx * n_ty;",
        "#ifdef _OPENMP",
        "#pragma omp parallel for schedule(static) "
        "num_threads(threads > 0 ? threads : 1)",
        "#endif",
        "    for (int t = 0; t < n_tiles; ++t) {",
        f"        const int x0 = (t % n_tx) * {tile_w};",
        f"        const int y0 = (t / n_tx) * {tile_h};",
        f"        const int x1 = x0 + {tile_w} < {W} ? x0 + {tile_w} : {W};",
        f"        const int y1 = y0 + {tile_h} < {H} ? y0 + {tile_h} : {H};",
    ]
    for i in range(n - 1):
        left, right, top, bottom = margins[i]
        lines += [
            f"        {ct} scr_{i}[{rows[i] * pitch[i]}];",
            f"        const int sx0_{i} = "
            f"x0 - {left} > 0 ? x0 - {left} : 0;",
            f"        const int sx1_{i} = "
            f"x1 + {right} < {W} ? x1 + {right} : {W};",
            f"        const int sy0_{i} = "
            f"y0 - {top} > 0 ? y0 - {top} : 0;",
            f"        const int sy1_{i} = "
            f"y1 + {bottom} < {H} ? y1 + {bottom} : {H};",
        ]
    for i in range(n - 1):
        fill = (
            f"scr_{i}[(y - sy0_{i}) * {pitch[i]} "
            f"+ (x - sx0_{i})] = {fn_name}_s{i}"
        )
        if i in stage_interiors:
            fxlo, fxhi, fylo, fyhi = stage_interiors[i]
            lines += [
                f"        const int fla_{i} = "
                f"{fxlo} > sx0_{i} ? {fxlo} : sx0_{i};",
                f"        const int fl_{i} = "
                f"fla_{i} < sx1_{i} ? fla_{i} : sx1_{i};",
                f"        const int fha_{i} = "
                f"{fxhi} < sx1_{i} ? {fxhi} : sx1_{i};",
                f"        const int fh_{i} = "
                f"fha_{i} > fl_{i} ? fha_{i} : fl_{i};",
                f"        for (int y = sy0_{i}; y < sy1_{i}; ++y) {{",
                f"            if (y >= {fylo} && y < {fyhi}) {{",
                "#pragma omp simd",
                f"                for (int x = sx0_{i}; x < fl_{i}; ++x)",
                f"                    {fill}({stage_calls[i]});",
                "#pragma omp simd",
                f"                for (int x = fl_{i}; x < fh_{i}; ++x)",
                f"                    {fill}i({stage_calls[i]});",
                "#pragma omp simd",
                f"                for (int x = fh_{i}; x < sx1_{i}; ++x)",
                f"                    {fill}({stage_calls[i]});",
                "            } else {",
                "#pragma omp simd",
                f"                for (int x = sx0_{i}; x < sx1_{i}; ++x)",
                f"                    {fill}({stage_calls[i]});",
                "            }",
                "        }",
            ]
        else:
            lines += [
                f"        for (int y = sy0_{i}; y < sy1_{i}; ++y) {{",
                "#pragma omp simd",
                f"            for (int x = sx0_{i}; x < sx1_{i}; ++x)",
                f"                {fill}({stage_calls[i]});",
                "        }",
            ]
    if has_interior:
        lines += [
            f"        const int ila = {xlo} > x0 ? {xlo} : x0;",
            "        const int il = ila < x1 ? ila : x1;",
            f"        const int iha = {ixhi_sym} < x1 ? {ixhi_sym} : x1;",
            "        const int ih = iha > il ? iha : il;",
            "        for (int y = y0; y < y1; ++y) {",
            f"            if (y >= {ylo} && y < {iyhi_sym}) {{",
            "#pragma omp simd",
            "                for (int x = x0; x < il; ++x)",
            f"                    out[y * {W} + x] = "
            f"{fn_name}_halo({dest_call});",
            "#pragma omp simd",
            "                for (int x = il; x < ih; ++x)",
            f"                    out[y * {W} + x] = "
            f"{fn_name}_interior({dest_call});",
            "#pragma omp simd",
            "                for (int x = ih; x < x1; ++x)",
            f"                    out[y * {W} + x] = "
            f"{fn_name}_halo({dest_call});",
            "            } else {",
            "#pragma omp simd",
            "                for (int x = x0; x < x1; ++x)",
            f"                    out[y * {W} + x] = "
            f"{fn_name}_halo({dest_call});",
            "            }",
            "        }",
        ]
    else:
        lines += [
            "        for (int y = y0; y < y1; ++y) {",
            "#pragma omp simd",
            "            for (int x = x0; x < x1; ++x)",
            f"                out[y * {W} + x] = "
            f"{fn_name}_halo({dest_call});",
            "        }",
        ]
    lines += ["    }", "}", ""]
    return _BlockSpec(
        fn_name,
        "\n".join(parts + lines),
        images,
        params,
        width,
        height,
        channels,
        polymorphic,
        tile2d=(tile_h, tile_w),
        f32=f32,
    )


def lower_block_source(
    plan: BlockPlan,
    fn_name: str = "repro_block",
    tile: int | None = None,
    polymorphic: bool = False,
    graph: Optional[KernelGraph] = None,
    block: Optional[PartitionBlock] = None,
) -> str:
    """The standalone C source of one lowered block (inspection/tests).

    Passing the owning ``graph`` and ``block`` makes the 2D
    overlapped-tiling lowering reachable (it needs the member kernels,
    not just the fused tape).
    """
    spec = _lower_block(
        plan,
        fn_name,
        tile or resolve_native_tile(),
        polymorphic,
        graph=graph,
        block=block,
    )
    return _PREAMBLE + "\n" + spec.source


# ---------------------------------------------------------------------------
# ctypes wrappers
# ---------------------------------------------------------------------------

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)


class NativeBlock:
    """One compiled block: the bound C function plus its tape fallback.

    ``execute`` drives the compiled row-tiled loop nest on zero-copy
    ``float64`` buffers (multi-channel images run channel plane by
    channel plane); inputs that do not match the compiled geometry or
    dtype transparently fall back to the tape plan.
    """

    def __init__(self, plan: BlockPlan, spec: _BlockSpec, fn) -> None:
        self.plan = plan
        self.spec = spec
        self.output_name = plan.output_name
        self._fn = fn
        fn.restype = None
        fn.argtypes = (
            [_DOUBLE_P] * (1 + len(spec.images))
            + [ctypes.c_double] * len(spec.params)
            # width, height, one leading stride per plane, threads —
            # or just threads when the geometry is baked.
            + [ctypes.c_int]
            * ((3 + len(spec.images)) if spec.polymorphic else 1)
        )

    def execute(
        self,
        arrays: Arrays,
        params: Params | None = None,
        threads: int | None = None,
    ) -> np.ndarray:
        """Run the block; falls back to the tape plan when the bound
        arrays do not fit the compiled geometry/dtype.

        A shape-polymorphic block can only fall back at its *plan*
        geometry — the tape's grid keys are shape-specialized, so a
        fallback at a foreign geometry would compute the wrong image
        and raises instead.
        """
        try:
            return self._execute_native(arrays, params, threads)
        except _RuntimeFallback as fallback:
            if self.spec.polymorphic and not self._fits_plan_geometry(
                arrays
            ):
                raise ExecutionError(
                    f"shape-polymorphic block {self.output_name!r} "
                    f"cannot fall back to the tape away from its plan "
                    f"geometry ({self.spec.height}x{self.spec.width}): "
                    f"{fallback.args[0]}"
                ) from None
            return self.plan.execute(arrays, params)

    def _fits_plan_geometry(self, arrays: Arrays) -> bool:
        spec = self.spec
        expected = (
            (spec.height, spec.width, spec.channels)
            if spec.channels > 1
            else (spec.height, spec.width)
        )
        return all(
            np.shape(_array_for(name, arrays)) == expected
            for name in spec.images
        )

    def _geometry(self, arrays: Arrays) -> Tuple[int, int]:
        """The runtime ``(height, width)`` of a polymorphic call.

        Inferred from the bound arrays, which must agree on one
        geometry (and carry the compiled channel count); an imageless
        block (pure generator) keeps its plan geometry.
        """
        spec = self.spec
        geometry: Optional[Tuple[int, int]] = None
        for name in spec.images:
            shape = np.shape(_array_for(name, arrays))
            if len(shape) not in (2, 3) or (
                len(shape) == 3 and shape[2] != spec.channels
            ):
                raise _RuntimeFallback(name)
            if geometry is None:
                geometry = shape[:2]
            elif shape[:2] != geometry:
                raise _RuntimeFallback(name)
        return geometry if geometry is not None else (
            spec.height,
            spec.width,
        )

    def _execute_native(
        self,
        arrays: Arrays,
        params: Params | None,
        threads: int | None,
    ) -> np.ndarray:
        params = params or {}
        spec = self.spec
        channels = spec.channels
        if spec.polymorphic:
            height, width = self._geometry(arrays)
        else:
            height, width = spec.height, spec.width
        expected = (
            (height, width, channels) if channels > 1 else (height, width)
        )
        inputs = []
        for name in spec.images:
            array = _array_for(name, arrays)
            if array.dtype != np.float64 or array.shape != expected:
                raise _RuntimeFallback(name)
            inputs.append(array)
        values = []
        for name in spec.params:
            try:
                values.append(float(params[name]))
            except KeyError:
                raise ExecutionError(
                    f"unbound parameter {name!r}"
                ) from None
        thread_count = resolve_native_threads(threads)
        if channels > 1:
            out = np.empty((height, width, channels), dtype=np.float64)
            for c in range(channels):
                bound = [self._bind_plane(a[:, :, c]) for a in inputs]
                plane = np.empty((height, width), dtype=np.float64)
                self._call(
                    plane,
                    [buffer for buffer, _ in bound],
                    values,
                    thread_count,
                    width,
                    height,
                    [stride for _, stride in bound],
                )
                out[:, :, c] = plane
            return out
        out = np.empty((height, width), dtype=np.float64)
        bound = [self._bind_plane(a) for a in inputs]
        self._call(
            out,
            [buffer for buffer, _ in bound],
            values,
            thread_count,
            width,
            height,
            [stride for _, stride in bound],
        )
        return out

    def _bind_plane(self, array: np.ndarray) -> Tuple[np.ndarray, int]:
        """One input plane as ``(buffer, leading stride in elements)``.

        Shape-polymorphic kernels index every plane through a runtime
        per-plane stride, so any row-strided ``float64`` view — a crop,
        every other row of a larger frame — binds **zero-copy** as long
        as its rows are element-contiguous and non-overlapping; each
        avoided copy is tallied in :func:`noncontiguous_zero_copy_count`.
        Baked-geometry kernels hard-code the width as the pitch and
        still take the contiguous copy.
        """
        height, width = array.shape
        if array.flags.c_contiguous:
            return array, width
        s0, s1 = array.strides
        if (
            self.spec.polymorphic
            and s1 == 8
            and s0 % 8 == 0
            and s0 >= width * 8
        ):
            _note_zero_copy()
            return array, s0 // 8
        return np.ascontiguousarray(array), width

    def _call(
        self,
        out: np.ndarray,
        inputs: List[np.ndarray],
        params: List[float],
        threads: int,
        width: int,
        height: int,
        strides: Optional[List[int]] = None,
    ) -> None:
        args = [out.ctypes.data_as(_DOUBLE_P)]
        args += [a.ctypes.data_as(_DOUBLE_P) for a in inputs]
        args += params
        if self.spec.polymorphic:
            args += [width, height]
            args += strides if strides is not None else [width] * len(inputs)
        args.append(threads)
        self._fn(*args)


class _VerifyOnce:
    """First-execution differential verification state (strict mode)."""

    def __init__(self) -> None:
        self.pending = True
        self.lock = threading.Lock()


class NativePartitionPlan:
    """A partition compiled to native code, block by block.

    Wraps the cached tape :class:`~repro.backend.plan.PartitionPlan`:
    lowerable blocks run their compiled loop nests, the rest (global
    reductions, unsupported tapes, or — when no compiler is available —
    every block) run the tape interpreter.  Under
    ``REPRO_VALIDATE=strict`` the first execution is differentially
    verified against the tape under the pinned tolerance policy
    (:func:`tolerance_for`).
    """

    def __init__(
        self,
        plan: PartitionPlan,
        blocks: List[Tuple[BlockPlan, Optional[NativeBlock]]],
        compile_ms: float,
        from_cache: bool,
        fallback_reasons: Dict[str, str],
        source: str | None,
        polymorphic: bool = False,
        verify_ms: float = 0.0,
        sanitized: bool = False,
    ):
        self.plan = plan
        self.graph = plan.graph
        self.partition = plan.partition
        self.blocks = blocks
        #: Wall-clock spent lowering + compiling (0 when fully cached).
        self.compile_ms = compile_ms
        #: Wall-clock the static native-codegen sanitizer spent proving
        #: index bounds and the alias contract (0 outside strict mode).
        self.verify_ms = verify_ms
        #: Whether the sanitizer checked every compiled block's source
        #: before the plan became executable (``REPRO_VALIDATE=strict``).
        self.sanitized = sanitized
        #: Whether the shared library came from the content-hash cache.
        self.from_cache = from_cache
        #: Per-output reasons for blocks that fell back to the tape.
        self.fallback_reasons = fallback_reasons
        #: The generated C source (``None`` when nothing was lowered).
        self.source = source
        #: Whether the compiled kernels take runtime width/height — one
        #: artifact then serves every resolution of this structure.
        self.polymorphic = polymorphic
        self.tolerance = tolerance_for([plan for plan, _ in blocks])
        self._verify = _VerifyOnce()

    @property
    def native_block_count(self) -> int:
        """Blocks running compiled code (the rest use the tape)."""
        return sum(1 for _, native in self.blocks if native is not None)

    @property
    def fallback_block_count(self) -> int:
        """Blocks executing through the tape interpreter."""
        return sum(1 for _, native in self.blocks if native is None)

    def execute(
        self,
        inputs: Arrays,
        params: Params | None = None,
        workers: int | None = None,
    ) -> Arrays:
        """Run every block; returns the surviving-image environment.

        ``workers`` dispatches *independent* blocks of the partition DAG
        on a thread pool, exactly as the tape engine does (``None``
        defers to ``REPRO_EXEC_WORKERS``).  Thread parallelism is real
        here: the compiled kernels run under ``ctypes.CDLL``, which
        releases the GIL for the duration of every call, so sibling
        blocks genuinely overlap on separate cores.  This composes with
        (and is orthogonal to) the intra-kernel OpenMP parallelism of
        ``REPRO_NATIVE_THREADS``, which splits one loop nest's row
        tiles; ``workers`` overlaps *different* loop nests.  Blocks
        connected by producer/consumer edges still run in dependence
        order, so results are bit-identical to the serial schedule.
        """
        workers = resolve_workers(workers)
        params = params or {}
        at_plan_geometry = self._at_plan_geometry(inputs)
        if self.polymorphic and not at_plan_geometry and self.blocks:
            if self.fallback_block_count:
                raise ExecutionError(
                    "shape-polymorphic plan has tape-fallback blocks "
                    f"({sorted(self.fallback_reasons)}) and cannot run "
                    "away from its plan geometry"
                )
        if (
            self._verify.pending
            and validate_mode() == "strict"
            and at_plan_geometry
        ):
            # Differential verification compares against the tape plan,
            # which is shape-specialized — it only makes sense at the
            # plan geometry; polymorphic executions at other geometries
            # leave verification pending for a matching call.
            with self._verify.lock:
                if self._verify.pending:
                    # Verification wants a deterministic first pass.
                    result = self._execute_blocks(inputs, params, 1)
                    self._differential_verify(inputs, params, result)
                    self._verify.pending = False
                    return result
        return self._execute_blocks(inputs, params, workers)

    def _at_plan_geometry(self, inputs: Arrays) -> bool:
        """Whether the bound arrays match the geometry planned for."""
        if not self.polymorphic or not self.blocks:
            return True
        space = self.blocks[0][0].destination.space
        expected = (space.height, space.width)
        return all(
            np.shape(a)[:2] == expected for a in inputs.values()
        )

    def _execute_blocks(
        self, inputs: Arrays, params: Params, workers: int = 1
    ) -> Arrays:
        env: Arrays = dict(inputs)
        if workers > 1 and len(self.blocks) > 1:
            return self._execute_blocks_parallel(env, params, workers)
        for block_plan, native in self.blocks:
            env[block_plan.output_name] = self._run_block(
                block_plan, native, env, params
            )
        return env

    @staticmethod
    def _run_block(
        block_plan: BlockPlan,
        native: Optional[NativeBlock],
        env: Arrays,
        params: Params,
    ) -> np.ndarray:
        if native is not None:
            return native.execute(env, params)
        return block_plan.execute(env, params)

    def _execute_blocks_parallel(
        self, env: Arrays, params: Params, workers: int
    ) -> Arrays:
        """Dependence-ordered thread-pool dispatch of the block DAG.

        Mirrors :meth:`repro.backend.plan.PartitionPlan.
        _execute_parallel` — ``self.blocks`` is aligned with
        ``self.plan.plans``, so the tape plan's ``deps`` indices apply
        verbatim.  Each submission snapshots ``env`` so a worker never
        observes a concurrent insert mid-execution.
        """
        deps = self.plan.deps
        pending = {index: len(block_deps) for index, block_deps in enumerate(deps)}
        dependents: Dict[int, List[int]] = {index: [] for index in pending}
        for index, block_deps in enumerate(deps):
            for dep in block_deps:
                dependents[dep].append(index)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures: Dict = {}

            def submit(index: int) -> None:
                block_plan, native = self.blocks[index]
                futures[
                    pool.submit(
                        self._run_block, block_plan, native, dict(env), params
                    )
                ] = index

            for index, count in pending.items():
                if count == 0:
                    submit(index)
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures.pop(future)
                    env[self.blocks[index][0].output_name] = future.result()
                    for dependent in dependents[index]:
                        pending[dependent] -= 1
                        if pending[dependent] == 0:
                            submit(dependent)
        return env

    def _differential_verify(
        self, inputs: Arrays, params: Params, result: Arrays
    ) -> None:
        expected = self.plan.execute(dict(inputs), params)
        for block_plan, native in self.blocks:
            if native is None:
                continue  # the tape verified against itself is vacuous
            name = block_plan.output_name
            assert_native_equiv(
                expected[name], result[name], self.tolerance, context=name
            )


class NativeBlockPlan:
    """A single block under ``execute_block`` semantics, native first.

    The native counterpart of
    :func:`repro.backend.plan.plan_for_block`'s result: runs the
    compiled loop nest when one exists, the tape otherwise, with the
    same strict-mode first-execution differential verification as
    :class:`NativePartitionPlan`.
    """

    def __init__(
        self,
        plan: BlockPlan,
        native: Optional[NativeBlock],
        verify_ms: float = 0.0,
        sanitized: bool = False,
    ):
        self.plan = plan
        self.native = native
        self.output_name = plan.output_name
        self.tolerance = tolerance_for([plan])
        #: Static-sanitizer wall-clock / coverage (see
        #: :class:`NativePartitionPlan`).
        self.verify_ms = verify_ms
        self.sanitized = sanitized
        self._verify = _VerifyOnce()

    def execute(
        self, arrays: Arrays, params: Params | None = None
    ) -> np.ndarray:
        """Run the block over bound arrays; returns the output array."""
        params = params or {}
        if self.native is None:
            return self.plan.execute(arrays, params)
        result = self.native.execute(arrays, params)
        if self._verify.pending and validate_mode() == "strict":
            with self._verify.lock:
                if self._verify.pending:
                    expected = self.plan.execute(arrays, params)
                    assert_native_equiv(
                        expected,
                        result,
                        self.tolerance,
                        context=self.output_name,
                    )
                    self._verify.pending = False
        return result


# ---------------------------------------------------------------------------
# Plan construction + caches
# ---------------------------------------------------------------------------


def _native_flags(cc: str) -> Tuple[str, ...]:
    flags = ["-ffp-contract=off"]
    if openmp_available(cc):
        flags.append("-fopenmp")
    # Extra deployment/CI flags (e.g. -fsanitize=address,undefined);
    # they join the content-hash key, so toggling them recompiles.
    flags.extend(native_cflags_env())
    return tuple(flags)


def _sanitize_natives(natives: Sequence[NativeBlock]) -> float:
    """Strict-mode static sanitation of freshly lowered native blocks.

    Runs the native-codegen sanitizer (:mod:`repro.analysis.
    native_check`) over every compiled block **before first execution**
    and raises :class:`repro.analysis.verifier.PlanVerificationError`
    on any NAT diagnostic.  Returns the verify wall-clock in ms.
    """
    if not natives:
        return 0.0
    from repro.analysis.native_check import verify_native_blocks
    from repro.analysis.verifier import enforce

    started = time.perf_counter()
    enforce(
        verify_native_blocks(natives), context="native codegen sanitizer"
    )
    return (time.perf_counter() - started) * 1e3


def _compile_specs(
    specs: List[Optional[_BlockSpec]],
) -> Tuple[Optional[ctypes.CDLL], Optional[str], bool]:
    lowered = [spec for spec in specs if spec is not None]
    if not lowered:
        return None, None, False
    cc = _find_compiler()
    if cc is None:
        return None, None, False
    source = _PREAMBLE + "\n" + "\n".join(spec.source for spec in lowered)
    library, _, from_cache = load_shared_library(
        source, cc, _native_flags(cc)
    )
    return library, source, from_cache


def _build_native_partition(
    graph: KernelGraph,
    partition: Partition,
    naive_borders: bool,
    polymorphic: bool = False,
) -> NativePartitionPlan:
    fault_check("native.compile")
    plan = plan_for_partition(graph, partition, naive_borders)
    started = time.perf_counter()
    tile = resolve_native_tile()
    # ``block_schedule`` orders partition blocks exactly as the tape
    # plan's ``plans`` — the member sets feed the tile2d lowering.
    schedule = block_schedule(graph, partition)
    specs: List[Optional[_BlockSpec]] = []
    reasons: Dict[str, str] = {}
    for index, (block_plan, part_block) in enumerate(
        zip(plan.plans, schedule)
    ):
        fn_name = f"repro_block_{index}_" + re.sub(
            r"[^0-9A-Za-z_]", "_", block_plan.output_name
        )
        try:
            specs.append(
                _lower_block(
                    block_plan,
                    fn_name,
                    tile,
                    polymorphic,
                    graph=graph,
                    block=part_block,
                )
            )
        except NativeLoweringError as err:
            specs.append(None)
            reasons[block_plan.output_name] = str(err)
    library, source, from_cache = _compile_specs(specs)
    blocks: List[Tuple[BlockPlan, Optional[NativeBlock]]] = []
    for block_plan, spec in zip(plan.plans, specs):
        if spec is None or library is None:
            if spec is not None:
                reasons.setdefault(
                    block_plan.output_name, "no C compiler on PATH"
                )
            blocks.append((block_plan, None))
            continue
        fn = getattr(library, spec.fn_name)
        blocks.append((block_plan, NativeBlock(block_plan, spec, fn)))
    compile_ms = (time.perf_counter() - started) * 1e3
    verify_ms = 0.0
    sanitized = False
    if validate_mode() == "strict":
        verify_ms = _sanitize_natives(
            [native for _plan, native in blocks if native is not None]
        )
        sanitized = any(native is not None for _plan, native in blocks)
    return NativePartitionPlan(
        plan,
        blocks,
        compile_ms,
        from_cache,
        reasons,
        source,
        polymorphic,
        verify_ms=verify_ms,
        sanitized=sanitized,
    )


_native_partition_plans: "weakref.WeakKeyDictionary[KernelGraph, dict]" = (
    weakref.WeakKeyDictionary()
)
_native_block_plans: "weakref.WeakKeyDictionary[KernelGraph, dict]" = (
    weakref.WeakKeyDictionary()
)
_native_cache_lock = threading.Lock()


def native_plan_for_partition(
    graph: KernelGraph,
    partition: Partition,
    naive_borders: bool = False,
    *,
    polymorphic: bool = False,
) -> NativePartitionPlan:
    """The (cached) native plan of a partition.

    Cached per graph alongside the tape plan caches; the key includes
    the tile size so changing ``REPRO_NATIVE_TILE`` recompiles.  The
    underlying ``.so`` additionally lives in the cross-process
    content-hash cache, so a cache *miss* here usually still skips the
    C compiler.  ``polymorphic=True`` compiles runtime-geometry kernels
    whose source — and therefore whose ``.so`` artifact — is shared by
    every resolution of the structure.
    """
    key = (
        partition.signature(),
        bool(naive_borders),
        resolve_native_tile(),
        bool(polymorphic),
        native_tile2d_env(),
        native_f32_enabled(),
    )
    with _native_cache_lock:
        cache = _native_partition_plans.get(graph)
        if cache is None:
            cache = {}
            _native_partition_plans[graph] = cache
        plan = cache.get(key)
        if plan is None:
            plan = _build_native_partition(
                graph, partition, naive_borders, polymorphic
            )
            cache[key] = plan
        return plan


def native_plan_for_block(
    graph: KernelGraph,
    block: PartitionBlock,
    naive_borders: bool = False,
) -> NativeBlockPlan:
    """The (cached) native plan of one block (``execute_block``
    semantics: the destination body is never reduced)."""
    tile = resolve_native_tile()
    key = (
        block.signature(),
        bool(naive_borders),
        tile,
        native_tile2d_env(),
        native_f32_enabled(),
    )
    with _native_cache_lock:
        cache = _native_block_plans.get(graph)
        if cache is None:
            cache = {}
            _native_block_plans[graph] = cache
        plan = cache.get(key)
        if plan is None:
            fault_check("native.compile")
            block_plan = plan_for_block(graph, block, naive_borders)
            fn_name = "repro_block_0_" + re.sub(
                r"[^0-9A-Za-z_]", "_", block_plan.output_name
            )
            try:
                spec = _lower_block(
                    block_plan, fn_name, tile, graph=graph, block=block
                )
            except NativeLoweringError:
                spec = None
            library, _, _ = _compile_specs([spec])
            native = None
            if spec is not None and library is not None:
                native = NativeBlock(
                    block_plan, spec, getattr(library, spec.fn_name)
                )
            verify_ms = 0.0
            sanitized = False
            if validate_mode() == "strict" and native is not None:
                verify_ms = _sanitize_natives([native])
                sanitized = True
            plan = NativeBlockPlan(
                block_plan, native, verify_ms=verify_ms, sanitized=sanitized
            )
            cache[key] = plan
        return plan


def clear_native_caches() -> None:
    """Drop every cached native plan (tests, knob changes)."""
    with _native_cache_lock:
        _native_partition_plans.clear()
        _native_block_plans.clear()


# ---------------------------------------------------------------------------
# Engine entry points (called by numpy_exec's ``engine=`` dispatch)
# ---------------------------------------------------------------------------


def execute_pipeline_native(
    graph: KernelGraph,
    inputs: Arrays,
    params: Params | None = None,
    workers: int | None = None,
) -> Arrays:
    """Staged execution through the native engine (singleton partition);
    falls back to the tape engine when no C compiler is available.

    .. deprecated::
        Thin shim over :func:`repro.api.run` with
        ``ExecutionOptions(engine="native", fuse=False)``.
    """
    _deprecated_entry(
        "execute_pipeline_native",
        "repro.api.run with ExecutionOptions(engine='native', fuse=False)",
    )
    from repro.api import ExecutionOptions, run

    return run(
        graph,
        inputs,
        params,
        options=ExecutionOptions(
            engine="native", workers=workers, fuse=False
        ),
    )


def execute_partitioned_native(
    graph: KernelGraph,
    partition: Partition,
    inputs: Arrays,
    params: Params | None = None,
    naive_borders: bool = False,
    workers: int | None = None,
) -> Arrays:
    """Partitioned execution through the native engine; falls back to
    the tape engine when no C compiler is available.

    .. deprecated::
        Thin shim over :func:`repro.api.run` with
        ``ExecutionOptions(engine="native", partition=...)``.
    """
    _deprecated_entry(
        "execute_partitioned_native",
        "repro.api.run with ExecutionOptions(engine='native', partition=...)",
    )
    from repro.api import ExecutionOptions, run

    return run(
        graph,
        inputs,
        params,
        options=ExecutionOptions(
            engine="native",
            workers=workers,
            partition=partition,
            naive_borders=naive_borders,
        ),
    )


def execute_block_native(
    graph: KernelGraph,
    block: PartitionBlock,
    arrays: Arrays,
    params: Params | None = None,
    naive_borders: bool = False,
) -> np.ndarray:
    """Fused-block execution through the native engine; falls back to
    the tape engine when no C compiler is available.

    .. deprecated::
        Thin shim over :func:`repro.api.run_block` with
        ``ExecutionOptions(engine="native")``.
    """
    _deprecated_entry(
        "execute_block_native",
        "repro.api.run_block with ExecutionOptions(engine='native')",
    )
    from repro.api import ExecutionOptions, run_block

    return run_block(
        graph,
        block,
        arrays,
        params,
        options=ExecutionOptions(
            engine="native", naive_borders=naive_borders
        ),
    )

"""Executable CPU backend: compile the generated C and run it.

The paper names CPUs as the next backend target for kernel fusion; this
module closes the loop: the C sources produced by
:mod:`repro.backend.codegen_c` are compiled with the system C compiler
into a shared library and driven through :mod:`ctypes` on real NumPy
buffers.  The test-suite cross-validates the compiled pipeline —
including the halo compute functions that implement index exchange —
against the NumPy reference executor.

Requires a C compiler (``gcc`` or ``cc``) on PATH; callers can probe
with :func:`compiler_available` and skip gracefully.

Compiled libraries are kept in a **content-hash cache**: the shared
object's file name is derived from a SHA-256 digest of the generated C
source (and the compiler used), so building the same partitioned
pipeline twice — within a process or across runs — reuses the cached
``.so`` instead of re-invoking the compiler.  The cache directory
defaults to ``<tmp>/repro-cc-cache`` and can be redirected with the
``REPRO_CC_CACHE`` environment variable.  The cache is keyed purely by
content and written atomically (scratch file + ``os.replace``), so it
is shared **across processes**: the sharded serving tier
(:mod:`repro.serve.sharding`) points every worker at one directory and
only the first worker to need a plan pays the compiler.

**GIL release.**  Every compiled entry point is loaded through
:class:`ctypes.CDLL`, which — unlike ``ctypes.PyDLL`` — releases the
GIL for the duration of each foreign call.  This is a load-bearing
guarantee: block-level ``workers`` threads in the native engine
(:mod:`repro.backend.native_exec`) and the scheduler threads of the
serving tier overlap native kernel execution on separate cores only
because the interpreter lock is dropped at the call boundary.  Keep any
future loader on ``CDLL`` (or an equivalent GIL-releasing FFI).
"""

from __future__ import annotations

import ctypes
import hashlib
import itertools
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from repro.envknobs import dir_env, size_env

from repro.backend.codegen_c import generate_c_pipeline
from repro.backend.numpy_exec import (
    Arrays,
    ExecutionError,
    Params,
    block_schedule,
    fault_check,
)
from repro.dsl.kernel import Kernel
from repro.fusion.fuser import fuse_block
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition


def compiler_available() -> bool:
    """Whether a usable C compiler is on PATH."""
    return _find_compiler() is not None


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


#: Environment variable redirecting the shared-library cache directory.
CACHE_ENV = "REPRO_CC_CACHE"

#: Environment variable capping the on-disk cache size in bytes
#: (accepts ``K``/``M``/``G`` suffixes, e.g. ``REPRO_CC_CACHE_MAX=256M``).
#: Unset means unbounded — the historical behaviour; ``0`` keeps only
#: the most recently built artifact's source/library pair.
CACHE_MAX_ENV = "REPRO_CC_CACHE_MAX"

#: Default eviction cap applied when ``REPRO_CC_CACHE_MAX`` is unset.
#: ``None`` — the cache has no implicit bound, matching pre-eviction
#: releases; deployments opt in through the knob.
DEFAULT_CACHE_MAX: int | None = None


def _cache_dir() -> Path:
    return dir_env(CACHE_ENV, Path(tempfile.gettempdir()) / "repro-cc-cache")


def clear_compile_cache() -> None:
    """Delete every cached shared library (tests, stale toolchains)."""
    shutil.rmtree(_cache_dir(), ignore_errors=True)


def compile_cache_stats() -> Dict[str, object]:
    """The on-disk compile cache at a glance (observability surface).

    Returns the cache directory, the number of cached libraries, and
    their total byte size.  Files vanishing mid-scan (a concurrent
    evictor or ``clear_compile_cache``) are skipped, never an error —
    this is a monitoring read, not a consistency check.
    """
    cache = _cache_dir()
    libraries = 0
    total = 0
    try:
        entries = list(cache.glob("pipeline-*.so"))
    except OSError:
        entries = []
    for library in entries:
        if library.name.endswith(".partial.so"):
            continue
        try:
            total += library.stat().st_size
        except OSError:
            continue
        libraries += 1
    return {"dir": str(cache), "libraries": libraries, "bytes": total}


def evict_stale_artifacts(keep: Path | None = None) -> int:
    """Trim the on-disk cache to the ``REPRO_CC_CACHE_MAX`` byte cap.

    Artifacts (``.so`` plus matching ``.c``) are dropped oldest-access
    first until the cache fits; ``keep`` names a library that must
    survive regardless (the artifact the caller is about to load).
    Returns the number of libraries evicted.  A no-op when the knob is
    unset.  Concurrent evictors and builders tolerate each other: a
    file deleted under our feet is simply skipped, and a reader that
    loses its library to eviction recompiles (see
    :func:`load_shared_library`).
    """
    limit = size_env(CACHE_MAX_ENV, DEFAULT_CACHE_MAX)
    if limit is None:
        return 0
    cache = _cache_dir()
    entries = []
    try:
        libraries = list(cache.glob("pipeline-*.so"))
    except OSError:
        return 0
    for library in libraries:
        if library.name.endswith(".partial.so"):
            continue  # an in-flight build owned by another thread
        try:
            stat = library.stat()
        except OSError:
            continue
        source = library.with_suffix(".c")
        try:
            size = stat.st_size + source.stat().st_size
        except OSError:
            size = stat.st_size
        entries.append((stat.st_mtime, size, library, source))
    entries.sort(reverse=True)  # newest first; evict from the tail
    evicted = 0
    total = 0
    for mtime, size, library, source in entries:
        total += size
        if total <= limit or (keep is not None and library == keep):
            continue
        library.unlink(missing_ok=True)
        source.unlink(missing_ok=True)
        evicted += 1
    return evicted


# In-process serialization of compilation per content digest: threads
# racing to build the same pipeline wait for one compiler invocation
# and share its result (cross-process races stay safe through the
# atomic rename below).  ``_digest_locks`` entries are tiny and bounded
# by the number of distinct pipelines a process compiles.
_digest_locks: Dict[str, threading.Lock] = {}
_digest_locks_guard = threading.Lock()
_scratch_counter = itertools.count()


def _lock_for_digest(digest: str) -> threading.Lock:
    with _digest_locks_guard:
        lock = _digest_locks.get(digest)
        if lock is None:
            lock = threading.Lock()
            _digest_locks[digest] = lock
        return lock


def compile_shared_library(
    source: str, cc: str, extra_flags: Sequence[str] = ()
) -> tuple[Path, bool]:
    """Compile ``source`` or reuse the content-hash cached library.

    Returns ``(library_path, from_cache)``.  The library file name is a
    digest of the compiler, the extra flags, and the source text, so
    identical generated pipelines share one compilation across
    processes; the build lands in a temporary file first and is moved
    into place atomically, and the scratch name embeds pid, thread id,
    and a counter so concurrent builders — across processes *or*
    threads — never collide.

    A cache hit refreshes the library's mtime (the LRU clock of
    :func:`evict_stale_artifacts`); a build triggers eviction of the
    oldest artifacts beyond the ``REPRO_CC_CACHE_MAX`` cap, never
    including the one just built.
    """
    flags = tuple(extra_flags)
    digest = hashlib.sha256(
        "\x00".join((cc, *flags, source)).encode()
    ).hexdigest()[:24]
    with _lock_for_digest(digest):
        cache = _cache_dir()
        cache.mkdir(parents=True, exist_ok=True)
        library_path = cache / f"pipeline-{digest}.so"
        if library_path.exists():
            try:
                os.utime(library_path)
            except OSError:
                pass  # concurrently evicted; the caller's load retries
            return library_path, True
        fault_check("cc.compile")
        source_path = cache / f"pipeline-{digest}.c"
        scratch_tag = (
            f"{os.getpid()}-{threading.get_ident()}"
            f"-{next(_scratch_counter)}.partial"
        )
        # Compile from a scratch-named source: an evictor working from a
        # stale directory snapshot may unlink pipeline-<digest>.c while
        # the compiler is still reading it, but it never knows this name.
        scratch_source = cache / f"pipeline-{digest}.{scratch_tag}.c"
        scratch_source.write_text(source)
        scratch = cache / f"pipeline-{digest}.{scratch_tag}.so"
        command = [
            cc, "-O2", "-fPIC", "-shared", *flags, "-o", str(scratch),
            str(scratch_source), "-lm",
        ]
        result = subprocess.run(command, capture_output=True, text=True)
        if result.returncode != 0:
            scratch.unlink(missing_ok=True)
            scratch_source.unlink(missing_ok=True)
            raise ExecutionError(
                f"C compilation failed:\n{result.stderr}\n--- source ---\n"
                + source
            )
        os.replace(scratch_source, source_path)
        os.replace(scratch, library_path)
        evict_stale_artifacts(keep=library_path)
        return library_path, False


def _compile_shared_library(source: str, cc: str) -> tuple[Path, bool]:
    """Backward-compatible alias of :func:`compile_shared_library`."""
    return compile_shared_library(source, cc)


def load_shared_library(
    source: str, cc: str, extra_flags: Sequence[str] = ()
) -> tuple[ctypes.CDLL, Path, bool]:
    """Compile (or fetch) and ``dlopen`` a generated library.

    Returns ``(library, path, from_cache)``.  Tolerates the race where
    a concurrent evictor removes the cached ``.so`` between the cache
    probe and the ``dlopen``: the load is retried once with a fresh
    compilation.

    The handle is a :class:`ctypes.CDLL` **by contract**: ``CDLL``
    releases the GIL around every foreign call, which is what lets the
    native engine's block-level worker threads and the serving tier's
    schedulers overlap kernel execution on real cores.  Do not swap in
    ``ctypes.PyDLL`` (it holds the GIL) without revisiting every
    ``workers=`` code path.
    """
    library_path, from_cache = compile_shared_library(source, cc, extra_flags)
    try:
        return ctypes.CDLL(str(library_path)), library_path, from_cache
    except OSError:
        if not from_cache:
            raise
    library_path, from_cache = compile_shared_library(source, cc, extra_flags)
    return ctypes.CDLL(str(library_path)), library_path, from_cache


_openmp_probe: Dict[str, bool] = {}
_openmp_probe_lock = threading.Lock()

_OPENMP_PROBE_SOURCE = """\
#include <omp.h>
int repro_openmp_probe(void) { return omp_get_max_threads(); }
"""


def openmp_available(cc: str | None = None) -> bool:
    """Whether the compiler accepts ``-fopenmp`` (probed once, cached).

    The probe compiles a one-liner through the regular content-hash
    cache, so across processes it costs one compiler invocation total.
    """
    compiler = cc or _find_compiler()
    if compiler is None:
        return False
    with _openmp_probe_lock:
        cached = _openmp_probe.get(compiler)
        if cached is None:
            try:
                compile_shared_library(
                    _OPENMP_PROBE_SOURCE, compiler, ("-fopenmp",)
                )
                cached = True
            except (ExecutionError, OSError):
                cached = False
            _openmp_probe[compiler] = cached
        return cached


class CompiledPipeline:
    """A pipeline compiled to native code, one function per launch.

    Global (reduction) operators have no C lowering here; pipelines
    containing them are rejected at construction.
    """

    def __init__(
        self,
        graph: KernelGraph,
        partition: Partition,
        cc: str | None = None,
    ):
        compiler = cc or _find_compiler()
        if compiler is None:
            raise ExecutionError("no C compiler found on PATH")
        self.graph = graph
        self.partition = partition
        self._kernels: List[Kernel] = [
            fuse_block(graph, block)
            for block in block_schedule(graph, partition)
        ]
        for kernel in self._kernels:
            if kernel.reduction is not None:
                raise ExecutionError(
                    f"global operator {kernel.name!r} has no C lowering"
                )

        source = generate_c_pipeline(graph, partition)
        library, from_cache = _compile_shared_library(source, compiler)
        self.source = source
        self.library_path = library
        #: Whether the shared library came from the content-hash cache.
        self.from_cache = from_cache
        self._lib = ctypes.CDLL(str(library))

        float_ptr = ctypes.POINTER(ctypes.c_float)
        self._functions = {}
        for kernel in self._kernels:
            fn = getattr(self._lib, f"kernel_{kernel.name}")
            argtypes = [float_ptr]
            argtypes += [float_ptr] * len(kernel.input_names)
            argtypes += [ctypes.c_int, ctypes.c_int]
            argtypes += [ctypes.c_float] * len(kernel.param_names)
            fn.argtypes = argtypes
            fn.restype = None
            self._functions[kernel.name] = fn

    def _run_plane(
        self, env: Dict[str, np.ndarray], params: Params
    ) -> None:
        float_ptr = ctypes.POINTER(ctypes.c_float)
        for kernel in self._kernels:
            width = kernel.space.width
            height = kernel.space.height
            out = np.zeros((height, width), dtype=np.float32)
            args = [out.ctypes.data_as(float_ptr)]
            for name in kernel.input_names:
                buffer = env[name]
                if buffer.shape != (height, width):
                    raise ExecutionError(
                        f"image {name!r} has shape {buffer.shape}, "
                        f"expected {(height, width)}"
                    )
                args.append(buffer.ctypes.data_as(float_ptr))
            args += [width, height]
            for name in sorted(kernel.param_names):
                try:
                    args.append(float(params[name]))
                except KeyError:
                    raise ExecutionError(
                        f"unbound parameter {name!r}"
                    ) from None
            self._functions[kernel.name](*args)
            env[kernel.output.name] = out

    def run(self, inputs: Arrays, params: Params | None = None) -> Arrays:
        """Execute the compiled pipeline.

        Multi-channel images run channel by channel (the kernels are
        per-channel pointwise in the channel dimension).
        """
        params = params or {}
        arrays = {
            name: np.ascontiguousarray(value, dtype=np.float32)
            for name, value in inputs.items()
        }
        channels = {a.ndim == 3 for a in arrays.values()}
        if channels == {True}:
            depth = {a.shape[2] for a in arrays.values()}
            if len(depth) != 1:
                raise ExecutionError("inconsistent channel counts")
            planes: List[Dict[str, np.ndarray]] = []
            for c in range(depth.pop()):
                env = {
                    name: np.ascontiguousarray(a[:, :, c])
                    for name, a in arrays.items()
                }
                self._run_plane(env, params)
                planes.append(env)
            return {
                name: np.stack([p[name] for p in planes], axis=-1)
                for name in planes[0]
            }
        if channels == {False}:
            env = dict(arrays)
            self._run_plane(env, params)
            return env
        raise ExecutionError("mixed 2D/3D inputs are not supported")


def compile_pipeline(
    graph: KernelGraph, partition: Partition, cc: str | None = None
) -> CompiledPipeline:
    """Compile a partitioned pipeline to native code."""
    return CompiledPipeline(graph, partition, cc)

"""Execution substrates.

* :mod:`repro.backend.numpy_exec` — the reference executor: runs
  kernels, pipelines, and fused partition blocks on NumPy arrays.  The
  fused execution path implements the paper's two-stage index exchange,
  so fused results are bit-comparable with unfused staged execution —
  this is the correctness oracle of the whole reproduction.
* :mod:`repro.backend.plan` — the plan-compiling tape engine: partition
  blocks flattened once into SSA instruction tapes with producer-result
  caching, interned coordinate grids, and parallel block scheduling.
  The default engine behind ``execute_pipeline``/``execute_partitioned``.
* :mod:`repro.backend.native_exec` — the native engine: block tapes
  lowered to tiled, optionally OpenMP-parallel C kernels, compiled
  through the :mod:`~repro.backend.cpu_exec` artifact cache and driven
  via ctypes on zero-copy NumPy buffers.  Opt-in via
  ``engine="native"`` / ``REPRO_EXEC_ENGINE=native``; falls back to the
  tape engine per block (and entirely, without a C compiler).
* :mod:`repro.backend.codegen_cuda` — CUDA C source text generation
  (the "source-to-source" output of the compiler; inspectable, not
  executed here).
* :mod:`repro.backend.memsim` — the analytic GPU performance simulator
  standing in for the paper's physical devices.
* :mod:`repro.backend.launch` — simulated pipeline launches producing
  per-version execution-time distributions.
"""

from repro.backend.codegen_c import generate_c, generate_c_pipeline
from repro.backend.codegen_cuda import generate_cuda, generate_cuda_pipeline
from repro.backend.codegen_opencl import (
    generate_opencl,
    generate_opencl_pipeline,
)
from repro.backend.roofline import (
    RooflinePoint,
    analyze_roofline,
    device_balance,
    pipeline_roofline,
)
from repro.backend.cpu_exec import (
    CompiledPipeline,
    clear_compile_cache,
    compile_pipeline,
    compiler_available,
)
from repro.backend.launch import PipelineTiming, simulate_partition, simulate_runs
from repro.backend.native_exec import (
    NativeBlockPlan,
    NativeLoweringError,
    NativePartitionPlan,
    NativeVerificationError,
    clear_native_caches,
    lower_block_source,
    native_available,
    native_plan_for_block,
    native_plan_for_partition,
)
from repro.backend.memsim import KernelCostBreakdown, estimate_kernel_time
from repro.backend.numpy_exec import (
    ExecutionError,
    block_schedule,
    execute_block,
    execute_kernel,
    execute_partitioned,
    execute_pipeline,
    recursion_headroom,
)
from repro.backend.plan import (
    BlockPlan,
    GridStore,
    PartitionPlan,
    clear_plan_caches,
    compile_block,
    compile_kernel,
    plan_for_block,
    plan_for_partition,
)

__all__ = [
    "BlockPlan",
    "CompiledPipeline",
    "ExecutionError",
    "GridStore",
    "NativeBlockPlan",
    "NativeLoweringError",
    "NativePartitionPlan",
    "NativeVerificationError",
    "PartitionPlan",
    "KernelCostBreakdown",
    "PipelineTiming",
    "RooflinePoint",
    "analyze_roofline",
    "block_schedule",
    "clear_compile_cache",
    "clear_native_caches",
    "clear_plan_caches",
    "compile_block",
    "compile_kernel",
    "compile_pipeline",
    "compiler_available",
    "device_balance",
    "estimate_kernel_time",
    "execute_block",
    "execute_kernel",
    "execute_partitioned",
    "execute_pipeline",
    "generate_c",
    "generate_c_pipeline",
    "generate_cuda",
    "generate_cuda_pipeline",
    "generate_opencl",
    "generate_opencl_pipeline",
    "lower_block_source",
    "native_available",
    "native_plan_for_block",
    "native_plan_for_partition",
    "pipeline_roofline",
    "plan_for_block",
    "plan_for_partition",
    "recursion_headroom",
    "simulate_partition",
    "simulate_runs",
]

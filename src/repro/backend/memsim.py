"""Analytic GPU performance simulator.

The paper evaluates on three physical NVIDIA GPUs; this simulator
stands in for them.  It deliberately reuses the *same* cost vocabulary
as the benefit model (global/shared access cycles, ALU/SFU op costs),
extended with throughput and parallelism so that cycle counts become
milliseconds:

* **memory time** — global traffic divided by effective DRAM bandwidth.
  A kernel's traffic is derived from its body: one load per distinct
  externally-read pixel, with shared-memory staging amortizing windowed
  reads to one tile load (plus halo) per thread block;
* **compute time** — per-element cycles (ALU/SFU latencies plus
  shared-memory accesses, i.e. exactly the quantities of Eq. 6) divided
  by aggregate core throughput;
* **overlap** — GPUs hide latency by switching warps; the two times
  overlap by a device factor, scaled down when occupancy is too low to
  saturate the machine (this is where the resource-legality rule of
  Eq. 2 becomes *measurable*: over-fused kernels lose occupancy and slow
  down);
* **border handling** — halo pixels pay an extra per-pixel penalty that
  grows with the fused window radius, the effect Section IV warns
  about.

The simulator's purpose is to reproduce *relative* behaviour — who
wins, by what factor — not absolute milliseconds of the authors'
testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.dsl.kernel import ComputePattern, Kernel
from repro.fusion.border import halo_pixel_count
from repro.fusion.fuser import FusedKernel
from repro.model.hardware import GpuSpec
from repro.model.occupancy import occupancy as compute_occupancy
from repro.model.resources import (
    block_shared_bytes,
    estimated_registers_per_thread,
    kernel_shared_bytes,
)


@dataclass(frozen=True)
class KernelCostBreakdown:
    """Full cost accounting for one kernel launch."""

    name: str
    elements: int
    global_loads_per_element: float
    global_stores_per_element: float
    shared_accesses_per_element: float
    alu_per_element: int
    sfu_per_element: int
    occupancy: float
    time_memory_ms: float
    time_compute_ms: float
    time_ms: float

    @property
    def memory_bound(self) -> bool:
        return self.time_memory_ms >= self.time_compute_ms

    def describe(self) -> str:
        bound = "memory" if self.memory_bound else "compute"
        return (
            f"{self.name}: {self.time_ms:.3f} ms ({bound}-bound; "
            f"mem {self.time_memory_ms:.3f} / comp {self.time_compute_ms:.3f}; "
            f"occ {self.occupancy:.0%})"
        )


def kernel_traffic(kernel: Kernel) -> Tuple[float, float]:
    """Per-element (global_loads, shared_accesses) of a kernel.

    * a single-offset read stays in a register: 1 global load;
    * windowed reads of a shared-memory kernel are staged: the tile
      (with halo) is loaded once per block — slightly more than one
      global load per element — and each windowed read becomes a
      shared-memory access (plus one shared store per staged element);
    * windowed reads without staging hit global memory per offset.
    """
    bx, by = kernel.block_shape
    global_loads = 0.0
    shared_accesses = 0.0
    for image, offsets in kernel.reads().items():
        count = len(offsets)
        if count == 1:
            global_loads += 1.0
            continue
        rx = max(abs(dx) for dx, _ in offsets)
        ry = max(abs(dy) for _, dy in offsets)
        if kernel.uses_shared_memory:
            footprint = (bx + 2 * rx) * (by + 2 * ry) / (bx * by)
            global_loads += footprint
            shared_accesses += footprint  # stores into the staging tile
            shared_accesses += count  # windowed reads from the tile
        else:
            global_loads += count
    return global_loads, shared_accesses


def _shared_bytes(kernel: Kernel) -> int:
    """Shared memory of a launch; fused kernels sum their members."""
    if isinstance(kernel, FusedKernel):
        return block_shared_bytes(kernel.source_graph, kernel.member_names)
    return kernel_shared_bytes(kernel)


def analyze_kernel(kernel: Kernel, gpu: GpuSpec) -> KernelCostBreakdown:
    """Estimate the execution time of one kernel launch on ``gpu``."""
    elements = kernel.space.size
    loads, shared = kernel_traffic(kernel)
    stores = 1.0
    ops = kernel.op_counts

    bx, by = kernel.block_shape
    occ = compute_occupancy(
        gpu,
        threads_per_block=bx * by,
        shared_bytes_per_block=min(_shared_bytes(kernel), gpu.shared_mem_per_block),
        registers_per_thread=estimated_registers_per_thread(kernel),
    )
    utilization = min(1.0, occ.occupancy / gpu.occupancy_saturation)
    if utilization <= 0.0:
        utilization = 1.0 / gpu.max_warps_per_sm  # single resident warp

    # -- memory time --------------------------------------------------------
    bytes_per_element = kernel.output.bytes_per_pixel
    traffic_bytes = elements * bytes_per_element * (loads + stores)
    time_memory = traffic_bytes / (gpu.effective_bandwidth * utilization)

    # -- compute time -------------------------------------------------------
    cycles_per_element = (
        ops.alu * gpu.c_alu + ops.sfu * gpu.c_sfu + shared * gpu.t_shared
    )
    compute_cycles = elements * cycles_per_element

    if kernel.pattern is ComputePattern.LOCAL:
        rx, ry = kernel.window_radius
        halo = halo_pixel_count(
            kernel.space.width, kernel.space.height, (rx, ry)
        ) * kernel.space.channels
        compute_cycles += halo * gpu.border_penalty_cycles

    throughput = gpu.clock_hz * gpu.cuda_cores * utilization
    time_compute = compute_cycles / throughput

    # -- combine with partial overlap ---------------------------------------
    longer = max(time_memory, time_compute)
    shorter = min(time_memory, time_compute)
    total = longer + (1.0 - gpu.overlap) * shorter

    return KernelCostBreakdown(
        name=kernel.name,
        elements=elements,
        global_loads_per_element=loads,
        global_stores_per_element=stores,
        shared_accesses_per_element=shared,
        alu_per_element=ops.alu,
        sfu_per_element=ops.sfu,
        occupancy=occ.occupancy,
        time_memory_ms=time_memory * 1e3,
        time_compute_ms=time_compute * 1e3,
        time_ms=total * 1e3,
    )


def estimate_kernel_time(kernel: Kernel, gpu: GpuSpec) -> float:
    """Kernel execution time in milliseconds."""
    return analyze_kernel(kernel, gpu).time_ms

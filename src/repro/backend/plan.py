"""Plan compiler and SSA tape executor for fused partition blocks.

The recursive reference executor (:mod:`repro.backend.numpy_exec`)
re-enters a Python ``evaluate()`` walk for every consumer read of a
fused producer, so deep local-to-local chains pay a quadratic
Python-dispatch and index-arithmetic tax on top of the recomputation
the benefit model actually prices.  This module removes that tax by
*runtime plan flattening* (in the spirit of Kristensen et al.'s
"Fusion of Array Operations at Runtime"): each partition block is
compiled **once** into a topologically-ordered SSA *instruction tape*
and then executed iteratively — no recursion, no per-read re-walks.

Three layers of sharing make the tape strictly cheaper than the
recursive walk while remaining bit-identical to it:

* **value numbering** — one tape slot per structurally-unique
  subcomputation, keyed the way :mod:`repro.ir.cse` keys sharing
  (the compile-time generalization of the per-context ``memo`` dict);
* a **producer-result cache** keyed by ``(producer, coordinate-grid
  identity)`` — a producer evaluated at the same exchanged grid by
  multiple consumers is compiled (and therefore executed) exactly
  once, the runtime realization of Eq. 5's CSE assumption;
* **coordinate-grid interning** (:class:`GridStore`) — iteration
  grids, shifted grids, and boundary-resolved index arrays are
  materialized once per ``(grid, extent, boundary-mode)`` and shared
  across instructions, blocks, and runs.  Grids are kept in broadcast
  form (``(1, w)`` rows and ``(h, 1)`` columns), so index arithmetic
  is :math:`O(w + h)` instead of :math:`O(w \\cdot h)`.

Independent partition blocks can execute in parallel: a
:class:`PartitionPlan` tracks inter-block dependences (the same
ordering constraint :func:`~repro.backend.numpy_exec.block_schedule`
enforces serially) and drives a ``concurrent.futures`` thread pool —
NumPy releases the GIL for the bulk array work.  The worker count
comes from the ``workers=`` argument or the ``REPRO_EXEC_WORKERS``
environment knob; the default is the serial fallback.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.envknobs import int_env, validate_mode

from repro.backend.numpy_exec import (
    _BIN_FN,
    _CALL_FN,
    _CMP_FN,
    Arrays,
    ExecutionError,
    Params,
    _apply_mask,
    _array_for,
    _broadcast_output,
    _deprecated_entry,
    block_schedule,
    fault_check,
    recursion_headroom,
)
from repro.dsl.boundary import BoundaryMode, BoundarySpec, resolve_array
from repro.dsl.kernel import Kernel, ReductionKind
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition, PartitionBlock
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    InputAt,
    Param,
    Select,
    UnOp,
)

#: Environment knob selecting the number of parallel block workers.
WORKERS_ENV = "REPRO_EXEC_WORKERS"


# ---------------------------------------------------------------------------
# Coordinate-grid interning
# ---------------------------------------------------------------------------
#
# Grid identity is symbolic: a key is a nested tuple describing how the
# grid derives from a base iteration space.  Two reads that shift and
# resolve coordinates the same way share one key and therefore one
# materialized array.  Keys:
#
#   ("base", axis, width, height)        the iteration-space axis grid
#   ("shift", parent, delta)             parent + delta (static offset)
#   ("resolve", parent, n, mode)         boundary-resolved indices
#
# plus boolean masks (CONSTANT boundary handling):
#
#   ("oob", parent, n)                   parent out of [0, n)
#   ("ormask", xmask, ymask)             per-axis masks combined


def base_key(axis: str, width: int, height: int) -> tuple:
    """Key of an iteration-space base grid axis (``"x"`` or ``"y"``)."""
    return ("base", axis, width, height)


def _base_extent(key: tuple) -> int:
    return key[2] if key[1] == "x" else key[3]


def shift_key(parent: tuple, delta: int) -> tuple:
    """Shifted-grid key; static shifts collapse (``+1`` then ``-1`` is a
    no-op, matching the integer arithmetic of the recursive engine)."""
    if parent[0] == "shift":
        delta += parent[2]
        parent = parent[1]
    if delta == 0:
        return parent
    return ("shift", parent, delta)


def resolve_key(parent: tuple, n: int, mode: BoundaryMode) -> tuple:
    """Boundary-resolution key; resolving an un-shifted base grid that
    already lies inside ``[0, n)`` is the identity for every mode."""
    if parent[0] == "base" and _base_extent(parent) <= n:
        return parent
    return ("resolve", parent, n, mode.value)


#: Environment knob bounding interned grid/mask entries per store.
GRID_CACHE_ENV = "REPRO_GRID_CACHE"

#: Default :class:`GridStore` capacity.  Grid entries are tiny
#: (broadcast-form ``O(w + h)`` index vectors) but masks are full
#: ``(h, w)`` boolean planes, and a long-lived serving process
#: accumulates one entry per (shape, boundary-key) it ever sees —
#: unbounded before this cap existed.  4096 entries keeps every
#: realistic working set fully interned while bounding drift.
DEFAULT_GRID_CACHE = 4096


class GridStore:
    """Interned coordinate grids and out-of-bounds masks, LRU-bounded.

    Grids are integer index arrays in broadcast form: x-axis grids are
    ``(1, w)`` rows, y-axis grids ``(h, 1)`` columns.  Fancy indexing
    and mask combination broadcast them back to full ``(h, w)`` planes,
    producing bit-identical gathers at a fraction of the index
    arithmetic.  Entries are computed at most once per key while
    resident and shared across every tape compiled against this store.

    The store holds at most ``capacity`` entries (grids + masks
    combined), evicting least-recently-used ones beyond it — serving
    processes that see an unbounded stream of request geometries no
    longer leak interned grids.  ``capacity`` defaults to the
    ``REPRO_GRID_CACHE`` environment knob (``0`` restores the unbounded
    historical behaviour); an evicted key is simply re-materialized on
    its next use, so eviction affects footprint, never results.

    The store is **thread-safe**: one reentrant lock covers lookup,
    materialization, eviction, and the counters, so concurrent block
    execution (the tape engine's worker pool, the serving runtime's
    scheduler threads) sees exactly one canonical array per resident
    key and exact statistics.  The lock is reentrant because derived
    grids materialize their parents recursively.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            capacity = int_env(
                GRID_CACHE_ENV, default=DEFAULT_GRID_CACHE, minimum=0
            )
        #: Maximum resident entries; ``0`` means unbounded.
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.materialized = 0
        self.evictions = 0

    def _get(self, key: tuple) -> np.ndarray | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
        return entry

    def _insert(self, key: tuple, array: np.ndarray) -> np.ndarray:
        self.materialized += 1
        resident = self._entries.setdefault(key, array)
        self._entries.move_to_end(key)
        if self.capacity > 0:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return resident

    def grid(self, key: tuple) -> np.ndarray:
        """The materialized index array for a grid key (interned)."""
        with self._lock:
            array = self._get(key)
            if array is not None:
                return array
            tag = key[0]
            if tag == "base":
                _, axis, width, height = key
                if axis == "x":
                    array = np.arange(width)[None, :]
                else:
                    array = np.arange(height)[:, None]
            elif tag == "shift":
                _, parent, delta = key
                array = self.grid(parent) + delta
            elif tag == "resolve":
                _, parent, n, mode = key
                array, _ = resolve_array(
                    self.grid(parent), n, BoundaryMode(mode)
                )
            else:  # pragma: no cover - compiler emits only the keys above
                raise ExecutionError(f"unknown grid key {key!r}")
            return self._insert(key, array)

    def mask(self, key: tuple) -> np.ndarray:
        """The materialized boolean mask for a mask key (interned)."""
        with self._lock:
            mask = self._get(key)
            if mask is not None:
                return mask
            tag = key[0]
            if tag == "oob":
                _, parent, n = key
                index = self.grid(parent)
                mask = (index < 0) | (index >= n)
            elif tag == "ormask":
                _, xmask, ymask = key
                mask = self.mask(xmask) | self.mask(ymask)
            else:  # pragma: no cover - compiler emits only the keys above
                raise ExecutionError(f"unknown mask key {key!r}")
            return self._insert(key, mask)

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Instruction tape
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Instr:
    """One SSA tape instruction.

    ``args`` are input slot indices; ``aux`` holds immediates (operator
    names, constants, grid keys, boundary specs).  The instruction's own
    index in the tape is its output slot.
    """

    op: str
    args: Tuple[int, ...] = ()
    aux: tuple = ()


@dataclass
class PlanStats:
    """Compile-time accounting, used by tests and benchmarks."""

    instructions: int = 0
    member_evaluations: int = 0
    producer_cache_hits: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)


class _TapeCompiler:
    """Flattens one block (or one kernel) into an instruction tape.

    The compilation walk mirrors the recursive engine step for step —
    per-member expression evaluation, static shifts, two-stage index
    exchange against the intermediate image's space, CONSTANT-mode mask
    substitution — but every step lands in a value-numbered slot
    instead of an eager NumPy value.
    """

    def __init__(
        self,
        graph: Optional[KernelGraph],
        producer_of: Dict[str, str],
        naive_borders: bool,
    ):
        self.graph = graph
        self.producer_of = producer_of
        self.naive_borders = naive_borders
        self.tape: List[Instr] = []
        self._slots: Dict[tuple, int] = {}
        self._members: Dict[tuple, int] = {}
        self.producer_cache_hits = 0

    # -- slot emission ----------------------------------------------------

    def _emit(self, key: tuple, op: str, args: Tuple[int, ...], aux: tuple = ()) -> int:
        slot = self._slots.get(key)
        if slot is None:
            slot = len(self.tape)
            self.tape.append(Instr(op, args, aux))
            self._slots[key] = slot
        return slot

    # -- member evaluation (the producer-result cache) --------------------

    def member(self, name: str, gx: tuple, gy: tuple) -> int:
        key = (name, gx, gy)
        slot = self._members.get(key)
        if slot is not None:
            self.producer_cache_hits += 1
            return slot
        kernel = self.graph.kernel(name)
        slot = self.expr(kernel.body, kernel, gx, gy, {})
        self._members[key] = slot
        return slot

    # -- expression compilation -------------------------------------------

    def expr(
        self,
        node: Expr,
        kernel: Kernel,
        gx: tuple,
        gy: tuple,
        memo: Dict[Expr, int],
    ) -> int:
        cached = memo.get(node)
        if cached is not None:
            return cached
        slot = self._compile_node(node, kernel, gx, gy, memo)
        memo[node] = slot
        return slot

    def _compile_node(
        self,
        node: Expr,
        kernel: Kernel,
        gx: tuple,
        gy: tuple,
        memo: Dict[Expr, int],
    ) -> int:
        if isinstance(node, Const):
            return self._emit(("const", node.value), "const", (), (node.value,))
        if isinstance(node, Param):
            return self._emit(("param", node.name), "param", (), (node.name,))
        if isinstance(node, InputAt):
            return self._compile_read(node, kernel, gx, gy)
        if isinstance(node, BinOp):
            lhs = self.expr(node.lhs, kernel, gx, gy, memo)
            rhs = self.expr(node.rhs, kernel, gx, gy, memo)
            return self._emit(
                ("bin", node.op, lhs, rhs), "bin", (lhs, rhs), (node.op,)
            )
        if isinstance(node, UnOp):
            operand = self.expr(node.operand, kernel, gx, gy, memo)
            return self._emit(
                ("un", node.op, operand), "un", (operand,), (node.op,)
            )
        if isinstance(node, Cmp):
            lhs = self.expr(node.lhs, kernel, gx, gy, memo)
            rhs = self.expr(node.rhs, kernel, gx, gy, memo)
            return self._emit(
                ("cmp", node.op, lhs, rhs), "cmp", (lhs, rhs), (node.op,)
            )
        if isinstance(node, Select):
            cond = self.expr(node.cond, kernel, gx, gy, memo)
            if_true = self.expr(node.if_true, kernel, gx, gy, memo)
            if_false = self.expr(node.if_false, kernel, gx, gy, memo)
            return self._emit(
                ("select", cond, if_true, if_false),
                "select",
                (cond, if_true, if_false),
            )
        if isinstance(node, Call):
            args = tuple(self.expr(a, kernel, gx, gy, memo) for a in node.args)
            return self._emit(
                ("call", node.fn) + args, "call", args, (node.fn,)
            )
        if isinstance(node, Cast):
            operand = self.expr(node.operand, kernel, gx, gy, memo)
            return self._emit(
                ("cast", node.dtype, operand), "cast", (operand,), (node.dtype,)
            )
        raise ExecutionError(f"cannot evaluate node {type(node).__name__}")

    def _compile_read(
        self, node: InputAt, kernel: Kernel, gx: tuple, gy: tuple
    ) -> int:
        boundary = kernel.accessor_for(node.image).boundary
        xi = shift_key(gx, node.dx)
        yi = shift_key(gy, node.dy)
        producer = self.producer_of.get(node.image)
        if producer is None:
            # External image: boundary resolution happens at execution
            # time against the bound array's actual shape (matching
            # :func:`repro.backend.numpy_exec.gather`), interned per
            # (grid, extent, mode).
            key = (
                "gather",
                node.image,
                xi,
                yi,
                boundary.mode.value,
                boundary.constant,
            )
            return self._emit(key, "gather", (), (node.image, xi, yi, boundary))
        if self.naive_borders:
            # Single-stage composition (Fig. 4b): raw coordinates flow
            # into the producer, no index exchange.
            return self.member(producer, xi, yi)
        # Two-stage resolution: exchange the intermediate coordinates
        # against the intermediate image's bounds under the *consumer's*
        # boundary mode, then evaluate the producer at the valid grid.
        space = kernel.accessor_for(node.image).image.space
        xr = resolve_key(xi, space.width, boundary.mode)
        yr = resolve_key(yi, space.height, boundary.mode)
        slot = self.member(producer, xr, yr)
        if boundary.mode is BoundaryMode.CONSTANT:
            mask = ("ormask", ("oob", xi, space.width), ("oob", yi, space.height))
            slot = self._emit(
                ("maskfill", slot, mask, boundary.constant),
                "maskfill",
                (slot,),
                (mask, boundary.constant),
            )
        return slot


def _release_schedule(tape: List[Instr], root: int) -> Tuple[Tuple[int, ...], ...]:
    """Per-instruction lists of slots whose last use is that instruction.

    Freeing dead slots bounds peak memory to the live frontier — the
    tape equivalent of the recursive engine's evaluation stack.
    """
    last_use: Dict[int, int] = {}
    for index, instr in enumerate(tape):
        for slot in instr.args:
            last_use[slot] = index
    release: List[List[int]] = [[] for _ in tape]
    for slot, index in last_use.items():
        if slot != root:
            release[index].append(slot)
    return tuple(tuple(r) for r in release)


# ---------------------------------------------------------------------------
# Executable plans
# ---------------------------------------------------------------------------


class BlockPlan:
    """A compiled partition block: instruction tape + metadata.

    ``apply_reduction`` distinguishes the two call sites of the
    reference engine: ``execute_kernel`` reduces global operators,
    ``execute_block`` evaluates the destination body as-is.
    """

    def __init__(
        self,
        destination: Kernel,
        tape: List[Instr],
        root: int,
        store: GridStore,
        apply_reduction: bool,
        stats: PlanStats,
        naive_borders: bool = False,
        kind: str = "block",
    ):
        self.destination = destination
        self.output_name = destination.output.name
        self.tape: Tuple[Instr, ...] = tuple(tape)
        self.root = root
        self.store = store
        self.apply_reduction = apply_reduction
        self.stats = stats
        # Compilation provenance, recorded so the static verifier
        # (:mod:`repro.analysis.verifier`) can recompile a reference tape
        # and diff against it.
        self.naive_borders = naive_borders
        self.kind = kind
        self._release = _release_schedule(tape, root)

    def execute(self, arrays: Arrays, params: Params | None = None) -> np.ndarray:
        """Run the tape over bound arrays; returns the output array."""
        params = params or {}
        values = _run_tape(
            self.tape, self.root, self._release, arrays, params, self.store
        )
        kernel = self.destination
        if not self.apply_reduction or kernel.reduction is None:
            return _broadcast_output(values, kernel)
        if kernel.reduction is ReductionKind.SUM:
            return _broadcast_output(np.sum(values), kernel)
        if kernel.reduction is ReductionKind.MIN:
            return _broadcast_output(np.min(values), kernel)
        if kernel.reduction is ReductionKind.MAX:
            return _broadcast_output(np.max(values), kernel)
        if kernel.reduction is ReductionKind.HISTOGRAM:
            bins = kernel.output.space.width
            counts, _ = np.histogram(values, bins=bins, range=(0.0, float(bins)))
            return counts.astype(np.float64).reshape(1, bins)
        raise ExecutionError(f"unknown reduction {kernel.reduction!r}")


def _run_tape(
    tape: Tuple[Instr, ...],
    root: int,
    release: Tuple[Tuple[int, ...], ...],
    arrays: Arrays,
    params: Params,
    store: GridStore,
) -> np.ndarray:
    slots: List = [None] * len(tape)
    for index, instr in enumerate(tape):
        op = instr.op
        args = instr.args
        if op == "bin":
            value = _BIN_FN[instr.aux[0]](slots[args[0]], slots[args[1]])
        elif op == "gather":
            image, xi, yi, boundary = instr.aux
            value = _gather_interned(store, arrays, image, xi, yi, boundary)
        elif op == "maskfill":
            mask_key, fill = instr.aux
            value = _apply_mask(slots[args[0]], store.mask(mask_key), fill)
        elif op == "un":
            operand = slots[args[0]]
            value = -operand if instr.aux[0] == "neg" else np.abs(operand)
        elif op == "cmp":
            value = _CMP_FN[instr.aux[0]](
                slots[args[0]], slots[args[1]]
            ).astype(np.float64)
        elif op == "select":
            value = np.where(
                slots[args[0]] != 0.0, slots[args[1]], slots[args[2]]
            )
        elif op == "call":
            value = _CALL_FN[instr.aux[0]](*(slots[s] for s in args))
        elif op == "cast":
            value = (
                np.asarray(slots[args[0]])
                .astype(instr.aux[0])
                .astype(np.float64)
            )
        elif op == "const":
            value = np.float64(instr.aux[0])
        elif op == "param":
            try:
                value = np.float64(params[instr.aux[0]])
            except KeyError:
                raise ExecutionError(
                    f"unbound parameter {instr.aux[0]!r}"
                ) from None
        else:  # pragma: no cover - compiler emits only the ops above
            raise ExecutionError(f"unknown tape op {op!r}")
        slots[index] = value
        for dead in release[index]:
            slots[dead] = None
    return slots[root]


def _gather_interned(
    store: GridStore,
    arrays: Arrays,
    image: str,
    xi: tuple,
    yi: tuple,
    boundary: BoundarySpec,
) -> np.ndarray:
    array = _array_for(image, arrays)
    height, width = array.shape[:2]
    xr = store.grid(resolve_key(xi, width, boundary.mode))
    yr = store.grid(resolve_key(yi, height, boundary.mode))
    values = array[yr, xr]
    if boundary.mode is BoundaryMode.CONSTANT:
        mask = store.mask(("ormask", ("oob", xi, width), ("oob", yi, height)))
        values = _apply_mask(values, mask, boundary.constant)
    return values


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def _iteration_grids(kernel: Kernel) -> Tuple[tuple, tuple]:
    """Base grid keys of the kernel's iteration space.

    Global (reduction) kernels iterate their input space, like
    ``_coordinate_grids`` in the recursive engine.
    """
    space = kernel.space
    if kernel.reduction is not None and kernel.accessors:
        space = kernel.accessors[0].image.space
    return (
        base_key("x", space.width, space.height),
        base_key("y", space.width, space.height),
    )


def compile_kernel(
    kernel: Kernel,
    store: GridStore | None = None,
) -> BlockPlan:
    """Compile a single kernel (``execute_kernel`` semantics: global
    operators are reduced and broadcast)."""
    compiler = _TapeCompiler(None, {}, naive_borders=False)
    gx, gy = _iteration_grids(kernel)
    with recursion_headroom():
        root = compiler.expr(kernel.body, kernel, gx, gy, {})
    stats = PlanStats(
        instructions=len(compiler.tape),
        member_evaluations=1,
        producer_cache_hits=0,
        by_op=_op_histogram(compiler.tape),
    )
    return BlockPlan(
        kernel,
        compiler.tape,
        root,
        store or GridStore(),
        apply_reduction=True,
        stats=stats,
        kind="kernel",
    )


def compile_block(
    graph: KernelGraph,
    block: PartitionBlock,
    naive_borders: bool = False,
    store: GridStore | None = None,
    apply_reduction: bool = False,
) -> BlockPlan:
    """Compile a partition block (``execute_block`` semantics).

    Singleton blocks with ``apply_reduction=True`` get ``execute_kernel``
    semantics instead — the behaviour of ``execute_partitioned``.
    """
    if len(block) == 1 and apply_reduction:
        (name,) = block.vertices
        return compile_kernel(graph.kernel(name), store)
    producer_of = {
        graph.kernel(name).output.name: name for name in block.vertices
    }
    destinations = block.destination_kernels()
    if len(destinations) != 1:
        raise ExecutionError(
            f"block {sorted(block.vertices)} has no unique destination"
        )
    destination = graph.kernel(destinations[0])
    compiler = _TapeCompiler(graph, producer_of, naive_borders)
    gx, gy = _iteration_grids(destination)
    with recursion_headroom():
        root = compiler.member(destinations[0], gx, gy)
    stats = PlanStats(
        instructions=len(compiler.tape),
        member_evaluations=len(compiler._members),
        producer_cache_hits=compiler.producer_cache_hits,
        by_op=_op_histogram(compiler.tape),
    )
    return BlockPlan(
        destination,
        compiler.tape,
        root,
        store or GridStore(),
        apply_reduction=False,
        stats=stats,
        naive_borders=naive_borders,
        kind="block",
    )


def _op_histogram(tape: List[Instr]) -> Dict[str, int]:
    histogram: Dict[str, int] = {}
    for instr in tape:
        histogram[instr.op] = histogram.get(instr.op, 0) + 1
    return histogram


class PartitionPlan:
    """A fully compiled partition: one :class:`BlockPlan` per block plus
    the inter-block dependence structure for parallel scheduling."""

    def __init__(
        self,
        graph: KernelGraph,
        partition: Partition,
        naive_borders: bool = False,
        store: GridStore | None = None,
    ):
        self.graph = graph
        self.partition = partition
        self.store = store or GridStore()
        schedule = block_schedule(graph, partition)
        producer_block: Dict[str, int] = {}
        self.plans: List[BlockPlan] = []
        self.deps: List[Set[int]] = []
        for index, block in enumerate(schedule):
            plan = compile_block(
                graph,
                block,
                naive_borders=naive_borders,
                store=self.store,
                apply_reduction=True,
            )
            deps = {
                producer_block[image]
                for image in block.external_input_images()
                if image in producer_block
            }
            for name in block.vertices:
                producer_block[graph.kernel(name).output.name] = index
            self.plans.append(plan)
            self.deps.append(deps)

    def execute(
        self,
        inputs: Arrays,
        params: Params | None = None,
        workers: int | None = None,
    ) -> Arrays:
        """Run every block; returns the surviving-image environment."""
        params = params or {}
        workers = resolve_workers(workers)
        env: Arrays = dict(inputs)
        if workers <= 1 or len(self.plans) <= 1:
            for plan in self.plans:
                env[plan.output_name] = plan.execute(env, params)
            return env
        return self._execute_parallel(env, params, workers)

    def _execute_parallel(
        self, env: Arrays, params: Params, workers: int
    ) -> Arrays:
        pending = {index: len(deps) for index, deps in enumerate(self.deps)}
        dependents: Dict[int, List[int]] = {i: [] for i in pending}
        for index, deps in enumerate(self.deps):
            for dep in deps:
                dependents[dep].append(index)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures: Dict = {}

            def submit(index: int) -> None:
                plan = self.plans[index]
                # Snapshot the environment: blocks run concurrently with
                # main-thread writes, and every input a block needs is
                # present by the time its dependences completed.
                futures[pool.submit(plan.execute, dict(env), params)] = index

            for index, count in pending.items():
                if count == 0:
                    submit(index)
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures.pop(future)
                    env[self.plans[index].output_name] = future.result()
                    for dependent in dependents[index]:
                        pending[dependent] -= 1
                        if pending[dependent] == 0:
                            submit(dependent)
        return env


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: explicit argument, else the
    ``REPRO_EXEC_WORKERS`` environment knob, else serial (1).

    A malformed environment value raises
    :class:`repro.envknobs.EnvKnobError` (a :class:`ValueError`) naming
    the variable.
    """
    if workers is not None:
        return max(1, int(workers))
    return max(1, int_env(WORKERS_ENV, default=1))


# ---------------------------------------------------------------------------
# Plan caches
# ---------------------------------------------------------------------------
#
# Plans and grid stores are cached per graph (weakly, so graphs can be
# collected) and keyed by partition/block shape — repeated executions of
# the same configuration reuse both the tape and the interned grids.
# One lock covers every cache: compilation happens exactly once per
# (graph, partition/block) even when serving threads race to it.

_graph_stores: "weakref.WeakKeyDictionary[KernelGraph, GridStore]" = (
    weakref.WeakKeyDictionary()
)
_partition_plans: "weakref.WeakKeyDictionary[KernelGraph, dict]" = (
    weakref.WeakKeyDictionary()
)
_block_plans: "weakref.WeakKeyDictionary[KernelGraph, dict]" = (
    weakref.WeakKeyDictionary()
)
_plan_cache_lock = threading.Lock()


def _store_for(graph: KernelGraph) -> GridStore:
    store = _graph_stores.get(graph)
    if store is None:
        store = GridStore()
        _graph_stores[graph] = store
    return store


def _strict_verify(plan, graph: KernelGraph, block=None) -> None:
    """Run the static plan verifier on a freshly built plan when
    ``REPRO_VALIDATE=strict``; raises
    :class:`repro.analysis.verifier.PlanVerificationError` on failure.

    Imported lazily: the verifier sits above this module (it recompiles
    reference tapes through :func:`compile_block`).
    """
    if validate_mode() != "strict":
        return
    from repro.analysis.verifier import enforce, verify_plan

    enforce(
        verify_plan(plan, graph=graph, block=block),
        context=f"graph {graph.structural_signature()[:12]}",
    )


def plan_for_partition(
    graph: KernelGraph,
    partition: Partition,
    naive_borders: bool = False,
) -> PartitionPlan:
    """The (cached) compiled plan of a partition."""
    key = (partition.signature(), bool(naive_borders))
    with _plan_cache_lock:
        cache = _partition_plans.get(graph)
        if cache is None:
            cache = {}
            _partition_plans[graph] = cache
        plan = cache.get(key)
        if plan is None:
            fault_check("plan.compile")
            plan = PartitionPlan(
                graph, partition, naive_borders, store=_store_for(graph)
            )
            _strict_verify(plan, graph)
            cache[key] = plan
        return plan


def plan_for_block(
    graph: KernelGraph,
    block: PartitionBlock,
    naive_borders: bool = False,
) -> BlockPlan:
    """The (cached) compiled plan of one block (``execute_block``
    semantics: the destination body is never reduced)."""
    key = (block.signature(), bool(naive_borders))
    with _plan_cache_lock:
        cache = _block_plans.get(graph)
        if cache is None:
            cache = {}
            _block_plans[graph] = cache
        plan = cache.get(key)
        if plan is None:
            fault_check("plan.compile")
            plan = compile_block(
                graph,
                block,
                naive_borders=naive_borders,
                store=_store_for(graph),
                apply_reduction=False,
            )
            _strict_verify(plan, graph, block=block)
            cache[key] = plan
        return plan


def clear_plan_caches() -> None:
    """Drop every cached plan and grid store (tests, memory pressure)."""
    with _plan_cache_lock:
        _graph_stores.clear()
        _partition_plans.clear()
        _block_plans.clear()


# ---------------------------------------------------------------------------
# Engine entry points (called by numpy_exec's ``engine=`` dispatch)
# ---------------------------------------------------------------------------


def execute_pipeline_tape(
    graph: KernelGraph,
    inputs: Arrays,
    params: Params | None = None,
    workers: int | None = None,
) -> Arrays:
    """Staged execution through the tape engine (singleton partition).

    .. deprecated::
        Thin shim over :func:`repro.api.run` with
        ``ExecutionOptions(engine="tape", fuse=False)``.
    """
    _deprecated_entry(
        "execute_pipeline_tape",
        "repro.api.run with ExecutionOptions(engine='tape', fuse=False)",
    )
    from repro.api import ExecutionOptions, run

    return run(
        graph,
        inputs,
        params,
        options=ExecutionOptions(engine="tape", workers=workers, fuse=False),
    )


def execute_partitioned_tape(
    graph: KernelGraph,
    partition: Partition,
    inputs: Arrays,
    params: Params | None = None,
    naive_borders: bool = False,
    workers: int | None = None,
) -> Arrays:
    """Partitioned execution through the tape engine.

    .. deprecated::
        Thin shim over :func:`repro.api.run` with
        ``ExecutionOptions(engine="tape", partition=...)``.
    """
    _deprecated_entry(
        "execute_partitioned_tape",
        "repro.api.run with ExecutionOptions(engine='tape', partition=...)",
    )
    from repro.api import ExecutionOptions, run

    return run(
        graph,
        inputs,
        params,
        options=ExecutionOptions(
            engine="tape",
            workers=workers,
            partition=partition,
            naive_borders=naive_borders,
        ),
    )


def execute_block_tape(
    graph: KernelGraph,
    block: PartitionBlock,
    arrays: Arrays,
    params: Params | None = None,
    naive_borders: bool = False,
) -> np.ndarray:
    """Fused-block execution through the tape engine.

    .. deprecated::
        Thin shim over :func:`repro.api.run_block` with
        ``ExecutionOptions(engine="tape")``.
    """
    _deprecated_entry(
        "execute_block_tape",
        "repro.api.run_block with ExecutionOptions(engine='tape')",
    )
    from repro.api import ExecutionOptions, run_block

    return run_block(
        graph,
        block,
        arrays,
        params,
        options=ExecutionOptions(engine="tape", naive_borders=naive_borders),
    )

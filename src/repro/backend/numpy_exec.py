"""Reference executor on NumPy arrays.

Two execution paths exist, and their agreement is the central
correctness property of the reproduction:

* **staged** (:func:`execute_pipeline`): every kernel runs separately,
  intermediates are materialized as full arrays — the semantics of the
  unfused program, where each local kernel re-applies boundary handling
  to its (materialized) input;
* **fused** (:func:`execute_block` / :func:`execute_partitioned`): a
  partition block runs as one kernel.  Intermediate values are
  recomputed per consumer read (the redundant computation the benefit
  model prices), and intermediate coordinates are resolved in two
  stages: the consumer's boundary mode exchanges out-of-border
  intermediate indices for valid ones (the index exchange of
  Section IV-B), then the producer's own reads resolve against *its*
  inputs.  ``naive_borders=True`` disables the exchange and reproduces
  the incorrect single-stage composition of Fig. 4b.

Evaluation is vectorized: expressions are evaluated over full integer
coordinate grids, so a recursive producer evaluation at exchanged
coordinates is a fancy-indexing gather, not a per-pixel loop.

Three **engines** implement these semantics:

* ``"tape"`` (default) — the plan-compiling executor of
  :mod:`repro.backend.plan`: each block is flattened once into an SSA
  instruction tape and executed iteratively, with producer-result
  caching, interned coordinate grids, and optional parallel execution
  of independent blocks (``REPRO_EXEC_WORKERS``);
* ``"recursive"`` — the original recursive walk below, retained for
  differential testing and instrumentation (``call_counter``);
* ``"native"`` — the compiled executor of
  :mod:`repro.backend.native_exec`: each block tape is lowered to one
  row-tiled C loop nest (OpenMP via ``REPRO_NATIVE_THREADS``), with
  graceful per-block fallback to the tape when no C compiler is on
  PATH or a block has no lowering.

Select per call with ``engine=`` or globally with the
``REPRO_EXEC_ENGINE`` environment variable.  Tape and recursive are
bit-identical on every pipeline (see ``tests/backend/test_plan_equiv``);
native matches under the pinned tolerance policy of
:func:`repro.backend.native_exec.tolerance_for` — bit-identical unless
the tape calls libm functions beyond ``sqrt``/``rsqrt`` (see
``tests/backend/test_native_equiv``).
"""

from __future__ import annotations

import sys
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List

import numpy as np

from repro.envknobs import choice_env

from repro.dsl.boundary import BoundaryMode, BoundarySpec, resolve_array
from repro.dsl.kernel import Kernel, ReductionKind
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition, PartitionBlock
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    InputAt,
    Param,
    Select,
    UnOp,
)

Arrays = Dict[str, np.ndarray]
Params = Dict[str, float]

#: numpy ufuncs for binary ALU ops.
_BIN_FN = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "mod": np.mod,
    "min": np.minimum,
    "max": np.maximum,
}

_CMP_FN = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}

_CALL_FN = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "rsqrt": lambda x: 1.0 / np.sqrt(x),
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "tanh": np.tanh,
    "pow": np.power,
    "atan2": np.arctan2,
}


class ExecutionError(RuntimeError):
    """Raised for execution-time problems (missing arrays, bad shapes)."""


def fault_check(site: str) -> None:
    """Fire serving-layer fault injection at ``site``, when armed.

    The backends are instrumented for the deterministic fault harness
    of :mod:`repro.serve.faultinject`, but must not import the serving
    stack (the dependency points the other way, and most processes
    never serve).  Probing ``sys.modules`` keeps the cost at one dict
    lookup unless something already imported the harness — at which
    point its lock-free ``armed()`` flag short-circuits the idle case.
    """
    faults = sys.modules.get("repro.serve.faultinject")
    if faults is not None and faults.armed():
        faults.check(site)


#: Default engine; override per call (``engine=``) or globally with the
#: ``REPRO_EXEC_ENGINE`` environment variable.
DEFAULT_ENGINE = "tape"

ENGINE_ENV = "REPRO_EXEC_ENGINE"

_ENGINES = ("tape", "recursive", "native")


def _resolve_engine(engine: str | None) -> str:
    if engine is None:
        # A bad environment value raises EnvKnobError (a ValueError)
        # naming the variable; a bad explicit argument stays an
        # ExecutionError — the caller passed it, not the environment.
        return choice_env(ENGINE_ENV, _ENGINES, DEFAULT_ENGINE)
    if engine not in _ENGINES:
        raise ExecutionError(
            f"unknown execution engine {engine!r}; expected one of {_ENGINES}"
        )
    return engine


@contextmanager
def recursion_headroom(limit: int = 20000) -> Iterator[None]:
    """Scoped recursion-limit raise for deeply fused recursive walks.

    Restores the prior limit on exit; a no-op when the current limit
    already suffices, so nesting is cheap.
    """
    prior = sys.getrecursionlimit()
    if prior >= limit:
        yield
        return
    sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(prior)


def _array_for(image_name: str, arrays: Arrays) -> np.ndarray:
    try:
        return np.asarray(arrays[image_name])
    except KeyError:
        raise ExecutionError(f"no array bound for image {image_name!r}") from None


def _apply_mask(
    values: np.ndarray, mask: np.ndarray | None, fill: float
) -> np.ndarray:
    """Substitute ``fill`` where ``mask`` is set (CONSTANT boundary)."""
    if mask is None:
        return values
    if values.ndim == mask.ndim + 1:  # multi-channel image
        mask = mask[..., None]
    return np.where(mask, fill, values)


def gather(
    array: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    boundary: BoundarySpec,
) -> np.ndarray:
    """Read ``array`` at integer coordinate grids with boundary handling."""
    height, width = array.shape[:2]
    if boundary.mode is BoundaryMode.CONSTANT:
        xr, mask_x = resolve_array(xs, width, boundary.mode)
        yr, mask_y = resolve_array(ys, height, boundary.mode)
        return _apply_mask(array[yr, xr], mask_x | mask_y, boundary.constant)
    xr, _ = resolve_array(xs, width, boundary.mode)
    yr, _ = resolve_array(ys, height, boundary.mode)
    return array[yr, xr]


ReadFn = Callable[[str, int, int, np.ndarray, np.ndarray], np.ndarray]


def evaluate(
    expr: Expr,
    read: ReadFn,
    params: Params,
    xs: np.ndarray,
    ys: np.ndarray,
    memo: dict | None = None,
) -> np.ndarray:
    """Evaluate an expression over coordinate grids ``(xs, ys)``.

    ``read`` produces the value grid for an image read at an offset;
    it receives the coordinate grids so recursive (fused) evaluation can
    resolve them stage by stage.

    ``memo`` (when given) caches results per structurally-identical
    subexpression for *this* coordinate grid — the runtime counterpart
    of the register reuse that CSE-aware op counting assumes (Eq. 5):
    a shared subtree is computed once and reused.  Callers must pass a
    fresh dict per (read, xs, ys) context.
    """
    if memo is not None:
        cached = memo.get(expr)
        if cached is not None:
            return cached
        value = _evaluate_node(expr, read, params, xs, ys, memo)
        memo[expr] = value
        return value
    return _evaluate_node(expr, read, params, xs, ys, None)


def _evaluate_node(
    expr: Expr,
    read: ReadFn,
    params: Params,
    xs: np.ndarray,
    ys: np.ndarray,
    memo: dict | None,
) -> np.ndarray:
    if isinstance(expr, Const):
        return np.float64(expr.value)
    if isinstance(expr, Param):
        try:
            return np.float64(params[expr.name])
        except KeyError:
            raise ExecutionError(f"unbound parameter {expr.name!r}") from None
    if isinstance(expr, InputAt):
        return read(expr.image, expr.dx, expr.dy, xs, ys)
    if isinstance(expr, BinOp):
        return _BIN_FN[expr.op](
            evaluate(expr.lhs, read, params, xs, ys, memo),
            evaluate(expr.rhs, read, params, xs, ys, memo),
        )
    if isinstance(expr, UnOp):
        operand = evaluate(expr.operand, read, params, xs, ys, memo)
        return -operand if expr.op == "neg" else np.abs(operand)
    if isinstance(expr, Cmp):
        return _CMP_FN[expr.op](
            evaluate(expr.lhs, read, params, xs, ys, memo),
            evaluate(expr.rhs, read, params, xs, ys, memo),
        ).astype(np.float64)
    if isinstance(expr, Select):
        cond = evaluate(expr.cond, read, params, xs, ys, memo)
        return np.where(
            cond != 0.0,
            evaluate(expr.if_true, read, params, xs, ys, memo),
            evaluate(expr.if_false, read, params, xs, ys, memo),
        )
    if isinstance(expr, Call):
        args = [evaluate(a, read, params, xs, ys, memo) for a in expr.args]
        return _CALL_FN[expr.fn](*args)
    if isinstance(expr, Cast):
        value = evaluate(expr.operand, read, params, xs, ys, memo)
        return np.asarray(value).astype(expr.dtype).astype(np.float64)
    raise ExecutionError(f"cannot evaluate node {type(expr).__name__}")


def _coordinate_grids(kernel: Kernel) -> tuple[np.ndarray, np.ndarray]:
    """Coordinate grids of the kernel's iteration space.

    Point/local kernels iterate their output space; global (reduction)
    kernels iterate their *input* space — the output only holds the
    reduced value(s).
    """
    space = kernel.space
    if kernel.reduction is not None and kernel.accessors:
        space = kernel.accessors[0].image.space
    xs, ys = np.meshgrid(np.arange(space.width), np.arange(space.height))
    return xs, ys


def _broadcast_output(value: np.ndarray, kernel: Kernel) -> np.ndarray:
    """Broadcast scalar results to the full output grid."""
    shape = (kernel.space.height, kernel.space.width)
    if kernel.space.channels > 1:
        shape = shape + (kernel.space.channels,)
    return np.broadcast_to(np.asarray(value, dtype=np.float64), shape).copy()


def execute_kernel(
    kernel: Kernel, arrays: Arrays, params: Params | None = None
) -> np.ndarray:
    """Execute a single kernel over its full iteration space.

    For global operators the per-pixel values are reduced according to
    the kernel's :class:`~repro.dsl.kernel.ReductionKind` and the result
    is broadcast over the output space (histograms fill a ``bins x 1``
    output row instead).
    """
    params = params or {}
    xs, ys = _coordinate_grids(kernel)

    def read(image, dx, dy, cx, cy):
        boundary = kernel.accessor_for(image).boundary
        return gather(_array_for(image, arrays), cx + dx, cy + dy, boundary)

    with recursion_headroom():
        values = evaluate(kernel.body, read, params, xs, ys, memo={})

    if kernel.reduction is None:
        return _broadcast_output(values, kernel)
    if kernel.reduction is ReductionKind.SUM:
        return _broadcast_output(np.sum(values), kernel)
    if kernel.reduction is ReductionKind.MIN:
        return _broadcast_output(np.min(values), kernel)
    if kernel.reduction is ReductionKind.MAX:
        return _broadcast_output(np.max(values), kernel)
    if kernel.reduction is ReductionKind.HISTOGRAM:
        bins = kernel.output.space.width
        counts, _ = np.histogram(values, bins=bins, range=(0.0, float(bins)))
        return counts.astype(np.float64).reshape(1, bins)
    raise ExecutionError(f"unknown reduction {kernel.reduction!r}")


def _deprecated_entry(old: str, new: str) -> None:
    """Emit the :class:`DeprecationWarning` of one legacy entry point.

    ``stacklevel=3`` points the warning at the *caller* of the shim
    (shim → this helper → warn), where the migration has to happen.
    """
    warnings.warn(
        f"{old} is deprecated; call {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def execute_pipeline(
    graph: KernelGraph,
    inputs: Arrays,
    params: Params | None = None,
    *,
    engine: str | None = None,
    workers: int | None = None,
    runtime=None,
) -> Arrays:
    """Staged (unfused) execution: one kernel at a time, in topo order.

    .. deprecated::
        This is a thin shim over :func:`repro.api.run` with
        ``ExecutionOptions(fuse=False)`` — the canonical entry point.

    Returns the environment mapping every image name — inputs and all
    produced images — to its array.  ``engine`` selects the tape
    (default), recursive, or native (compiled C) implementation;
    ``workers`` enables parallel execution of independent kernels under
    the tape engine.  ``runtime`` (a
    :class:`repro.serve.runtime.ServingRuntime`) routes the call
    through the serving layer instead.
    """
    _deprecated_entry(
        "execute_pipeline", "repro.api.run with ExecutionOptions(fuse=False)"
    )
    from repro.api import ExecutionOptions, run

    return run(
        graph,
        inputs,
        params,
        options=ExecutionOptions(
            engine=engine, workers=workers, runtime=runtime, fuse=False
        ),
    )


def _execute_pipeline_recursive(
    graph: KernelGraph,
    inputs: Arrays,
    params: Params | None = None,
) -> Arrays:
    """Staged execution through the recursive engine (reference walk)."""
    env: Arrays = dict(inputs)
    for name in graph.kernel_names:
        kernel = graph.kernel(name)
        env[kernel.output.name] = execute_kernel(kernel, env, params)
    return env


def execute_block(
    graph: KernelGraph,
    block: PartitionBlock,
    arrays: Arrays,
    params: Params | None = None,
    naive_borders: bool = False,
    call_counter: Dict[str, int] | None = None,
    *,
    engine: str | None = None,
) -> np.ndarray:
    """Execute a partition block with fused-kernel semantics.

    .. deprecated::
        This is a thin shim over :func:`repro.api.run_block` — the
        canonical entry point.

    ``call_counter`` (when given) is filled with the number of times
    each member kernel was (re)evaluated and forces the recursive
    engine (see :func:`repro.api.run_block`).
    """
    _deprecated_entry("execute_block", "repro.api.run_block")
    from repro.api import ExecutionOptions, run_block

    return run_block(
        graph,
        block,
        arrays,
        params,
        options=ExecutionOptions(engine=engine, naive_borders=naive_borders),
        call_counter=call_counter,
    )


def _execute_block_recursive(
    graph: KernelGraph,
    block: PartitionBlock,
    arrays: Arrays,
    params: Params | None = None,
    naive_borders: bool = False,
    call_counter: Dict[str, int] | None = None,
) -> np.ndarray:
    """Fused-block execution through the recursive engine.

    Intermediate images are never materialized: a consumer read of an
    intermediate pixel recursively evaluates the producer at the
    requested coordinates.  The coordinates are first *exchanged*
    against the intermediate image's bounds under the consumer's
    boundary mode — the two-stage resolution that makes local-to-local
    fusion border-correct.  With ``naive_borders=True`` the exchange is
    skipped and out-of-border intermediate coordinates flow raw into
    the producer (single-stage resolution), which reproduces the
    incorrect behaviour of plain body composition (Fig. 4b).

    ``call_counter`` (when given) is filled with the number of times
    each member kernel was (re)evaluated — the empirical recomputation
    factors behind the benefit model's φ term: a point consumer
    evaluates its producer once (the Eq. 5 register reuse), a local
    consumer once per distinct window offset.  The counts instrument
    *this* engine's evaluation order (the tape engine deduplicates
    producer evaluations by grid).
    """
    params = params or {}
    producer_of = {
        graph.kernel(name).output.name: name for name in block.vertices
    }
    destinations = block.destination_kernels()
    if len(destinations) != 1:
        raise ExecutionError(
            f"block {sorted(block.vertices)} has no unique destination"
        )

    def eval_member(name: str, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        if call_counter is not None:
            call_counter[name] = call_counter.get(name, 0) + 1
        kernel = graph.kernel(name)

        def read(image, dx, dy, cx, cy):
            boundary = kernel.accessor_for(image).boundary
            xi, yi = cx + dx, cy + dy
            producer = producer_of.get(image)
            if producer is None:
                return gather(_array_for(image, arrays), xi, yi, boundary)
            if naive_borders:
                return eval_member(producer, xi, yi)
            space = kernel.accessor_for(image).image.space
            xr, mask_x = resolve_array(xi, space.width, boundary.mode)
            yr, mask_y = resolve_array(yi, space.height, boundary.mode)
            values = eval_member(producer, xr, yr)
            if boundary.mode is BoundaryMode.CONSTANT:
                values = _apply_mask(values, mask_x | mask_y, boundary.constant)
            return values

        # Fresh memo per member evaluation: identical subexpressions
        # over *these* coordinates are computed once (register reuse).
        return evaluate(kernel.body, read, params, xs, ys, memo={})

    destination = graph.kernel(destinations[0])
    xs, ys = _coordinate_grids(destination)
    with recursion_headroom():
        values = eval_member(destinations[0], xs, ys)
    return _broadcast_output(values, destination)


def block_schedule(graph: KernelGraph, partition: Partition) -> List[PartitionBlock]:
    """Blocks in dependence order (a block runs after its producers)."""
    pending = list(partition.blocks)
    available = set(graph.pipeline_inputs())
    ordered: List[PartitionBlock] = []
    while pending:
        progressed = False
        for block in list(pending):
            external = set(block.external_input_images())
            if external <= available:
                ordered.append(block)
                pending.remove(block)
                for name in block.vertices:
                    available.add(graph.kernel(name).output.name)
                progressed = True
        if not progressed:  # pragma: no cover - partition invariant
            raise ExecutionError("circular dependence between blocks")
    return ordered


def execute_partitioned(
    graph: KernelGraph,
    partition: Partition,
    inputs: Arrays,
    params: Params | None = None,
    naive_borders: bool = False,
    *,
    engine: str | None = None,
    workers: int | None = None,
    runtime=None,
) -> Arrays:
    """Execute a pipeline under a fusion partition.

    .. deprecated::
        This is a thin shim over :func:`repro.api.run` with
        ``ExecutionOptions(partition=...)`` — the canonical entry
        point.

    Singleton blocks run as plain kernels; fused blocks run with
    fused-kernel semantics.  Only images that survive fusion — block
    external inputs and destination outputs — appear in the returned
    environment, mirroring what the generated program would allocate.
    """
    _deprecated_entry(
        "execute_partitioned",
        "repro.api.run with ExecutionOptions(partition=...)",
    )
    from repro.api import ExecutionOptions, run

    return run(
        graph,
        inputs,
        params,
        options=ExecutionOptions(
            engine=engine,
            workers=workers,
            runtime=runtime,
            partition=partition,
            naive_borders=naive_borders,
        ),
    )


def _execute_partitioned_recursive(
    graph: KernelGraph,
    partition: Partition,
    inputs: Arrays,
    params: Params | None = None,
    naive_borders: bool = False,
) -> Arrays:
    """Partitioned execution through the recursive engine."""
    env: Arrays = dict(inputs)
    for block in block_schedule(graph, partition):
        if len(block) == 1:
            (name,) = block.vertices
            kernel = graph.kernel(name)
            env[kernel.output.name] = execute_kernel(kernel, env, params)
        else:
            destination = graph.kernel(block.destination_kernels()[0])
            env[destination.output.name] = _execute_block_recursive(
                graph,
                block,
                env,
                params,
                naive_borders=naive_borders,
            )
    return env

"""Roofline analysis: arithmetic intensity vs device balance.

The paper's Section V-C explains its negative result ("compute-bound
applications benefit less from kernel fusion") in exactly roofline
terms.  This module quantifies the claim: for each kernel (or fused
kernel) it computes

* **arithmetic intensity** — compute cycles per byte of DRAM traffic,
* the device **balance point** — the intensity at which the compute
  and memory roofs intersect,

and classifies the kernel as memory- or compute-bound.  Pipeline-level
summaries show how fusion *moves* kernels along the roofline: removing
traffic raises the intensity of memory-bound kernels toward the roof,
while compute-bound kernels (Night's atrous passes) do not move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.backend.memsim import kernel_traffic
from repro.dsl.kernel import Kernel
from repro.fusion.fuser import fuse_partition
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition
from repro.model.hardware import GpuSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on a device's roofline."""

    name: str
    intensity: float  # compute cycles per DRAM byte
    balance: float  # device balance point (cycles per byte)
    compute_bound: bool
    cycles_per_element: float
    bytes_per_element: float

    def describe(self) -> str:
        bound = "compute" if self.compute_bound else "memory"
        return (
            f"{self.name}: {self.intensity:.2f} cycles/B "
            f"(balance {self.balance:.2f}) -> {bound}-bound"
        )


def device_balance(gpu: GpuSpec) -> float:
    """Compute cycles per byte at the roofline knee of a device.

    Aggregate compute throughput is ``cores * clock`` cycles of work per
    second; DRAM delivers ``effective_bandwidth`` bytes per second, so
    a kernel above ``(cores * clock) / bandwidth`` cycles per byte is
    compute-bound on this device.
    """
    return (gpu.cuda_cores * gpu.clock_hz) / gpu.effective_bandwidth


def analyze_roofline(kernel: Kernel, gpu: GpuSpec) -> RooflinePoint:
    """Place one kernel on the device roofline."""
    loads, shared = kernel_traffic(kernel)
    stores = 1.0
    ops = kernel.op_counts
    cycles = ops.alu * gpu.c_alu + ops.sfu * gpu.c_sfu + shared * gpu.t_shared
    bytes_per_element = (loads + stores) * kernel.output.bytes_per_pixel
    intensity = cycles / bytes_per_element
    balance = device_balance(gpu)
    return RooflinePoint(
        name=kernel.name,
        intensity=intensity,
        balance=balance,
        compute_bound=intensity > balance,
        cycles_per_element=cycles,
        bytes_per_element=bytes_per_element,
    )


def pipeline_roofline(
    graph: KernelGraph, partition: Partition, gpu: GpuSpec
) -> List[RooflinePoint]:
    """Roofline points for every launch of a partitioned pipeline."""
    return [
        analyze_roofline(kernel, gpu)
        for kernel in fuse_partition(graph, partition)
    ]


def render_roofline_report(
    graph: KernelGraph,
    baseline: Partition,
    optimized: Partition,
    gpu: GpuSpec,
) -> str:
    """Before/after roofline table for one pipeline on one device."""
    lines = [
        f"ROOFLINE on {gpu.name} "
        f"(balance point {device_balance(gpu):.2f} cycles/B)",
        "",
        "baseline launches:",
    ]
    lines.extend(
        "  " + point.describe()
        for point in pipeline_roofline(graph, baseline, gpu)
    )
    lines.append("optimized launches:")
    lines.extend(
        "  " + point.describe()
        for point in pipeline_roofline(graph, optimized, gpu)
    )
    return "\n".join(lines)

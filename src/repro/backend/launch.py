"""Simulated pipeline launches.

Translates a fusion partition into the sequence of kernel launches the
generated program would perform, sums their simulated execution times
plus per-launch overhead, and optionally produces a *distribution* of
run times (the paper reports 500 runs per configuration as box plots;
Fig. 6).  Run-to-run variation is modelled as seeded multiplicative
noise with occasional scheduling spikes, which reproduces the tight
boxes with long upper whiskers visible in the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.backend.memsim import KernelCostBreakdown, analyze_kernel
from repro.dsl.kernel import Kernel
from repro.fusion.fuser import fuse_partition
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition
from repro.model.hardware import GpuSpec


@dataclass(frozen=True)
class PipelineTiming:
    """Simulated timing of one pipeline configuration on one device."""

    gpu: str
    kernels: Tuple[KernelCostBreakdown, ...]
    launch_overhead_ms: float

    @property
    def launches(self) -> int:
        return len(self.kernels)

    @property
    def kernel_time_ms(self) -> float:
        return sum(k.time_ms for k in self.kernels)

    @property
    def total_ms(self) -> float:
        return self.kernel_time_ms + self.launch_overhead_ms

    def describe(self) -> str:
        lines = [
            f"{self.gpu}: {self.total_ms:.3f} ms total "
            f"({self.launches} launches, "
            f"{self.launch_overhead_ms:.3f} ms launch overhead)"
        ]
        lines.extend("  " + k.describe() for k in self.kernels)
        return "\n".join(lines)


def simulate_kernels(kernels: List[Kernel], gpu: GpuSpec) -> PipelineTiming:
    """Simulate a sequence of kernel launches."""
    breakdowns = tuple(analyze_kernel(kernel, gpu) for kernel in kernels)
    overhead_ms = len(kernels) * gpu.launch_overhead_us * 1e-3
    return PipelineTiming(gpu.name, breakdowns, overhead_ms)


def simulate_partition(
    graph: KernelGraph, partition: Partition, gpu: GpuSpec
) -> PipelineTiming:
    """Simulate a pipeline under a fusion partition.

    Every partition block becomes one launch: singleton blocks launch
    their original kernel, fused blocks launch the fused kernel (whose
    flattened body carries the recomputation and window growth).
    """
    return simulate_kernels(fuse_partition(graph, partition), gpu)


def simulate_runs(
    timing: PipelineTiming,
    runs: int = 500,
    seed: int = 0,
    jitter: float = 0.008,
    spike_probability: float = 0.03,
    spike_scale: float = 0.06,
) -> np.ndarray:
    """A seeded distribution of ``runs`` execution times (ms).

    Multiplicative log-normal jitter models clock/DVFS variation; rare
    positive spikes model scheduler interference.  The median of the
    returned samples is very close to ``timing.total_ms``, matching how
    the paper derives Table I/II from the median of the measured runs.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    rng = np.random.default_rng(seed)
    noise = rng.lognormal(mean=0.0, sigma=jitter, size=runs)
    spikes = rng.random(runs) < spike_probability
    noise = noise * (1.0 + spikes * rng.uniform(0.5, 3.0, size=runs) * spike_scale)
    return timing.total_ms * noise

"""Trace-level diagnostics: the ``LAZY0xx`` codes.

The pipeline lint (:mod:`repro.analysis.passes`) sees only the lowered
graph, where some recording mistakes are invisible by construction —
every sink image is an external output, so a dead recorded branch
terminates in its *own* sink and never trips ``PIPE005``.  These
checks run on the :class:`~repro.lazy.trace.Trace` itself, before (or
instead of) lowering:

* **LAZY001** (error) — the trace lowers to an empty graph: nothing was
  recorded, i.e. ``evaluate()`` on an unmodified input.
* **LAZY002** (warning) — a recorded kernel reaches none of the images
  the user actually evaluated (dead recording; it still executes on
  every flush, because lowering preserves the whole trace).
* **LAZY003** (warning) — a recorded kernel reads no image: its output
  is a constant plane (usually a scalar that should not have been
  checkpointed).
* **LAZY004** (warning) — the trace's kernels mix foreign scalar
  operand types (e.g. ``np.float32`` next to ``np.float64``): every
  scalar coerces to a ``float64`` constant, so whatever precision the
  distinct types were meant to express is silently erased.

:func:`repro.analysis.lint.lint_app` accepts a ``Trace`` and prepends
these findings to the standard pipeline/fusion/plan passes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.diagnostics import Diagnostic, diag

__all__ = ["lint_trace"]


def lint_trace(
    trace, outputs: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """Run the ``LAZY0xx`` checks over a recorded trace.

    ``outputs`` names the images the caller intends to observe; it
    defaults to what :meth:`~repro.lazy.trace.LazyArray.evaluate` was
    asked for so far, and falls back to every sink image when the trace
    was never flushed.
    """
    if not trace._nodes:
        return [
            diag(
                "LAZY001",
                "trace lowers to an empty graph: no kernel was recorded "
                "(evaluate() on an unmodified input?)",
            )
        ]

    diagnostics: List[Diagnostic] = []
    foreign = sorted(getattr(trace, "_foreign_scalars", ()))
    if len(foreign) > 1:
        diagnostics.append(
            diag(
                "LAZY004",
                f"trace kernels mix foreign scalar operand types "
                f"{foreign}: all of them coerce to float64 constants, "
                "erasing whatever precision the distinct types were "
                "meant to express",
                types=foreign,
            )
        )
    for node in trace._nodes:
        if not node.kernel.accessors:
            diagnostics.append(
                diag(
                    "LAZY003",
                    f"kernel {node.kernel.name!r} reads no image; its "
                    f"output {node.image.name!r} is a constant plane",
                    kernel=node.kernel.name,
                )
            )

    graph = trace.graph()
    requested = set(outputs) if outputs is not None else set(trace._requested)
    if not requested:
        requested = set(graph.external_outputs)

    # Backward reachability from the kernels producing requested images.
    live = {
        producer
        for name in requested
        if (producer := graph.producer_of(name)) is not None
    }
    frontier = list(live)
    while frontier:
        name = frontier.pop()
        for pred in graph.predecessors(name):
            if pred not in live:
                live.add(pred)
                frontier.append(pred)
    for node in trace._nodes:
        if node.kernel.name not in live:
            diagnostics.append(
                diag(
                    "LAZY002",
                    f"kernel {node.kernel.name!r} reaches none of the "
                    f"evaluated outputs {sorted(requested)}; it was "
                    "recorded but its result is never observed (every "
                    "flush still executes it)",
                    kernel=node.kernel.name,
                )
            )
    return diagnostics

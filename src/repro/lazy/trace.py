"""The lazy frontend: record NumPy-like array expressions, fuse at flush.

The DSL in :mod:`repro.dsl` asks the programmer to spell out kernels,
images, and accessors explicitly — faithful to Hipacc, but verbose for
exploratory work.  This module adds the array-programming surface the
paper's introduction gestures at ("write loops, get fused kernels"):

>>> from repro import lazy
>>> t = lazy.Trace("sobel", 64, 48)
>>> src = t.source("input")
>>> ix = lazy.convolve(src, SOBEL_X).checkpoint("dx", "Ix")
>>> iy = lazy.convolve(src, SOBEL_Y).checkpoint("dy", "Iy")
>>> mag = lazy.sqrt(ix * ix + iy * iy).checkpoint("mag", "magnitude")
>>> out = mag.evaluate({"input": frame})

Nothing executes while recording: every operator composes an IR
expression (:mod:`repro.ir.expr`) over reads of *materialized* images.
:meth:`LazyArray.checkpoint` (or any operation that needs a
neighbourhood of a computed value, e.g. :meth:`LazyArray.shift`) cuts
the expression into a kernel; :meth:`LazyArray.evaluate` lowers the
recorded trace to an ordinary :class:`~repro.dsl.pipeline.Pipeline` /
:class:`~repro.graph.dag.KernelGraph` and feeds it through
:func:`repro.api.run` — the same fuse → plan → (tape | native) path
every hand-built pipeline takes.  A lazy trace that mirrors a
hand-built pipeline therefore lowers to a **bit-identical** graph with
the **same structural signature** (the differential suite in
``tests/lazy`` pins this for all six paper apps).

Common subexpressions are shared at two levels: IR nodes are frozen
dataclasses, so repeated subtrees sign identically under
:func:`repro.ir.signature.expr_signature` by construction; and the
trace hash-conses materializations, so cutting the same expression
twice yields **one** kernel, not two.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dsl.boundary import BoundaryMode, BoundarySpec
from repro.dsl.image import Image
from repro.dsl.kernel import Accessor, Kernel
from repro.dsl.pipeline import Pipeline
from repro.graph.dag import KernelGraph
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    InputAt,
    Param,
    Select,
    UnOp,
)
from repro.ir.signature import expr_signature

__all__ = ["LazyArray", "LazyError", "Trace"]


class LazyError(ValueError):
    """Raised for malformed lazy traces (see the ``LAZY0xx`` codes)."""


def _first_read_order(expr: Expr) -> Tuple[str, ...]:
    """Image names in first-read order (deterministic left-to-right walk).

    This is the accessor order :meth:`Trace._materialize` uses by
    default — it matches ``Kernel.from_function(inputs=...)`` whenever
    the hand-built kernel's body reads its inputs in declaration order
    (true for most paper kernels; ``checkpoint(inputs=...)`` overrides
    the rest).
    """
    seen: List[str] = []

    def walk(node: Expr) -> None:
        if isinstance(node, InputAt):
            if node.image not in seen:
                seen.append(node.image)
        elif isinstance(node, (BinOp, Cmp)):
            walk(node.lhs)
            walk(node.rhs)
        elif isinstance(node, (UnOp, Cast)):
            walk(node.operand)
        elif isinstance(node, Select):
            walk(node.cond)
            walk(node.if_true)
            walk(node.if_false)
        elif isinstance(node, Call):
            for arg in node.args:
                walk(arg)
        # Const / Param read nothing.

    walk(expr)
    return tuple(seen)


class _ReadAccessor:
    """Duck-typed stand-in for :class:`repro.dsl.kernel.Accessor`.

    The :mod:`repro.dsl.functional` window builders only ever *call*
    their accessor (``acc(dx, dy) -> InputAt``), so a shim anchored at a
    base offset lets every existing window helper (``convolve``,
    ``window_reduce``, ...) record into a lazy trace unchanged.
    """

    __slots__ = ("image", "dx", "dy")

    def __init__(self, image: str, dx: int = 0, dy: int = 0):
        self.image = image
        self.dx = dx
        self.dy = dy

    def __call__(self, dx: int = 0, dy: int = 0) -> InputAt:
        return InputAt(self.image, self.dx + dx, self.dy + dy)

    at = __call__


class _Node:
    """One materialized kernel of a trace (recording order preserved)."""

    __slots__ = ("kernel", "explicit")

    def __init__(self, kernel: Kernel, explicit: bool):
        self.kernel = kernel
        self.explicit = explicit

    @property
    def image(self) -> Image:
        return self.kernel.output


Operand = Union["LazyArray", Expr, int, float]


class Trace:
    """A recording session: one geometry, one growing kernel list.

    All arrays of a trace share one iteration space (``width`` x
    ``height`` x ``channels``) — the paper's fusion legality demands
    header-compatible spaces anyway, and a uniform geometry is what
    makes the lowered plans shape-polymorphic under the native engine.
    """

    def __init__(
        self,
        name: str,
        width: int,
        height: int,
        channels: int = 1,
        bytes_per_pixel: int = 4,
    ):
        self.name = name
        self.width = width
        self.height = height
        self.channels = channels
        self.bytes_per_pixel = bytes_per_pixel
        self._images: Dict[str, Image] = {}
        self._boundaries: Dict[str, BoundarySpec] = {}
        self._domains: Dict[str, Tuple[float, float]] = {}
        self._foreign_scalars: set = set()
        self._sources: Dict[str, Optional[np.ndarray]] = {}
        self._nodes: List[_Node] = []
        self._node_by_image: Dict[str, _Node] = {}
        self._cse: Dict[tuple, _Node] = {}
        self._kernel_names: set = set()
        self._requested: List[str] = []
        self._auto = 0

    # -- recording ---------------------------------------------------------

    def source(
        self,
        name: str,
        array: Optional[np.ndarray] = None,
        boundary: BoundarySpec | BoundaryMode | None = None,
        domain: Optional[Tuple[float, float]] = None,
    ) -> "LazyArray":
        """Declare a pipeline input and return its lazy handle.

        ``array`` (optional) pre-binds the pixel data so
        :meth:`LazyArray.evaluate` needs no ``inputs`` argument;
        ``boundary`` fixes the border mode of every read of this image
        (default clamp, like the explicit DSL).  ``domain`` declares the
        input's value range as an ``(lo, hi)`` pair — it flows to
        :meth:`~repro.dsl.pipeline.Pipeline.declare_domain` on lowering
        and seeds the value-range analysis (``VAL0xx``).
        """
        if name in self._images:
            raise LazyError(f"image name {name!r} already used in this trace")
        image = Image.create(
            name, self.width, self.height, self.channels, self.bytes_per_pixel
        )
        self._images[name] = image
        if boundary is not None:
            if isinstance(boundary, BoundaryMode):
                boundary = BoundarySpec(boundary)
            self._boundaries[name] = boundary
        if domain is not None:
            lo, hi = domain
            self._domains[name] = (float(lo), float(hi))
        self._sources[name] = None if array is None else np.asarray(array)
        return LazyArray(self, InputAt(name, 0, 0))

    def const(self, value: float) -> "LazyArray":
        """A constant-valued lazy array (a :class:`Const` leaf)."""
        return LazyArray(self, Const(value))

    def param(self, name: str) -> "LazyArray":
        """A runtime scalar parameter (bound through ``params`` at run)."""
        return LazyArray(self, Param(name))

    # -- materialization ---------------------------------------------------

    def _boundary_of(self, image_name: str) -> BoundarySpec:
        return self._boundaries.get(image_name, BoundarySpec())

    def _fresh_names(self) -> Tuple[str, str]:
        while True:
            kernel_name = f"lazy{self._auto}"
            image_name = f"tmp{self._auto}"
            self._auto += 1
            if (
                kernel_name not in self._kernel_names
                and image_name not in self._images
            ):
                return kernel_name, image_name

    def _materialize(
        self,
        array: "LazyArray",
        kernel_name: Optional[str] = None,
        image_name: Optional[str] = None,
        inputs: Optional[Sequence[Union["LazyArray", str]]] = None,
    ) -> _Node:
        """Cut ``array``'s expression into a kernel (hash-consed).

        Without explicit names (the auto path taken by ``shift`` /
        ``evaluate`` / window helpers on computed values) an existing
        node with the same body and accessor order is reused — the
        kernel-level half of common-subexpression sharing.  Explicit
        ``checkpoint`` names always create the named kernel (re-running
        the same checkpoint is idempotent).
        """
        expr = array.expr
        if isinstance(expr, InputAt) and expr.dx == 0 and expr.dy == 0:
            node = self._node_by_image.get(expr.image)
            if node is not None and kernel_name is None:
                return node
            if kernel_name is None:
                # A bare, unmodified pipeline input: there is no kernel
                # to lower, and "run the identity" is almost always a
                # recording bug.  ``repro lint`` reports this as LAZY001.
                raise LazyError(
                    f"[LAZY001] evaluate() on the unmodified input "
                    f"{expr.image!r}: the trace records no computation "
                    "over it (checkpoint() a derived value, or read the "
                    "input array directly)"
                )

        if inputs is not None:
            order = tuple(
                entry if isinstance(entry, str) else entry._image_name()
                for entry in inputs
            )
            if sorted(order) != sorted(_first_read_order(expr)):
                raise LazyError(
                    f"checkpoint inputs {list(order)} must cover exactly "
                    f"the images the expression reads "
                    f"({sorted(_first_read_order(expr))})"
                )
        else:
            order = _first_read_order(expr)

        key = (expr_signature(expr), order)
        node = self._cse.get(key)
        if node is not None:
            if kernel_name is None or node.kernel.name == kernel_name:
                return node
        explicit = kernel_name is not None
        if kernel_name is None:
            kernel_name, image_name = self._fresh_names()
        elif image_name is None:
            image_name = kernel_name + "_out"

        if kernel_name in self._kernel_names:
            raise LazyError(
                f"kernel name {kernel_name!r} already used in this trace"
            )
        if image_name in self._images:
            raise LazyError(
                f"image name {image_name!r} already used in this trace"
            )
        accessors = [
            Accessor(self._images[name], self._boundary_of(name))
            for name in order
        ]
        output = Image.create(
            image_name,
            self.width,
            self.height,
            self.channels,
            self.bytes_per_pixel,
        )
        kernel = Kernel(kernel_name, accessors, output, expr)
        node = _Node(kernel, explicit=explicit)
        self._nodes.append(node)
        self._images[image_name] = output
        self._node_by_image[image_name] = node
        self._kernel_names.add(kernel_name)
        if key not in self._cse:
            self._cse[key] = node
        return node

    # -- lowering / flush --------------------------------------------------

    def lower(self, outputs: Sequence[str] = ()) -> Pipeline:
        """The recorded trace as an ordinary :class:`Pipeline`.

        Kernels appear in materialization order — the same order a
        hand-written builder ``add``s them — so a transliterated app
        lowers to a graph with an identical structural signature.
        ``outputs`` marks non-sink images externally observed.
        """
        if not self._nodes:
            raise LazyError(
                "[LAZY001] trace lowers to an empty graph: no kernel was "
                "recorded (evaluate() on an unmodified input?)"
            )
        pipe = Pipeline(self.name)
        for node in self._nodes:
            pipe.add(node.kernel)
        for name, (lo, hi) in self._domains.items():
            pipe.declare_domain(name, lo, hi)
        for name in outputs:
            if self._node_by_image.get(name) is None:
                raise LazyError(
                    f"requested output {name!r} is not a materialized image"
                )
            pipe.mark_output(name)
        return pipe

    def graph(self, outputs: Sequence[str] = ()) -> KernelGraph:
        """The lowered dependence DAG (see :meth:`lower`)."""
        return self.lower(outputs).build()

    def checkpoint_provenance(self) -> Dict[str, str]:
        """Synthesized kernel name -> nearest downstream ``checkpoint``.

        Auto-materialized kernels carry names no user ever wrote
        (``lazy0``, ``lazy1``, ...); a diagnostic located there is
        unactionable.  This maps each such kernel to the closest
        explicitly named checkpoint that consumes it (transitively), so
        lint output can say *which user-visible value* the synthesized
        kernel feeds.  Kernels reaching no checkpoint stay unmapped.
        """
        producer = {node.image.name: node for node in self._nodes}
        provenance: Dict[str, str] = {}
        for node in self._nodes:
            if not node.explicit:
                continue
            stack: List[_Node] = [node]
            while stack:
                current = stack.pop()
                for accessor in current.kernel.accessors:
                    upstream = producer.get(accessor.image.name)
                    if (
                        upstream is None
                        or upstream.explicit
                        or upstream.kernel.name in provenance
                    ):
                        continue
                    provenance[upstream.kernel.name] = node.kernel.name
                    stack.append(upstream)
        return provenance

    def run(
        self,
        inputs: Optional[Dict[str, np.ndarray]] = None,
        params: Optional[Dict[str, float]] = None,
        options=None,
        outputs: Sequence[str] = (),
    ) -> Dict[str, np.ndarray]:
        """Flush: lower and execute through :func:`repro.api.run`.

        Bound source arrays merge with ``inputs`` (explicit ``inputs``
        win).  Returns the surviving-image environment, exactly as
        :func:`repro.api.run` would for the equivalent hand-built graph.
        """
        from repro.api import run as api_run

        graph = self.graph(outputs)
        merged: Dict[str, np.ndarray] = {
            name: array
            for name, array in self._sources.items()
            if array is not None
        }
        merged.update(inputs or {})
        missing = [
            name for name in graph.pipeline_inputs() if name not in merged
        ]
        if missing:
            raise LazyError(
                f"unbound pipeline inputs {missing}; bind them via "
                "source(name, array) or pass them to evaluate()/run()"
            )
        for name in outputs:
            if name not in self._requested:
                self._requested.append(name)
        return api_run(graph, merged, params, options=options)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name!r}, {self.width}x{self.height}"
            f"x{self.channels}, {len(self._nodes)} kernels)"
        )


class LazyArray:
    """A deferred 2D array: an IR expression over materialized images.

    Arithmetic (``+ - * /``), comparisons, ``abs``/negation, and the
    module-level math helpers all *record*; nothing touches pixels until
    :meth:`evaluate`.  Scalars and raw IR expressions mix freely as
    operands.
    """

    __slots__ = ("trace", "expr")

    #: Opt out of NumPy's binary-operator protocol: ``ndarray * lazy``
    #: must return ``NotImplemented`` from the ndarray side so Python
    #: falls through to :meth:`__rmul__` here (which then reports the
    #: foreign operand precisely) instead of broadcasting the lazy
    #: array into an object-dtype ndarray element by element.
    __array_ufunc__ = None

    def __init__(self, trace: Trace, expr: Expr):
        self.trace = trace
        self.expr = expr

    # -- internals ---------------------------------------------------------

    def _operand(self, value: Operand) -> Expr:
        if isinstance(value, LazyArray):
            if value.trace is not self.trace:
                raise LazyError(
                    "cannot combine arrays from different traces"
                )
            return value.expr
        if isinstance(value, Expr):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            # Subclasses of the Python scalar types (np.float64 chief
            # among them) coerce fine but record their type, so the
            # LAZY004 lint can flag a trace mixing scalar types whose
            # precision intent the float64 Const silently erases.
            if type(value) is not int and type(value) is not float:
                self.trace._foreign_scalars.add(type(value).__name__)
            return Const(float(value))
        if isinstance(value, np.generic) and np.ndim(value) == 0:
            if np.issubdtype(value.dtype, np.number):
                self.trace._foreign_scalars.add(type(value).__name__)
                return Const(float(value))
        raise TypeError(
            f"cannot use {type(value).__name__} ({value!r}) as a lazy "
            "operand: lazy arrays combine with Python scalars, NumPy "
            "scalars, IR expressions, and arrays of the same trace. "
            "Note that for scalar-on-the-left forms like `k * a`, "
            "Python tries `k.__mul__(a)` first and only falls back to "
            "`a.__rmul__(k)` when the left side returns NotImplemented "
            "— a sequence or array on the left may consume the lazy "
            "array instead; bind pixel data through "
            "Trace.source(name, array) and read it via shift()/[]."
        )

    def _wrap(self, expr: Expr) -> "LazyArray":
        return LazyArray(self.trace, expr)

    def _wrap_binop(self, op: str, other: Operand) -> "LazyArray":
        return self._wrap(BinOp(op, self.expr, self._operand(other)))

    def _pure_read(self) -> Optional[InputAt]:
        return self.expr if isinstance(self.expr, InputAt) else None

    def _image_name(self) -> str:
        read = self._pure_read()
        if read is None or read.dx or read.dy:
            raise LazyError(
                "expected an unshifted image handle (a source or a "
                "checkpointed value)"
            )
        return read.image

    def _as_accessor(self) -> _ReadAccessor:
        """A window accessor over this value (for the functional helpers).

        A pure image read anchors the accessor at its offset; a computed
        expression is materialized first — reading a *neighbourhood* of
        a derived value forces a kernel boundary, which is exactly what
        preserves the two-stage border semantics of fused local
        operators (Fig. 4).
        """
        read = self._pure_read()
        if read is not None:
            return _ReadAccessor(read.image, read.dx, read.dy)
        node = self.trace._materialize(self)
        return _ReadAccessor(node.image.name, 0, 0)

    # -- stencil access ----------------------------------------------------

    def shift(self, dx: int = 0, dy: int = 0) -> "LazyArray":
        """The array translated by ``(dx, dy)`` pixels.

        ``shift(1, 0)`` reads the right neighbour, like ``a[:, 1:]`` on
        a NumPy array (boundary handling per the image's spec).  Shifts
        of pure reads compose offsets; shifting a computed value
        materializes it first (see :meth:`_as_accessor`).
        """
        if not isinstance(dx, int) or not isinstance(dy, int):
            raise LazyError("shift offsets must be integers")
        if dx == 0 and dy == 0:
            return self
        read = self._pure_read()
        if read is not None:
            return self._wrap(InputAt(read.image, read.dx + dx, read.dy + dy))
        node = self.trace._materialize(self)
        return self._wrap(InputAt(node.image.name, dx, dy))

    def __getitem__(self, index) -> "LazyArray":
        """NumPy-flavoured stencil slicing, row-major: ``a[y, x]``.

        ``a[1:, 2:]`` is ``shift(dx=2, dy=1)`` (down-right neighbour),
        ``a[:-1]`` is ``shift(dy=-1)``, and an integer pair ``a[1, -2]``
        reads the single offset ``(dx=-2, dy=1)``.  Only shift-like
        slices (no steps, no window narrowing on both ends) translate —
        anything else raises, because a lazy array has no materialized
        extent to crop.
        """
        if not isinstance(index, tuple):
            index = (index, slice(None))
        if len(index) != 2:
            raise LazyError("lazy arrays are 2D: index with [y, x]")

        def delta(axis_index, axis: str) -> int:
            if isinstance(axis_index, int):
                return axis_index
            if isinstance(axis_index, slice):
                if axis_index.step is not None:
                    raise LazyError(
                        f"{axis}-slice with a step does not translate to "
                        "a shift"
                    )
                start, stop = axis_index.start, axis_index.stop
                if start is None and stop is None:
                    return 0
                if stop is None and start is not None:
                    return int(start)
                if start is None and stop is not None and stop < 0:
                    return int(stop)
                raise LazyError(
                    f"{axis}-slice {axis_index!r} narrows the window; "
                    "only whole-image shifts (a[k:], a[:-k]) are lazy"
                )
            raise LazyError(f"unsupported {axis} index {axis_index!r}")

        dy = delta(index[0], "y")
        dx = delta(index[1], "x")
        return self.shift(dx, dy)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: Operand) -> "LazyArray":
        return self._wrap(BinOp("add", self.expr, self._operand(other)))

    def __radd__(self, other: Operand) -> "LazyArray":
        return self._wrap(BinOp("add", self._operand(other), self.expr))

    def __sub__(self, other: Operand) -> "LazyArray":
        return self._wrap(BinOp("sub", self.expr, self._operand(other)))

    def __rsub__(self, other: Operand) -> "LazyArray":
        return self._wrap(BinOp("sub", self._operand(other), self.expr))

    def __mul__(self, other: Operand) -> "LazyArray":
        return self._wrap(BinOp("mul", self.expr, self._operand(other)))

    def __rmul__(self, other: Operand) -> "LazyArray":
        return self._wrap(BinOp("mul", self._operand(other), self.expr))

    def __truediv__(self, other: Operand) -> "LazyArray":
        return self._wrap(BinOp("div", self.expr, self._operand(other)))

    def __rtruediv__(self, other: Operand) -> "LazyArray":
        return self._wrap(BinOp("div", self._operand(other), self.expr))

    def __mod__(self, other: Operand) -> "LazyArray":
        return self._wrap(BinOp("mod", self.expr, self._operand(other)))

    def __neg__(self) -> "LazyArray":
        return self._wrap(UnOp("neg", self.expr))

    def __abs__(self) -> "LazyArray":
        return self._wrap(UnOp("abs", self.expr))

    # -- comparisons (record Cmp nodes, 1.0/0.0 at run time) ---------------

    def __lt__(self, other: Operand) -> "LazyArray":
        return self._wrap(Cmp("lt", self.expr, self._operand(other)))

    def __le__(self, other: Operand) -> "LazyArray":
        return self._wrap(Cmp("le", self.expr, self._operand(other)))

    def __gt__(self, other: Operand) -> "LazyArray":
        return self._wrap(Cmp("gt", self.expr, self._operand(other)))

    def __ge__(self, other: Operand) -> "LazyArray":
        return self._wrap(Cmp("ge", self.expr, self._operand(other)))

    def eq(self, other: Operand) -> "LazyArray":
        """Elementwise equality (``__eq__`` stays Python identity)."""
        return self._wrap(Cmp("eq", self.expr, self._operand(other)))

    def ne(self, other: Operand) -> "LazyArray":
        """Elementwise inequality."""
        return self._wrap(Cmp("ne", self.expr, self._operand(other)))

    # -- flushing ----------------------------------------------------------

    def checkpoint(
        self,
        kernel_name: str,
        image_name: Optional[str] = None,
        inputs: Optional[Sequence[Union["LazyArray", str]]] = None,
    ) -> "LazyArray":
        """Materialize this value as the named kernel/image boundary.

        Returns a pure handle on the produced image; downstream
        recording reads it like a source.  ``inputs`` overrides the
        accessor order (default: first-read order of the body) — needed
        to transliterate hand-built kernels whose declared input order
        differs from the body's read order.
        """
        node = self.trace._materialize(self, kernel_name, image_name, inputs)
        return self._wrap(InputAt(node.image.name, 0, 0))

    def evaluate(
        self,
        inputs: Optional[Dict[str, np.ndarray]] = None,
        params: Optional[Dict[str, float]] = None,
        options=None,
    ) -> np.ndarray:
        """Flush the trace and return this value's pixels.

        Materializes the expression (if not already a checkpoint),
        lowers the whole recorded trace, and executes it via
        :func:`repro.api.run` under ``options``
        (:class:`repro.api.ExecutionOptions` — engine, fusion version,
        serving runtime, validation level all apply unchanged).
        """
        node = self.trace._materialize(self)
        env = self.trace.run(
            inputs, params, options, outputs=(node.image.name,)
        )
        return env[node.image.name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyArray({self.trace.name!r}, {self.expr!r})"

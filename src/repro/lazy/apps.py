"""The six paper applications, recorded through the lazy frontend.

Each builder transliterates its hand-built counterpart in
:mod:`repro.apps` into array-style recording: same kernel names, same
image names, same bodies — so each trace lowers to a graph whose
:meth:`~repro.graph.dag.KernelGraph.structural_signature` **equals**
the hand-built pipeline's, and every engine (recursive / tape / native)
produces bit-identical pixels.  The differential suite in
``tests/lazy/test_lazy_differential.py`` pins both properties.

The transliterations deliberately exercise every recording surface:
window helpers lifted from :mod:`repro.dsl.functional` (Harris, Sobel,
Unsharp convolutions), inline arithmetic with scalar broadcasting
(response kernels), ``shift`` as the stencil accessor (Night's à-trous
taps), runtime :class:`~repro.ir.expr.Param` scalars (Enhance's gamma),
multi-channel traces (Night), ``checkpoint(inputs=...)`` accessor-order
overrides (Unsharp's ``amp``), and Expr-level ``window_reduce``
callables (Enhance's geometric mean).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.common import GAUSS3, SOBEL_X, SOBEL_Y, atrous_taps
from repro.apps.harris import HARRIS_K, NORM
from repro.apps.night import BILATERAL_K, BLUESHIFT_CURVE, SCOTO_CURVE
from repro.apps.unsharp import LAMBDA
from repro.dsl.mask import Domain
from repro.ir import ops
from repro.ir.expr import Const, Param
from repro.lazy import functional as lz
from repro.lazy.trace import LazyArray, Trace

__all__ = [
    "LAZY_BUILDERS",
    "lazy_trace",
    "build_enhance_trace",
    "build_harris_trace",
    "build_night_trace",
    "build_shitomasi_trace",
    "build_sobel_trace",
    "build_unsharp_trace",
]


def build_sobel_trace(width: int = 2048, height: int = 2048) -> Trace:
    """Sobel gradient magnitude (3 kernels)."""
    t = Trace("sobel", width, height)
    src = t.source("input", domain=(0.0, 255.0))
    ix = lz.convolve(src, SOBEL_X).checkpoint("dx", "Ix")
    iy = lz.convolve(src, SOBEL_Y).checkpoint("dy", "Iy")
    lz.sqrt(ix * ix + iy * iy).checkpoint("mag", "magnitude")
    return t


def _structure_tensor(t: Trace, src: LazyArray):
    """The shared Harris/Shi-Tomasi front: derivatives, squared
    products, Gaussian-smoothed Hermitian matrix entries."""
    ix = lz.convolve(src, SOBEL_X).checkpoint("dx", "Ix")
    iy = lz.convolve(src, SOBEL_Y).checkpoint("dy", "Iy")
    sxx = (ix * ix * Const(NORM)).checkpoint("sx", "Sxx")
    syy = (iy * iy * Const(NORM)).checkpoint("sy", "Syy")
    sxy = (ix * iy * Const(NORM)).checkpoint("sxy", "Sxy")
    gxx = lz.convolve(sxx, GAUSS3).checkpoint("gx", "Gxx")
    gyy = lz.convolve(syy, GAUSS3).checkpoint("gy", "Gyy")
    gxy = lz.convolve(sxy, GAUSS3).checkpoint("gxy", "Gxy")
    return gxx, gyy, gxy


def build_harris_trace(width: int = 2048, height: int = 2048) -> Trace:
    """Harris corners (9 kernels, the Fig. 3 running example)."""
    t = Trace("harris", width, height)
    src = t.source("input", domain=(0.0, 255.0))
    gxx, gyy, gxy = _structure_tensor(t, src)
    det = gxx * gyy - gxy * gxy
    trace = gxx + gyy
    # Scalar-left products (``k * a``) record through ``__rmul__`` as
    # ``Const(k) * a`` — identical IR to the hand-built body.
    (det - HARRIS_K * trace * trace).checkpoint("hc", "corners")
    return t


def build_shitomasi_trace(width: int = 2048, height: int = 2048) -> Trace:
    """Shi-Tomasi minimum-eigenvalue response (9 kernels)."""
    t = Trace("shitomasi", width, height)
    src = t.source("input", domain=(0.0, 255.0))
    gxx, gyy, gxy = _structure_tensor(t, src)
    half_trace = (gxx + gyy) * Const(0.5)
    half_diff = (gxx - gyy) * Const(0.5)
    (half_trace - lz.sqrt(half_diff * half_diff + gxy * gxy)).checkpoint(
        "st", "response"
    )
    return t


def build_unsharp_trace(width: int = 2048, height: int = 2048) -> Trace:
    """Cubic unsharp masking (4 kernels, the Fig. 2b diamond).

    The ``amp`` kernel's hand-built accessor order (``input`` first)
    differs from its body's read order (``high`` first) — the
    ``inputs=`` override keeps the lowered signature identical.
    """
    from repro.apps.unsharp import NORM as UNSHARP_NORM

    t = Trace("unsharp", width, height)
    src = t.source("input", domain=(0.0, 255.0))
    blurred = lz.convolve(src, GAUSS3).checkpoint("blur", "blurred")
    high = (src - blurred).checkpoint("high", "high")
    amplified = (high * src * src * Const(UNSHARP_NORM)).checkpoint(
        "amp", "amplified", inputs=[src, high]
    )
    (src + LAMBDA * amplified).checkpoint("sharpen", "sharpened")
    return t


def build_enhance_trace(width: int = 2048, height: int = 2048) -> Trace:
    """Endoscopy enhancement: geometric-mean denoise, gamma, stretch."""
    t = Trace("enhancement", width, height)
    src = t.source("input", domain=(0.0, 255.0))
    domain = Domain(3, 3)
    log_sum = lz.window_reduce(
        src,
        domain,
        lambda a, b: a + b,
        # Shift by one to keep log() well-defined for zero pixels.
        lambda v: ops.log(v + Const(1.0)),
    )
    denoised = (
        lz.exp(log_sum * Const(1.0 / domain.size)) - Const(1.0)
    ).checkpoint("gmean", "denoised")
    corrected = (
        lz.pow_(denoised * Const(1.0 / 255.0), Param("gamma")) * Const(255.0)
    ).checkpoint("gamma", "corrected")
    lz.clamp(
        (corrected - Const(16.0)) * Const(255.0 / (235.0 - 16.0)),
        Const(0.0),
        Const(255.0),
    ).checkpoint("stretch", "enhanced")
    return t


def _atrous_bilateral(array: LazyArray, level: int) -> LazyArray:
    """One à-trous bilateral pass, recorded through ``shift``.

    Structurally identical IR to :func:`repro.apps.night.atrous_bilateral`:
    the accessor's ``acc(dx, dy)`` reads become ``array.shift(dx, dy)``.
    """
    center = array
    value_sum = center
    weight_sum = array.trace.const(1.0)
    for dx, dy in atrous_taps(level):
        if dx == 0 and dy == 0:
            continue
        value = array.shift(dx, dy)
        difference = value - center
        weight = 1.0 / (1.0 + BILATERAL_K * difference * difference)
        value_sum = value_sum + weight * value
        weight_sum = weight_sum + weight
    return value_sum / weight_sum


def _polynomial(x: LazyArray, coefficients) -> LazyArray:
    """Horner evaluation over a lazy array (mirrors
    :func:`repro.apps.common.polynomial` node for node)."""
    result = x._wrap(Const(float(coefficients[-1])))
    for coefficient in reversed(coefficients[:-1]):
        result = float(coefficient) + x * result
    return result


def build_night_trace(width: int = 1920, height: int = 1200) -> Trace:
    """The Night filter (3 kernels over RGB)."""
    t = Trace("night", width, height, channels=3)
    src = t.source("input", domain=(0.0, 255.0))
    smooth0 = _atrous_bilateral(src, 0).checkpoint("atrous0", "smooth0")
    smooth1 = _atrous_bilateral(smooth0, 1).checkpoint("atrous1", "smooth1")
    x = smooth1 * Const(1.0 / 255.0)
    response = _polynomial(x, SCOTO_CURVE)
    blueshift = _polynomial(x, BLUESHIFT_CURVE)
    x_sq = x * x
    mesopic = x_sq / (x_sq + Const(0.01))
    mixed = mesopic * response + (1.0 - mesopic) * blueshift
    (mixed * Const(255.0)).checkpoint("scoto", "toned")
    return t


#: Lazy builders keyed like :data:`repro.apps.APPLICATIONS`.
LAZY_BUILDERS: Dict[str, Callable[[int, int], Trace]] = {
    "Harris": build_harris_trace,
    "Sobel": build_sobel_trace,
    "Unsharp": build_unsharp_trace,
    "ShiTomasi": build_shitomasi_trace,
    "Enhance": build_enhance_trace,
    "Night": build_night_trace,
}


def lazy_trace(name: str, width: int, height: int) -> Trace:
    """Build the lazy-recorded variant of a registered paper app."""
    try:
        builder = LAZY_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(LAZY_BUILDERS))
        raise KeyError(f"no lazy builder for {name!r}; known: {known}")
    return builder(width, height)

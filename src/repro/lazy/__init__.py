"""repro.lazy: a record-and-fuse array frontend.

Public surface of the lazy subsystem:

* :class:`Trace` / :class:`LazyArray` — the recorder and the deferred
  array handle (:mod:`repro.lazy.trace`),
* pointwise and window operations (:mod:`repro.lazy.functional`) —
  ``sqrt``/``exp``/``where``/``clamp``/... plus the
  :mod:`repro.dsl.functional` window builders lifted onto lazy arrays,
* :func:`lint_trace` — the ``LAZY0xx`` trace diagnostics
  (:mod:`repro.lazy.lint`),
* the six paper applications transliterated into lazy recording
  (:mod:`repro.lazy.apps`) — the differential anchor proving the
  frontend lowers to the same graphs as the explicit DSL.

See ``docs/lazy.md`` for the full tour.
"""

from repro.lazy.functional import (
    absolute,
    atan2,
    clamp,
    convolve,
    convolve_separable_x,
    convolve_separable_y,
    cos,
    exp,
    geometric_mean,
    lift_window,
    log,
    maximum,
    minimum,
    pow_,
    rsqrt,
    sin,
    sqrt,
    tan,
    tanh,
    where,
    window_max,
    window_mean,
    window_median3x3,
    window_min,
    window_reduce,
    window_sum,
)
from repro.lazy.lint import lint_trace
from repro.lazy.trace import LazyArray, LazyError, Trace

__all__ = [
    "LazyArray",
    "LazyError",
    "Trace",
    "absolute",
    "atan2",
    "clamp",
    "convolve",
    "convolve_separable_x",
    "convolve_separable_y",
    "cos",
    "exp",
    "geometric_mean",
    "lift_window",
    "lint_trace",
    "log",
    "maximum",
    "minimum",
    "pow_",
    "rsqrt",
    "sin",
    "sqrt",
    "tan",
    "tanh",
    "where",
    "window_max",
    "window_mean",
    "window_median3x3",
    "window_min",
    "window_reduce",
    "window_sum",
]

"""Lazy math and window operations.

Two families:

* **Pointwise helpers** (``sqrt``, ``exp``, ``where``, ``minimum``,
  ``clamp``, ...) — mirrors of :mod:`repro.ir.ops` that compose IR
  inline over :class:`~repro.lazy.trace.LazyArray` operands; nothing
  materializes.
* **Window helpers** (``convolve``, ``window_reduce``, ``window_sum``,
  ``geometric_mean``, ``window_median3x3``, ...) — the *existing*
  builders of :mod:`repro.dsl.functional` lifted onto lazy arrays
  through the accessor shim: a pure image read records directly; a
  computed value materializes into a kernel first, so reading a
  neighbourhood of a derived value keeps the two-stage border
  semantics of fused local operators.

``lift_window`` is the generic adapter: any function of
``(accessor, *args) -> Expr`` — including app-specific builders like
the Night filter's ``atrous_bilateral`` — applies to a lazy array
unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dsl import functional as _functional
from repro.dsl.mask import Domain, Mask
from repro.ir.expr import Call, Expr, Select
from repro.lazy.trace import LazyArray, Operand

__all__ = [
    "absolute",
    "atan2",
    "clamp",
    "convolve",
    "convolve_separable_x",
    "convolve_separable_y",
    "cos",
    "exp",
    "geometric_mean",
    "lift_window",
    "log",
    "maximum",
    "minimum",
    "pow_",
    "rsqrt",
    "sin",
    "sqrt",
    "tan",
    "tanh",
    "where",
    "window_max",
    "window_mean",
    "window_median3x3",
    "window_min",
    "window_reduce",
    "window_sum",
]


# -- pointwise -------------------------------------------------------------


def _unary_sfu(fn: str):
    def build(array: LazyArray) -> LazyArray:
        return array._wrap(Call(fn, (array.expr,)))

    build.__name__ = fn
    build.__doc__ = f"Lazy ``{fn}(x)`` (SFU class)."
    return build


exp = _unary_sfu("exp")
log = _unary_sfu("log")
sqrt = _unary_sfu("sqrt")
rsqrt = _unary_sfu("rsqrt")
sin = _unary_sfu("sin")
cos = _unary_sfu("cos")
tan = _unary_sfu("tan")
tanh = _unary_sfu("tanh")


def pow_(base: LazyArray, exponent: Operand) -> LazyArray:
    """Lazy ``base ** exponent``; the exponent may be a scalar, another
    lazy array, or a raw IR node (e.g. a :class:`~repro.ir.expr.Param`)."""
    return base._wrap(Call("pow", (base.expr, base._operand(exponent))))


def atan2(y: LazyArray, x: Operand) -> LazyArray:
    """Lazy two-argument arctangent."""
    return y._wrap(Call("atan2", (y.expr, y._operand(x))))


def absolute(array: LazyArray) -> LazyArray:
    """Lazy absolute value (also available as ``abs(array)``)."""
    return abs(array)


def minimum(a: LazyArray, b: Operand) -> LazyArray:
    """Lazy elementwise minimum."""
    return a._wrap_binop("min", b)


def maximum(a: LazyArray, b: Operand) -> LazyArray:
    """Lazy elementwise maximum."""
    return a._wrap_binop("max", b)


def clamp(x: LazyArray, lo: Operand, hi: Operand) -> LazyArray:
    """Lazy ``min(max(x, lo), hi)`` — same lowering as :func:`repro.ir.ops.clamp`."""
    return minimum(maximum(x, lo), hi)


def where(cond: LazyArray, if_true: Operand, if_false: Operand) -> LazyArray:
    """Lazy ternary select: ``cond ? if_true : if_false``.

    ``cond`` is typically a lazy comparison (``a < b``); the branches
    may be lazy arrays or scalars.  Both branches are recorded — like
    ``np.where`` and unlike Python ``if``, there is no short-circuit.
    """
    return cond._wrap(
        Select(cond.expr, cond._operand(if_true), cond._operand(if_false))
    )


# -- windows ---------------------------------------------------------------


def lift_window(
    fn: Callable[..., Expr], array: LazyArray, *args, **kwargs
) -> LazyArray:
    """Apply an accessor-level window builder to a lazy array.

    ``fn`` is any function taking an accessor first (the whole of
    :mod:`repro.dsl.functional`, or app code like
    :func:`repro.apps.night.atrous_bilateral`); its result records into
    ``array``'s trace.
    """
    return array._wrap(fn(array._as_accessor(), *args, **kwargs))


def convolve(array: LazyArray, mask: Mask) -> LazyArray:
    """Lazy convolution with ``mask`` (zero taps skipped, unit taps
    unscaled — identical IR to the explicit DSL's ``convolve``)."""
    return lift_window(_functional.convolve, array, mask)


def window_reduce(
    array: LazyArray,
    domain: Domain,
    fn: Callable[[Expr, Expr], Expr],
    transform: Optional[Callable[[Expr], Expr]] = None,
) -> LazyArray:
    """Lazy window reduction.  ``fn``/``transform`` operate on IR
    expressions (reads), exactly as in :func:`repro.dsl.functional.window_reduce`."""
    return lift_window(_functional.window_reduce, array, domain, fn, transform)


def window_sum(array: LazyArray, domain: Domain) -> LazyArray:
    """Lazy window sum."""
    return lift_window(_functional.window_sum, array, domain)


def window_mean(array: LazyArray, domain: Domain) -> LazyArray:
    """Lazy window arithmetic mean."""
    return lift_window(_functional.window_mean, array, domain)


def window_min(array: LazyArray, domain: Domain) -> LazyArray:
    """Lazy window minimum."""
    return lift_window(_functional.window_min, array, domain)


def window_max(array: LazyArray, domain: Domain) -> LazyArray:
    """Lazy window maximum."""
    return lift_window(_functional.window_max, array, domain)


def geometric_mean(array: LazyArray, domain: Domain) -> LazyArray:
    """Lazy geometric mean (log/exp lowering)."""
    return lift_window(_functional.geometric_mean, array, domain)


def window_median3x3(array: LazyArray) -> LazyArray:
    """Lazy 3x3 median via the branch-free sorting network."""
    return lift_window(_functional.window_median3x3, array)


def convolve_separable_x(array: LazyArray, taps) -> LazyArray:
    """Lazy horizontal 1D convolution."""
    return lift_window(_functional.convolve_separable_x, array, taps)


def convolve_separable_y(array: LazyArray, taps) -> LazyArray:
    """Lazy vertical 1D convolution."""
    return lift_window(_functional.convolve_separable_y, array, taps)

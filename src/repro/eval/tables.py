"""Table I and Table II of the paper.

Table I reports three speedup comparisons per GPU and application:
optimized over baseline, basic over baseline, and optimized over basic.
Table II aggregates each comparison with a geometric mean across the
three GPUs.  Speedups derive from run medians, as in the paper.

The paper's published numbers are included as
:data:`PAPER_TABLE1` / :data:`PAPER_TABLE2` so that EXPERIMENTS.md and
the benchmark harness can print paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.eval.runner import AppResult, ResultKey
from repro.eval.stats import geometric_mean

#: Table order used throughout the paper.
APP_ORDER: Tuple[str, ...] = (
    "Harris",
    "Sobel",
    "Unsharp",
    "ShiTomasi",
    "Enhance",
    "Night",
)

GPU_ORDER: Tuple[str, ...] = ("GTX745", "GTX680", "K20c")

#: The three comparisons of Table I: (numerator-version, denominator-version)
#: keyed by the table's row-group label.
COMPARISONS: Dict[str, Tuple[str, str]] = {
    "optimized/baseline": ("baseline", "optimized"),
    "basic/baseline": ("baseline", "basic"),
    "optimized/basic": ("basic", "optimized"),
}

#: Table I as published (speedup[comparison][gpu][app]).
PAPER_TABLE1: Dict[str, Dict[str, Dict[str, float]]] = {
    "optimized/baseline": {
        "GTX745": {
            "Harris": 1.145, "Sobel": 1.108, "Unsharp": 2.025,
            "ShiTomasi": 1.138, "Enhance": 1.760, "Night": 1.000,
        },
        "GTX680": {
            "Harris": 1.344, "Sobel": 1.377, "Unsharp": 3.438,
            "ShiTomasi": 1.357, "Enhance": 1.920, "Night": 1.020,
        },
        "K20c": {
            "Harris": 1.146, "Sobel": 1.048, "Unsharp": 2.304,
            "ShiTomasi": 1.149, "Enhance": 1.809, "Night": 1.000,
        },
    },
    "basic/baseline": {
        "GTX745": {
            "Harris": 1.044, "Sobel": 1.002, "Unsharp": 1.007,
            "ShiTomasi": 1.046, "Enhance": 1.413, "Night": 1.001,
        },
        "GTX680": {
            "Harris": 1.266, "Sobel": 0.987, "Unsharp": 1.001,
            "ShiTomasi": 1.287, "Enhance": 1.785, "Night": 1.020,
        },
        "K20c": {
            "Harris": 1.094, "Sobel": 1.002, "Unsharp": 0.999,
            "ShiTomasi": 1.099, "Enhance": 1.490, "Night": 1.000,
        },
    },
    "optimized/basic": {
        "GTX745": {
            "Harris": 1.097, "Sobel": 1.106, "Unsharp": 2.011,
            "ShiTomasi": 1.088, "Enhance": 1.245, "Night": 0.999,
        },
        "GTX680": {
            "Harris": 1.061, "Sobel": 1.394, "Unsharp": 3.435,
            "ShiTomasi": 1.055, "Enhance": 1.076, "Night": 1.000,
        },
        "K20c": {
            "Harris": 1.047, "Sobel": 1.046, "Unsharp": 2.304,
            "ShiTomasi": 1.046, "Enhance": 1.214, "Night": 1.000,
        },
    },
}

#: Table II as published (geomean across GPUs, speedup[comparison][app]).
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "optimized/baseline": {
        "Harris": 1.208, "Sobel": 1.169, "Unsharp": 2.522,
        "ShiTomasi": 1.211, "Enhance": 1.829, "Night": 1.007,
    },
    "basic/baseline": {
        "Harris": 1.131, "Sobel": 1.000, "Unsharp": 1.002,
        "ShiTomasi": 1.139, "Enhance": 1.555, "Night": 1.007,
    },
    "optimized/basic": {
        "Harris": 1.068, "Sobel": 1.173, "Unsharp": 2.516,
        "ShiTomasi": 1.063, "Enhance": 1.176, "Night": 1.000,
    },
}


def speedup(
    results: Dict[ResultKey, AppResult],
    app: str,
    gpu: str,
    slower_version: str,
    faster_version: str,
) -> float:
    """Median-time ratio of two versions on the same app and GPU."""
    slower = results[(app, gpu, slower_version)]
    faster = results[(app, gpu, faster_version)]
    return slower.median_ms / faster.median_ms


def speedup_table(
    results: Dict[ResultKey, AppResult],
    slower_version: str,
    faster_version: str,
    apps: Iterable[str] = APP_ORDER,
    gpus: Iterable[str] = GPU_ORDER,
) -> Dict[str, Dict[str, float]]:
    """One sub-table of Table I: ``speedup[gpu][app]``."""
    return {
        gpu: {
            app: speedup(results, app, gpu, slower_version, faster_version)
            for app in apps
        }
        for gpu in gpus
    }


def table1(
    results: Dict[ResultKey, AppResult],
    apps: Iterable[str] = APP_ORDER,
    gpus: Iterable[str] = GPU_ORDER,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Table I: ``table[comparison][gpu][app]``."""
    return {
        label: speedup_table(results, slower, faster, apps, gpus)
        for label, (slower, faster) in COMPARISONS.items()
    }


def table2(
    results: Dict[ResultKey, AppResult],
    apps: Iterable[str] = APP_ORDER,
    gpus: Iterable[str] = GPU_ORDER,
) -> Dict[str, Dict[str, float]]:
    """Table II: geometric mean across GPUs, ``table[comparison][app]``."""
    gpu_list = list(gpus)
    first = table1(results, apps, gpu_list)
    return {
        label: {
            app: geometric_mean(first[label][gpu][app] for gpu in gpu_list)
            for app in first[label][gpu_list[0]]
        }
        for label in first
    }

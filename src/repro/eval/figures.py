"""Figure reproductions.

* :func:`figure3_trace` — the Harris walk-through of Fig. 3: edge
  weights (328/328/256/ε...) and the recursive min-cut steps;
* :func:`figure4_example` — the border-fusion worked example of Fig. 4
  on the paper's exact 5x5 matrix: the unnormalized Gaussian
  convolution chain (intermediate 82/98/93..., interior value 992) and
  the clamp-border value (763 with index exchange; wrong without);
* :func:`figure6_data` — execution-time distributions with box-plot
  statistics for every (GPU, app, version), i.e. the data behind the
  paper's Fig. 6 panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.apps.common import GAUSS3_UNNORM
from repro.apps.harris import build_pipeline as build_harris
from repro.dsl.boundary import BoundaryMode, BoundarySpec
from repro.dsl.functional import convolve
from repro.dsl.image import Image
from repro.dsl.kernel import Kernel
from repro.dsl.pipeline import Pipeline
from repro.eval.runner import AppResult, ResultKey
from repro.eval.stats import BoxStats, box_stats
from repro.api import ExecutionOptions, run, run_block
from repro.fusion.mincut_fusion import FusionResult, mincut_fusion
from repro.graph.partition import PartitionBlock
from repro.model.benefit import BenefitConfig, estimate_graph
from repro.model.hardware import GTX680, GpuSpec

#: The 5x5 integer matrix of the paper's Fig. 4.
FIGURE4_INPUT = np.array(
    [
        [1, 3, 7, 7, 6],
        [3, 7, 9, 6, 8],
        [5, 4, 3, 2, 1],
        [4, 1, 2, 1, 2],
        [5, 2, 2, 4, 2],
    ],
    dtype=float,
)


def figure3_trace(
    gpu: GpuSpec = GTX680, config: BenefitConfig | None = None
) -> FusionResult:
    """Run Algorithm 1 on Harris with the paper's parameters.

    Uses the paper's constants (image-unit iteration spaces, γ = 0,
    ``cMshared = 2``, ``t_g = 400``, ``c_ALU = 4``) and ``dx`` as the
    Stoer–Wagner start vertex.  The resulting edge weights are the
    published 328/328/256 plus seven ε edges, and the final partition is
    {dx}, {dy}, {sx, gx}, {sy, gy}, {sxy, gxy}, {hc}.
    """
    graph = build_harris().build()
    weighted = estimate_graph(graph, gpu, config or BenefitConfig())
    return mincut_fusion(weighted, start_vertex="dx")


def _figure4_pipeline(boundary: BoundarySpec | None) -> Pipeline:
    """Two chained unnormalized 3x3 Gaussian convolutions on a 5x5 image."""
    pipe = Pipeline("figure4")
    source = Image.create("src", 5, 5)
    intermediate = Image.create("intermediate", 5, 5)
    out = Image.create("out", 5, 5)
    pipe.add(
        Kernel.from_function(
            "conv1",
            [source],
            intermediate,
            lambda a: convolve(a, GAUSS3_UNNORM),
            boundary=boundary,
        )
    )
    pipe.add(
        Kernel.from_function(
            "conv2",
            [intermediate],
            out,
            lambda a: convolve(a, GAUSS3_UNNORM),
            boundary=boundary,
        )
    )
    return pipe


@dataclass(frozen=True)
class Figure4Result:
    """All quantities of the Fig. 4 worked example."""

    intermediate_center: np.ndarray  # the 3x3 of Fig. 4a (82 98 93 / ...)
    interior_value: float  # 992 (Fig. 4a)
    staged_border_value: float  # 763 (unfused clamp, Fig. 4c reference)
    fused_border_value: float  # 763 (fused with index exchange)
    naive_border_value: float  # != 763 (fused without exchange, Fig. 4b)


def figure4_example() -> Figure4Result:
    """Reproduce Fig. 4's numbers on the paper's matrix."""
    clamp = BoundarySpec(BoundaryMode.CLAMP)
    graph = _figure4_pipeline(clamp).build()
    inputs = {"src": FIGURE4_INPUT}

    staged = run(graph, inputs, options=ExecutionOptions(fuse=False))
    block = PartitionBlock(graph, {"conv1", "conv2"})
    fused = run_block(graph, block, inputs)
    naive = run_block(
        graph, block, inputs, options=ExecutionOptions(naive_borders=True)
    )

    intermediate = staged["intermediate"][1:4, 1:4]
    return Figure4Result(
        intermediate_center=intermediate,
        interior_value=float(fused[2, 2]),
        staged_border_value=float(staged["out"][0, 0]),
        fused_border_value=float(fused[0, 0]),
        naive_border_value=float(naive[0, 0]),
    )


def figure6_data(
    results: Dict[ResultKey, AppResult],
) -> Dict[Tuple[str, str, str], BoxStats]:
    """Box-plot statistics for every configuration in ``results``."""
    return {key: box_stats(result.runs) for key, result in results.items()}

"""Evaluation harness reproducing the paper's tables and figures.

* :mod:`repro.eval.runner` — run every (application, GPU, version)
  configuration through the fusion engines and the simulator,
* :mod:`repro.eval.stats` — medians, percentiles, box-plot statistics,
  geometric means,
* :mod:`repro.eval.tables` — Table I (speedups per GPU) and Table II
  (geometric means across GPUs), with the paper's published values for
  side-by-side comparison,
* :mod:`repro.eval.figures` — Fig. 3 (Harris fusion trace), Fig. 4
  (border-fusion worked example), Fig. 6 (execution-time
  distributions),
* :mod:`repro.eval.report` — text rendering.
"""

from repro.eval.runner import (
    AppResult,
    ResultKey,
    VERSIONS,
    run_configuration,
    run_matrix,
)
from repro.eval.stats import BoxStats, box_stats, geometric_mean, median
from repro.eval.tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    speedup_table,
    table1,
    table2,
)
from repro.eval.figures import figure3_trace, figure4_example, figure6_data

__all__ = [
    "AppResult",
    "BoxStats",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "ResultKey",
    "VERSIONS",
    "box_stats",
    "figure3_trace",
    "figure4_example",
    "figure6_data",
    "geometric_mean",
    "median",
    "run_configuration",
    "run_matrix",
    "speedup_table",
    "table1",
    "table2",
]

"""Parameter sweep utilities.

The evaluation beyond the paper's fixed geometry: sweep image sizes,
model constants, or thresholds and watch where behaviour changes.  The
flagship sweep is image size: fusion eliminates per-pixel memory
traffic (a benefit that scales with the image) while the launch
overhead it saves is constant — so at small images launch savings
dominate, at large images traffic savings dominate, and the measured
speedup curves have a characteristic shape the bench suite records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.apps import AppSpec
from repro.backend.launch import simulate_partition
from repro.dsl.pipeline import Pipeline
from repro.eval.runner import partition_for
from repro.model.benefit import BenefitConfig
from repro.model.hardware import GpuSpec


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep."""

    value: float
    baseline_ms: float
    optimized_ms: float

    @property
    def speedup(self) -> float:
        return self.baseline_ms / self.optimized_ms


def size_sweep(
    build: Callable[[int, int], Pipeline],
    gpu: GpuSpec,
    sizes: Sequence[int],
    config: BenefitConfig | None = None,
) -> List[SweepPoint]:
    """Simulated speedup of min-cut fusion across square image sizes."""
    points = []
    for size in sizes:
        graph = build(size, size).build()
        baseline = partition_for(graph, gpu, "baseline", config)
        optimized = partition_for(graph, gpu, "optimized", config)
        points.append(
            SweepPoint(
                value=float(size),
                baseline_ms=simulate_partition(graph, baseline, gpu).total_ms,
                optimized_ms=simulate_partition(
                    graph, optimized, gpu
                ).total_ms,
            )
        )
    return points


def threshold_sweep(
    spec: AppSpec,
    gpu: GpuSpec,
    thresholds: Sequence[float],
) -> Dict[float, Tuple[int, float]]:
    """(launches, simulated ms) per ``cMshared`` threshold."""
    graph = spec.pipeline().build()
    result: Dict[float, Tuple[int, float]] = {}
    for threshold in thresholds:
        config = BenefitConfig(c_mshared=threshold)
        partition = partition_for(graph, gpu, "optimized", config)
        timing = simulate_partition(graph, partition, gpu)
        result[threshold] = (len(partition), timing.total_ms)
    return result


def render_size_sweep(
    app_name: str, gpu_name: str, points: Sequence[SweepPoint]
) -> str:
    """Text table of a size sweep."""
    lines = [
        f"SIZE SWEEP: {app_name} on {gpu_name}",
        f"{'size':>6}{'baseline ms':>13}{'optimized ms':>14}{'speedup':>9}",
    ]
    for point in points:
        lines.append(
            f"{int(point.value):>6}{point.baseline_ms:>13.4f}"
            f"{point.optimized_ms:>14.4f}{point.speedup:>8.2f}x"
        )
    return "\n".join(lines)

"""Text rendering of the evaluation output.

Formats the reproduced tables in the paper's row/column layout, with
optional side-by-side paper values, and the Fig. 6 data as per-GPU
blocks of box-plot statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.eval.figures import figure6_data
from repro.eval.runner import AppResult, ResultKey
from repro.eval.tables import (
    APP_ORDER,
    GPU_ORDER,
    PAPER_TABLE1,
    PAPER_TABLE2,
    table1,
    table2,
)


_LABEL_WIDTH = 20


def _format_row(label: str, values: Iterable[float], width: int = 11) -> str:
    cells = "".join(f"{value:>{width}.3f}" for value in values)
    return f"{label:<{_LABEL_WIDTH}}{cells}"


def _header(apps: Iterable[str], width: int = 11) -> str:
    return " " * _LABEL_WIDTH + "".join(f"{app:>{width}}" for app in apps)


def render_table1(
    results: Dict[ResultKey, AppResult],
    include_paper: bool = True,
    apps: Tuple[str, ...] = APP_ORDER,
    gpus: Tuple[str, ...] = GPU_ORDER,
) -> str:
    """Table I in the paper's layout (three comparison groups)."""
    computed = table1(results, apps, gpus)
    lines = ["TABLE I: SPEEDUP COMPARISON (reproduced)"]
    for label, per_gpu in computed.items():
        lines.append("")
        lines.append(label)
        lines.append(_header(apps))
        for gpu in gpus:
            lines.append(_format_row(gpu, (per_gpu[gpu][a] for a in apps)))
            if include_paper and label in PAPER_TABLE1:
                paper = PAPER_TABLE1[label][gpu]
                lines.append(
                    _format_row(f"  (paper)", (paper[a] for a in apps))
                )
    return "\n".join(lines)


def render_table2(
    results: Dict[ResultKey, AppResult],
    include_paper: bool = True,
    apps: Tuple[str, ...] = APP_ORDER,
    gpus: Tuple[str, ...] = GPU_ORDER,
) -> str:
    """Table II: geometric means of speedups across all GPUs."""
    computed = table2(results, apps, gpus)
    lines = ["TABLE II: GEOMETRIC MEAN OF SPEEDUPS ACROSS ALL GPUS (reproduced)"]
    lines.append(_header(apps))
    for label, per_app in computed.items():
        lines.append(_format_row(label, (per_app[a] for a in apps)))
        if include_paper and label in PAPER_TABLE2:
            paper = PAPER_TABLE2[label]
            lines.append(_format_row("  (paper)", (paper[a] for a in apps)))
    return "\n".join(lines)


def render_figure6(
    results: Dict[ResultKey, AppResult],
    apps: Tuple[str, ...] = APP_ORDER,
    gpus: Tuple[str, ...] = GPU_ORDER,
    versions: Tuple[str, ...] = ("baseline", "basic", "optimized"),
) -> str:
    """Fig. 6's content as text: per GPU, per app, per version box stats."""
    stats = figure6_data(results)
    lines = ["FIGURE 6: EXECUTION TIMES IN MS (simulated, 500 runs)"]
    for gpu in gpus:
        lines.append("")
        lines.append(gpu)
        for app in apps:
            for version in versions:
                key = (app, gpu, version)
                if key not in stats:
                    continue
                lines.append(
                    f"  {app:<10} {version:<10} {stats[key].describe()}"
                )
    return "\n".join(lines)

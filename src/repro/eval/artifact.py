"""One-command artifact builder.

Writes every reproduced table, figure, report, and generated source to
a directory — the equivalent of the paper's artifact package.  The
benchmark suite produces the same files piecemeal (with timing); this
is the "give me everything" entry point:

::

    python -m repro artifact --out artifact/
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from repro.apps import APPLICATIONS
from repro.backend.codegen_c import generate_c_pipeline
from repro.backend.codegen_cuda import generate_cuda_pipeline
from repro.backend.codegen_opencl import generate_opencl_pipeline
from repro.backend.roofline import render_roofline_report
from repro.eval.ascii_chart import render_figure6_chart
from repro.eval.figures import figure3_trace, figure4_example, figure6_data
from repro.eval.paper_check import render_report, run_all_checks
from repro.eval.report import render_figure6, render_table1, render_table2
from repro.eval.runner import run_matrix, partition_for
from repro.eval.serialize import dumps, matrix_to_json
from repro.eval.tables import APP_ORDER, GPU_ORDER
from repro.graph.partition import Partition, PartitionBlock
from repro.graph.viz import to_dot
from repro.model.hardware import GTX680


def _figure3_text() -> str:
    result = figure3_trace()
    lines = ["FIGURE 3: KERNEL FUSION APPLIED TO THE HARRIS CORNER DETECTOR",
             "", result.weighted.describe_edges(), ""]
    lines.extend(event.describe() for event in result.trace)
    lines += ["", result.partition.describe()]
    return "\n".join(lines)


def _figure4_text() -> str:
    fig4 = figure4_example()
    return "\n".join([
        "FIGURE 4: BORDER-CORRECT LOCAL-TO-LOCAL FUSION",
        f"intermediate window:\n{fig4.intermediate_center.astype(int)}",
        f"interior fused value (paper 992): {fig4.interior_value:.0f}",
        f"staged clamp border  (paper 763): {fig4.staged_border_value:.0f}",
        f"fused + index exchange          : {fig4.fused_border_value:.0f}",
        f"fused naive (incorrect)         : {fig4.naive_border_value:.0f}",
    ])


def build_artifact(
    output_dir: str | Path,
    runs: int = 500,
    include_sources: bool = True,
) -> List[Path]:
    """Write the full artifact; returns the paths written."""
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    def write(name: str, text: str) -> None:
        path = out / name
        path.write_text(text + "\n")
        written.append(path)

    results = run_matrix(runs=runs)
    write("table1_speedups.txt", render_table1(results))
    write("table2_geomean.txt", render_table2(results))
    write("figure6_exec_times.txt", render_figure6(results))
    write(
        "figure6_ascii.txt",
        render_figure6_chart(
            figure6_data(results), apps=APP_ORDER, gpus=GPU_ORDER
        ),
    )
    write("figure3_trace.txt", _figure3_text())
    write("figure4_border.txt", _figure4_text())
    write("results.json", dumps(matrix_to_json(results)))
    write("conformance_report.txt", render_report(run_all_checks()))

    rooflines: Dict[str, str] = {}
    for app_name, spec in APPLICATIONS.items():
        from repro.model.benefit import estimate_graph

        graph = spec.pipeline().build()
        weighted = estimate_graph(graph, GTX680)
        baseline = Partition.singletons(graph)
        optimized = partition_for(graph, GTX680, "optimized")
        rooflines[app_name] = render_roofline_report(
            graph, baseline, optimized, GTX680
        )
        if include_sources:
            stem = app_name.lower()
            write(
                f"generated_{stem}_fused.cu",
                generate_cuda_pipeline(graph, optimized),
            )
            write(
                f"generated_{stem}_fused.cl",
                generate_opencl_pipeline(graph, optimized),
            )
            write(
                f"generated_{stem}_fused.c",
                generate_c_pipeline(graph, optimized),
            )
            # Re-anchor the partition on the weighted graph so the DOT
            # edges carry the estimated benefit labels.
            weighted_partition = Partition(
                weighted.graph,
                [
                    PartitionBlock(weighted.graph, block.vertices)
                    for block in optimized.blocks
                ],
            )
            write(
                f"graph_{stem}.dot",
                to_dot(
                    weighted.graph,
                    weighted_partition,
                    epsilon=weighted.config.epsilon,
                    title=app_name,
                ),
            )
    write(
        "roofline.txt",
        "\n\n".join(rooflines[name] for name in APPLICATIONS),
    )
    return written

"""JSON serialization of evaluation artifacts.

Partitions, traces, timings, and full evaluation matrices serialize to
plain JSON for archival and diffing — the equivalent of the text files
the paper's artifact ships alongside the binaries.  Deserialization of
partitions reconstructs :class:`~repro.graph.partition.Partition`
objects against a freshly built graph, so archived fusion decisions can
be re-executed and re-validated later.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.eval.runner import AppResult, ResultKey
from repro.eval.stats import box_stats
from repro.fusion.mincut_fusion import FusionResult
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition, PartitionBlock


def partition_to_json(partition: Partition) -> Dict[str, Any]:
    """A partition as a JSON-ready dict."""
    return {
        "blocks": [
            sorted(block.vertices) for block in partition.blocks
        ],
        "benefit": partition.benefit
        if all(e.weight is not None for e in partition.graph.edges)
        else None,
    }


def partition_from_json(
    graph: KernelGraph, payload: Dict[str, Any]
) -> Partition:
    """Rebuild a partition against ``graph`` from serialized blocks."""
    blocks = [
        PartitionBlock(graph, vertices) for vertices in payload["blocks"]
    ]
    return Partition(graph, blocks)


def fusion_result_to_json(result: FusionResult) -> Dict[str, Any]:
    """A fusion run (engine, partition, trace) as a JSON-ready dict."""
    return {
        "engine": result.engine,
        "benefit": result.benefit,
        "partition": partition_to_json(result.partition),
        "trace": [
            {
                "iteration": event.iteration,
                "block": list(event.block),
                "action": event.action,
                "cut_weight": event.cut_weight,
                "parts": [list(part) for part in event.parts],
                "reasons": list(event.reasons),
            }
            for event in result.trace
        ],
    }


def app_result_to_json(result: AppResult) -> Dict[str, Any]:
    """One evaluation configuration as a JSON-ready dict.

    The 500-run distribution is summarized (box statistics + median),
    not dumped raw.
    """
    box = box_stats(result.runs)
    return {
        "app": result.app,
        "gpu": result.gpu,
        "version": result.version,
        "launches": result.launches,
        "median_ms": result.median_ms,
        "total_ms": result.timing.total_ms,
        "box": {
            "min": box.minimum,
            "q1": box.q1,
            "median": box.median,
            "q3": box.q3,
            "max": box.maximum,
        },
        "partition": partition_to_json(result.partition),
        "kernels": [
            {
                "name": k.name,
                "time_ms": k.time_ms,
                "memory_bound": k.memory_bound,
                "occupancy": k.occupancy,
            }
            for k in result.timing.kernels
        ],
    }


def matrix_to_json(results: Dict[ResultKey, AppResult]) -> List[Dict[str, Any]]:
    """A full evaluation matrix as a JSON-ready list."""
    return [
        app_result_to_json(results[key]) for key in sorted(results)
    ]


def dumps(payload: Any, indent: int = 2) -> str:
    """JSON text with stable key order."""
    return json.dumps(payload, indent=indent, sort_keys=True)

"""Statistics used by the evaluation (medians, box plots, geomeans).

The paper performs 500 runs per configuration, visualizes them as box
plots (Fig. 6), and derives the speedups of Tables I/II from the run
medians; Table II takes geometric means across the three GPUs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def median(samples: Sequence[float] | np.ndarray) -> float:
    """Median of a run distribution."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("no samples")
    return float(np.median(arr))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (Table II aggregation)."""
    items = [float(v) for v in values]
    if not items:
        raise ValueError("no values")
    if any(v <= 0 for v in items):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


@dataclass(frozen=True)
class BoxStats:
    """The five-number summary drawn by Fig. 6's box plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def describe(self) -> str:
        return (
            f"min {self.minimum:.3f} | q1 {self.q1:.3f} | "
            f"med {self.median:.3f} | q3 {self.q3:.3f} | "
            f"max {self.maximum:.3f}"
        )


def box_stats(samples: Sequence[float] | np.ndarray) -> BoxStats:
    """Five-number summary of a run distribution."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("no samples")
    q1, q2, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    return BoxStats(
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(q2),
        q3=float(q3),
        maximum=float(arr.max()),
    )

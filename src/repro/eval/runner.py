"""Running the evaluation matrix.

One configuration = (application, GPU, fusion version).  Versions:

* ``baseline`` — no fusion (singleton partition); every kernel is one
  launch with all intermediates in global memory;
* ``basic`` — prior-work pairwise fusion [12];
* ``optimized`` — the paper's min-cut fusion (Algorithm 1);
* ``greedy`` — heaviest-edge greedy grouping (extra ablation engine,
  not part of the paper's matrix).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.api import ExecutionOptions, run
from repro.apps import APPLICATIONS, AppSpec
from repro.backend.launch import PipelineTiming, simulate_partition, simulate_runs
from repro.backend.numpy_exec import Arrays
from repro.fusion.basic_fusion import basic_fusion
from repro.fusion.greedy_fusion import greedy_fusion
from repro.fusion.mincut_fusion import mincut_fusion
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition
from repro.model.benefit import BenefitConfig, estimate_graph
from repro.model.hardware import GTX680, GTX745, K20C, GpuSpec

#: The paper's evaluation versions, in table order.
VERSIONS: Tuple[str, ...] = ("baseline", "basic", "optimized")

#: The paper's devices, in figure order.
DEFAULT_GPUS: Tuple[GpuSpec, ...] = (GTX745, GTX680, K20C)

ResultKey = Tuple[str, str, str]  # (app, gpu, version)


@dataclass(frozen=True)
class AppResult:
    """Outcome of one configuration."""

    app: str
    gpu: str
    version: str
    partition: Partition
    timing: PipelineTiming
    runs: np.ndarray

    @property
    def median_ms(self) -> float:
        return float(np.median(self.runs))

    @property
    def launches(self) -> int:
        return self.timing.launches


def partition_for(
    graph: KernelGraph,
    gpu: GpuSpec,
    version: str,
    config: BenefitConfig | None = None,
) -> Partition:
    """Compute the fusion partition of one version."""
    if version == "baseline":
        return Partition.singletons(graph)
    weighted = estimate_graph(graph, gpu, config)
    if version == "basic":
        return basic_fusion(weighted).partition
    if version == "optimized":
        return mincut_fusion(weighted).partition
    if version == "greedy":
        return greedy_fusion(weighted).partition
    if version == "exhaustive":
        from repro.fusion.exhaustive import exhaustive_fusion

        return exhaustive_fusion(weighted).partition
    if version == "coalesced":
        from repro.fusion.coalesce import coalesced_fusion

        return coalesced_fusion(weighted).partition
    raise ValueError(f"unknown version {version!r}")


def _seed(app: str, gpu: str, version: str) -> int:
    """A stable per-configuration RNG seed."""
    return zlib.crc32(f"{app}/{gpu}/{version}".encode())


def run_configuration(
    spec: AppSpec,
    gpu: GpuSpec,
    version: str,
    config: BenefitConfig | None = None,
    runs: int = 500,
) -> AppResult:
    """Fuse, simulate, and sample one configuration."""
    graph = spec.pipeline().build()
    partition = partition_for(graph, gpu, version, config)
    timing = simulate_partition(graph, partition, gpu)
    samples = simulate_runs(timing, runs=runs, seed=_seed(spec.name, gpu.name, version))
    return AppResult(spec.name, gpu.name, version, partition, timing, samples)


def execute_configuration(
    spec: AppSpec,
    gpu: GpuSpec,
    version: str,
    width: int = 96,
    height: int = 64,
    config: BenefitConfig | None = None,
    params: Dict[str, float] | None = None,
    seed: int = 0,
    engine: str | None = None,
    workers: int | None = None,
    runtime=None,
) -> Arrays:
    """Numerically execute one configuration's fused pipeline.

    Complements :func:`run_configuration` (which *simulates* timing):
    the application is built at the given geometry, partitioned for the
    version, and run on deterministic random inputs through
    :func:`repro.api.run` — the tape engine by default, with
    ``workers`` forwarded for parallel block execution.
    ``engine="native"`` (or ``REPRO_EXEC_ENGINE=native``)
    runs the compiled-C backend of :mod:`repro.backend.native_exec`
    when a C toolchain is available.  Returns the surviving-image
    environment.

    ``runtime`` (a :class:`repro.serve.runtime.ServingRuntime`) routes
    execution through the serving layer: the fused plan is cached
    across calls, so evaluation sweeps that revisit a configuration
    compile it once.
    """
    graph = spec.build(width, height).build()
    partition = partition_for(graph, gpu, version, config)
    rng = np.random.default_rng(_seed(spec.name, gpu.name, version) ^ seed)
    shape = (height, width)
    if spec.channels > 1:
        shape = shape + (spec.channels,)
    inputs = {
        name: rng.uniform(0.0, 255.0, size=shape)
        for name in graph.pipeline_inputs()
    }
    return run(
        graph,
        inputs,
        params,
        options=ExecutionOptions(
            engine=engine,
            workers=workers,
            runtime=runtime,
            partition=partition,
        ),
    )


def run_matrix(
    apps: Iterable[AppSpec] | None = None,
    gpus: Iterable[GpuSpec] = DEFAULT_GPUS,
    versions: Iterable[str] = VERSIONS,
    config: BenefitConfig | None = None,
    runs: int = 500,
) -> Dict[ResultKey, AppResult]:
    """The full evaluation matrix (Fig. 6 / Table I input).

    Returns a mapping ``(app, gpu, version) -> AppResult``.
    """
    if apps is None:
        apps = APPLICATIONS.values()
    results: Dict[ResultKey, AppResult] = {}
    for spec in apps:
        for gpu in gpus:
            for version in versions:
                result = run_configuration(spec, gpu, version, config, runs)
                results[(spec.name, gpu.name, version)] = result
    return results

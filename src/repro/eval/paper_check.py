"""Automated paper-conformance report.

Runs every reproducible claim of the paper — the worked examples, the
fusion decisions, the evaluation shape — and emits an
artifact-evaluation-style checklist.  Three verdicts:

* ``PASS`` — the claim reproduces (exactly, or within the stated band);
* ``DEVIATION`` — the claim's *shape* holds but the magnitude differs
  for a documented reason (see EXPERIMENTS.md);
* ``FAIL`` — the claim does not reproduce.

The CLI exposes this as ``python -m repro verify``; the exit status is
non-zero if any check FAILs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.apps import APPLICATIONS
from repro.api import ExecutionOptions, run
from repro.eval.figures import figure3_trace, figure4_example
from repro.eval.runner import ResultKey, AppResult, partition_for, run_matrix
from repro.eval.tables import PAPER_TABLE2, table2
from repro.fusion.exhaustive import optimality_gap
from repro.model.benefit import estimate_graph
from repro.model.hardware import GTX680
from repro.model.resources import shared_memory_ratio

PASS = "PASS"
DEVIATION = "DEVIATION"
FAIL = "FAIL"


@dataclass(frozen=True)
class CheckResult:
    """One verified claim."""

    claim: str
    status: str
    detail: str = ""

    def line(self) -> str:
        text = f"[{self.status:^9}] {self.claim}"
        if self.detail:
            text += f" — {self.detail}"
        return text


def _check(claim: str, condition: bool, detail: str = "") -> CheckResult:
    return CheckResult(claim, PASS if condition else FAIL, detail)


def check_figure3() -> List[CheckResult]:
    """Claims of the Fig. 3 Harris walk-through (weights, cuts, Eq. 2)."""
    result = figure3_trace()
    weighted = result.weighted
    checks = [
        _check(
            "Fig.3 edge weights are 328/328/256",
            weighted.estimate("sx", "gx").weight == 328.0
            and weighted.estimate("sy", "gy").weight == 328.0
            and weighted.estimate("sxy", "gxy").weight == 256.0,
        ),
        _check(
            "Fig.3 seven remaining edges carry epsilon",
            sum(
                1
                for e in weighted.graph.edges
                if e.weight == weighted.config.epsilon
            )
            == 7,
        ),
    ]
    blocks = {frozenset(b.vertices) for b in result.partition.blocks}
    checks.append(
        _check(
            "Fig.3 final partition is {sx,gx},{sy,gy},{sxy,gxy} + singles",
            blocks
            == {
                frozenset({"dx"}), frozenset({"dy"}), frozenset({"hc"}),
                frozenset({"sx", "gx"}), frozenset({"sy", "gy"}),
                frozenset({"sxy", "gxy"}),
            },
        )
    )
    first_cut = next(e for e in result.trace if e.action == "cut")
    checks.append(
        _check(
            "Fig.3 first global min cut has weight 2*epsilon",
            abs(first_cut.cut_weight - 2 * weighted.config.epsilon) < 1e-12,
        )
    )
    graph = weighted.graph
    checks.append(
        _check(
            "Harris whole-graph fusion fails Eq.2 with ratio 5",
            shared_memory_ratio(graph, graph.kernel_names) == 5.0,
        )
    )
    return checks


def check_figure4() -> List[CheckResult]:
    """Claims of the Fig. 4 border-fusion worked example."""
    fig4 = figure4_example()
    return [
        _check(
            "Fig.4a intermediate window is 82/98/93...",
            np.array_equal(
                fig4.intermediate_center,
                np.array([[82, 98, 93], [66, 61, 51], [43, 34, 32]]),
            ),
        ),
        _check("Fig.4a fused interior value is 992",
               fig4.interior_value == 992.0),
        _check("Fig.4c staged clamp border value is 763",
               fig4.staged_border_value == 763.0),
        _check(
            "Fig.4c index exchange reproduces the staged border",
            fig4.fused_border_value == 763.0,
        ),
        _check(
            "Fig.4b naive composition is wrong at the border",
            fig4.naive_border_value != 763.0,
        ),
    ]


def check_fusion_decisions() -> List[CheckResult]:
    """Per-application fusion decisions plus optimality of Algorithm 1."""
    checks = []

    def blocks_of(app, version):
        graph = APPLICATIONS[app].build(32, 32).build()
        partition = partition_for(graph, GTX680, version)
        return {frozenset(b.vertices) for b in partition.blocks}

    checks.append(
        _check(
            "Night: the expensive atrous pair is not fused (Sec. V-C)",
            blocks_of("Night", "optimized")
            == {frozenset({"atrous0"}), frozenset({"atrous1", "scoto"})},
        )
    )
    checks.append(
        _check(
            "Unsharp: min-cut fuses the whole shared-input diamond",
            blocks_of("Unsharp", "optimized")
            == {frozenset({"blur", "high", "amp", "sharpen"})},
        )
    )
    checks.append(
        _check(
            "Unsharp: basic (prior work) fuses nothing",
            all(len(b) == 1 for b in blocks_of("Unsharp", "basic")),
        )
    )
    checks.append(
        _check(
            "Sobel: min-cut fuses all three kernels, basic none",
            blocks_of("Sobel", "optimized")
            == {frozenset({"dx", "dy", "mag"})}
            and all(len(b) == 1 for b in blocks_of("Sobel", "basic")),
        )
    )
    checks.append(
        _check(
            "Enhancement: both engines collapse the chain",
            len(blocks_of("Enhance", "optimized")) == 1
            and len(blocks_of("Enhance", "basic")) == 1,
        )
    )
    for app in APPLICATIONS:
        graph = APPLICATIONS[app].build(32, 32).build()
        weighted = estimate_graph(graph, GTX680)
        gap = optimality_gap(weighted)
        checks.append(
            _check(
                f"{app}: Algorithm 1 matches the enumerated optimum",
                abs(gap) < 1e-9,
                f"gap={gap:g}",
            )
        )
    return checks


def check_semantics() -> List[CheckResult]:
    """Fused-vs-staged functional equivalence for every application."""
    checks = []
    geometry = {"Night": (14, 12, 3)}
    params = {"gamma": 0.8, "threshold": 100.0}
    rng = np.random.default_rng(0)
    for app, spec in APPLICATIONS.items():
        width, height, channels = geometry.get(app, (18, 18, 1))
        graph = spec.build(width, height).build()
        shape = (height, width) if channels == 1 else (height, width, channels)
        data = rng.uniform(1.0, 255.0, size=shape)
        staged = run(
            graph,
            {"input": data},
            params,
            options=ExecutionOptions(fuse=False),
        )
        partition = partition_for(graph, GTX680, "optimized")
        fused = run(
            graph,
            {"input": data},
            params,
            options=ExecutionOptions(partition=partition),
        )
        agree = all(
            np.allclose(fused[name], staged[name], rtol=1e-8, atol=1e-8)
            for name in graph.external_outputs
        )
        checks.append(
            _check(f"{app}: fused execution matches staged execution", agree)
        )
    return checks


#: Table II bands: (lo, hi) for the measured value; DEVIATION when the
#: shape holds but the magnitude leaves the paper's vicinity.
_TABLE2_BANDS: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("optimized/baseline", "Unsharp"): (2.0, 5.0),
    ("optimized/baseline", "Sobel"): (1.05, 3.5),
    ("optimized/baseline", "Harris"): (1.02, 1.5),
    ("optimized/baseline", "ShiTomasi"): (1.02, 1.5),
    ("optimized/baseline", "Enhance"): (1.3, 2.2),
    ("optimized/baseline", "Night"): (0.95, 1.10),
    ("basic/baseline", "Sobel"): (0.97, 1.03),
    ("basic/baseline", "Unsharp"): (0.97, 1.03),
}


def check_evaluation_shape(
    results: Dict[ResultKey, AppResult] | None = None,
) -> List[CheckResult]:
    """Table I/II shape claims, with banded PASS/DEVIATION verdicts."""
    if results is None:
        results = run_matrix(runs=100)
    t2 = table2(results)
    checks = []
    optimized = t2["optimized/baseline"]
    checks.append(
        _check(
            "Table II: Unsharp is the largest geomean win",
            optimized["Unsharp"] == max(optimized.values()),
            f"measured {optimized['Unsharp']:.3f}, paper 2.522",
        )
    )
    for (label, app), (lo, hi) in _TABLE2_BANDS.items():
        value = t2[label][app]
        paper = PAPER_TABLE2[label][app]
        in_band = lo <= value <= hi
        near_paper = abs(value - paper) <= 0.15
        status = PASS if (in_band and near_paper) else (
            DEVIATION if in_band else FAIL
        )
        checks.append(
            CheckResult(
                f"Table II {label} {app}",
                status,
                f"measured {value:.3f}, paper {paper:.3f}",
            )
        )
    return checks


#: The registered check suites, in report order.
SUITES: Dict[str, Callable[[], List[CheckResult]]] = {
    "Figure 3 (Harris walk-through)": check_figure3,
    "Figure 4 (border fusion)": check_figure4,
    "Fusion decisions": check_fusion_decisions,
    "Functional equivalence": check_semantics,
    "Evaluation shape (Tables I/II)": check_evaluation_shape,
}


def run_all_checks() -> List[Tuple[str, List[CheckResult]]]:
    """Run every suite; returns (suite name, results) pairs."""
    return [(name, suite()) for name, suite in SUITES.items()]


def render_report(
    outcome: List[Tuple[str, List[CheckResult]]] | None = None,
) -> str:
    """The full conformance report as text."""
    outcome = outcome or run_all_checks()
    lines = ["PAPER CONFORMANCE REPORT",
             "(PASS = reproduces; DEVIATION = shape holds, magnitude "
             "differs as documented in EXPERIMENTS.md)"]
    counts = {PASS: 0, DEVIATION: 0, FAIL: 0}
    for suite_name, results in outcome:
        lines.append("")
        lines.append(suite_name)
        for result in results:
            counts[result.status] += 1
            lines.append("  " + result.line())
    lines.append("")
    lines.append(
        f"summary: {counts[PASS]} pass, {counts[DEVIATION]} deviation, "
        f"{counts[FAIL]} fail"
    )
    return "\n".join(lines)


def has_failures(
    outcome: List[Tuple[str, List[CheckResult]]],
) -> bool:
    """Whether any check in the outcome carries the FAIL verdict."""
    return any(
        result.status == FAIL for _, results in outcome for result in results
    )

"""ASCII rendering of the Fig. 6 box plots.

The paper visualizes 500 runs per configuration as box plots with
whiskers.  This module draws the same geometry in monospace text so the
benchmark artifacts contain an actual *figure*, not only the five
numbers: whiskers span min..max, the box spans Q1..Q3, and the median
is marked.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.eval.stats import BoxStats

#: Glyphs of the plot.
_WHISKER = "-"
_BOX = "="
_MEDIAN = "|"
_EMPTY = " "


def render_box_row(
    stats: BoxStats, lo: float, hi: float, width: int
) -> str:
    """One box plot on a shared [lo, hi] axis of ``width`` columns."""
    if hi <= lo:
        raise ValueError("empty axis range")
    span = hi - lo

    def column(value: float) -> int:
        position = (value - lo) / span
        return min(width - 1, max(0, round(position * (width - 1))))

    cells = [_EMPTY] * width
    for i in range(column(stats.minimum), column(stats.maximum) + 1):
        cells[i] = _WHISKER
    for i in range(column(stats.q1), column(stats.q3) + 1):
        cells[i] = _BOX
    cells[column(stats.median)] = _MEDIAN
    return "".join(cells)


def render_boxplot_panel(
    rows: Sequence[Tuple[str, BoxStats]],
    width: int = 60,
    unit: str = "ms",
) -> str:
    """A labelled panel of box plots on a common axis.

    ``rows`` are (label, stats) pairs; the axis spans the global
    min..max with a small margin, and is printed underneath.
    """
    if not rows:
        raise ValueError("no rows")
    lo = min(stats.minimum for _, stats in rows)
    hi = max(stats.maximum for _, stats in rows)
    if hi == lo:
        hi = lo + 1.0
    margin = 0.02 * (hi - lo)
    lo -= margin
    hi += margin

    label_width = max(len(label) for label, _ in rows) + 2
    lines = []
    for label, stats in rows:
        lines.append(
            f"{label:<{label_width}}"
            f"{render_box_row(stats, lo, hi, width)}"
            f"  med {stats.median:8.3f} {unit}"
        )
    axis = f"{'':<{label_width}}{lo:<{width // 2}.3f}"
    axis += f"{hi:>{width - width // 2}.3f}"
    lines.append(axis)
    return "\n".join(lines)


def render_figure6_chart(
    box_data: Dict[Tuple[str, str, str], BoxStats],
    apps: Sequence[str],
    gpus: Sequence[str],
    versions: Sequence[str] = ("baseline", "basic", "optimized"),
    width: int = 60,
) -> str:
    """The full Fig. 6: one panel per GPU, grouped bars per app."""
    sections = ["FIGURE 6 (ASCII): EXECUTION TIME DISTRIBUTIONS"]
    for gpu in gpus:
        rows = []
        for app in apps:
            for version in versions:
                key = (app, gpu, version)
                if key in box_data:
                    rows.append((f"{app}/{version}", box_data[key]))
        if not rows:
            continue
        sections.append("")
        sections.append(gpu)
        sections.append(render_boxplot_panel(rows, width=width))
    return "\n".join(sections)

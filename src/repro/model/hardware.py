"""The GPU hardware model.

The paper uses a simplified memory model (Section II-C2): registers
(1 cycle), shared memory (a few cycles), and global memory (400–800
cycles latency, conservatively priced at the full latency).  A
:class:`GpuSpec` bundles those cost constants with the architectural
parameters of a device (cores, SMs, clocks, shared memory and register
files) used by the resource model, the occupancy calculator, and the
performance simulator.

The three evaluation devices of the paper are provided as module
constants with their published configurations (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class GpuSpec:
    """A CUDA device plus the analytic cost-model constants.

    Cost constants (``t_g``, ``t_s``, ``c_alu``, ``c_sfu``) are "flexible
    and can be adapted for new architectures" (paper, II-C2); the
    defaults follow the paper's worked example: ``t_g = 400`` cycles,
    ``c_alu = 4`` cycles.
    """

    name: str
    cuda_cores: int
    sm_count: int
    base_clock_mhz: float
    mem_clock_mhz: float
    shared_mem_per_block: int = 48 * 1024
    shared_mem_per_sm: int = 48 * 1024
    registers_per_block: int = 65536
    registers_per_sm: int = 65536
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    warp_size: int = 32

    # -- analytic cost constants (cycles) ---------------------------------
    t_global: float = 400.0
    t_shared: float = 4.0
    t_register: float = 1.0
    c_alu: float = 4.0
    c_sfu: float = 16.0
    launch_overhead_us: float = 5.0

    # -- performance-simulator constants -----------------------------------
    #: DRAM bus width in bytes (GDDR is double data rate, see bandwidth).
    mem_bus_bytes: int = 32
    #: Fraction of peak DRAM bandwidth a well-coalesced kernel achieves.
    dram_efficiency: float = 0.75
    #: Fraction of memory/compute time that overlaps (latency hiding).
    overlap: float = 0.7
    #: Occupancy above which throughput saturates.
    occupancy_saturation: float = 0.25
    #: Extra cycles charged per halo pixel for border handling.
    border_penalty_cycles: float = 24.0

    def __post_init__(self) -> None:
        if self.cuda_cores <= 0 or self.sm_count <= 0:
            raise ValueError("cores and SM count must be positive")
        if self.cuda_cores % self.sm_count != 0:
            raise ValueError(
                f"{self.name}: cores ({self.cuda_cores}) must divide evenly "
                f"into SMs ({self.sm_count})"
            )
        if self.t_global <= self.t_shared or self.t_shared < self.t_register:
            raise ValueError(
                "memory hierarchy must satisfy t_global > t_shared >= t_register"
            )

    @property
    def cores_per_sm(self) -> int:
        return self.cuda_cores // self.sm_count

    @property
    def clock_hz(self) -> float:
        return self.base_clock_mhz * 1e6

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_bandwidth(self) -> float:
        """Peak DRAM bandwidth in bytes per second (double data rate)."""
        return 2.0 * self.mem_clock_mhz * 1e6 * self.mem_bus_bytes

    @property
    def effective_bandwidth(self) -> float:
        """Achievable bandwidth for well-coalesced kernels, bytes/s."""
        return self.peak_bandwidth * self.dram_efficiency

    @property
    def global_to_shared_ratio(self) -> float:
        """``t_g / t_s``: the per-access gain of shared-memory locality."""
        return self.t_global / self.t_shared

    def with_costs(self, **overrides: float) -> "GpuSpec":
        """A copy with some cost constants overridden (for ablations)."""
        return replace(self, **overrides)

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.cuda_cores} cores / {self.sm_count} SMs, "
            f"{self.base_clock_mhz:.0f} MHz core, "
            f"{self.mem_clock_mhz:.0f} MHz mem)"
        )


#: Geforce GTX 745: 384 CUDA cores (3 Maxwell SMMs), 1033 MHz base clock,
#: 900 MHz memory clock (paper, Section V-A).
GTX745 = GpuSpec(
    name="GTX745",
    cuda_cores=384,
    sm_count=3,
    base_clock_mhz=1033.0,
    mem_clock_mhz=900.0,
    mem_bus_bytes=16,  # 128-bit DDR3 bus
)

#: Geforce GTX 680: 1536 CUDA cores (8 Kepler SMXs), 1058 MHz base clock,
#: 3004 MHz memory clock.
GTX680 = GpuSpec(
    name="GTX680",
    cuda_cores=1536,
    sm_count=8,
    base_clock_mhz=1058.0,
    mem_clock_mhz=3004.0,
    mem_bus_bytes=32,  # 256-bit GDDR5 bus
)

#: Tesla K20c: 2496 CUDA cores (13 Kepler SMXs), 706 MHz base clock,
#: 2600 MHz memory clock.
K20C = GpuSpec(
    name="K20c",
    cuda_cores=2496,
    sm_count=13,
    base_clock_mhz=706.0,
    mem_clock_mhz=2600.0,
    mem_bus_bytes=40,  # 320-bit GDDR5 bus
)

#: The paper's evaluation devices, by name.
KNOWN_GPUS: Dict[str, GpuSpec] = {
    GTX745.name: GTX745,
    GTX680.name: GTX680,
    K20C.name: K20C,
}


# ---------------------------------------------------------------------------
# Host CPU cache hierarchy (for the native engine's 2D tiling model)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CpuCacheSpec:
    """The host CPU cache hierarchy, as seen by the native engine.

    The 2D overlapped-tiling model (:mod:`repro.model.tiling`) sizes a
    fused chain's scratch working set against ``l2_bytes`` the way the
    paper's Eq. 3–12 size shared memory on the GPU; ``source`` records
    whether the numbers came from sysfs, from the micro-calibration
    (:func:`calibrate_cpu_caches`), or are the conservative defaults.
    """

    l1d_bytes: int
    l2_bytes: int
    l3_bytes: int
    line_bytes: int = 64
    source: str = "default"

    def __post_init__(self) -> None:
        if self.l1d_bytes <= 0 or self.l2_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if self.l1d_bytes > self.l2_bytes:
            raise ValueError("L1d must not exceed L2")

    def describe(self) -> str:
        return (
            f"L1d={self.l1d_bytes // 1024}K L2={self.l2_bytes // 1024}K "
            f"L3={self.l3_bytes // 1024}K line={self.line_bytes}B "
            f"({self.source})"
        )


#: Conservative fallback when sysfs is unavailable (containers, macOS):
#: the smallest hierarchy of the last decade of x86 server cores.
DEFAULT_CPU_CACHES = CpuCacheSpec(
    l1d_bytes=32 * 1024,
    l2_bytes=1024 * 1024,
    l3_bytes=8 * 1024 * 1024,
    line_bytes=64,
    source="default",
)

_SYSFS_CACHE_DIR = "/sys/devices/system/cpu/cpu0/cache"

_detected_cpu_caches: "CpuCacheSpec | None" = None


def _parse_sysfs_size(text: str) -> int:
    """Parse a sysfs cache ``size`` file value like ``48K`` or ``2048K``."""
    text = text.strip()
    multiplier = 1
    if text and text[-1] in "KkMm":
        multiplier = 1024 if text[-1] in "Kk" else 1024 * 1024
        text = text[:-1]
    return int(text) * multiplier


def detect_cpu_caches() -> CpuCacheSpec:
    """The host cache hierarchy from sysfs, or the defaults.

    Reads ``/sys/devices/system/cpu/cpu0/cache/index*/`` (level, type,
    size, coherency_line_size); any miss falls back to the matching
    field of :data:`DEFAULT_CPU_CACHES`.  The result is cached for the
    process — plan building consults it on every tile-shape choice and
    must stay cheap.
    """
    global _detected_cpu_caches
    if _detected_cpu_caches is not None:
        return _detected_cpu_caches
    import os

    sizes = {1: None, 2: None, 3: None}
    line = None
    try:
        entries = sorted(os.listdir(_SYSFS_CACHE_DIR))
    except OSError:
        entries = []
    for entry in entries:
        if not entry.startswith("index"):
            continue
        base = os.path.join(_SYSFS_CACHE_DIR, entry)
        try:
            with open(os.path.join(base, "level")) as fh:
                level = int(fh.read().strip())
            with open(os.path.join(base, "type")) as fh:
                kind = fh.read().strip()
            with open(os.path.join(base, "size")) as fh:
                size = _parse_sysfs_size(fh.read())
        except (OSError, ValueError):
            continue
        if kind == "Instruction" or level not in sizes:
            continue
        if sizes[level] is None or size > sizes[level]:
            sizes[level] = size
        if line is None:
            try:
                with open(os.path.join(base, "coherency_line_size")) as fh:
                    line = int(fh.read().strip())
            except (OSError, ValueError):
                line = None
    spec = CpuCacheSpec(
        l1d_bytes=sizes[1] or DEFAULT_CPU_CACHES.l1d_bytes,
        l2_bytes=sizes[2] or DEFAULT_CPU_CACHES.l2_bytes,
        l3_bytes=sizes[3] or DEFAULT_CPU_CACHES.l3_bytes,
        line_bytes=line or DEFAULT_CPU_CACHES.line_bytes,
        source="sysfs" if sizes[1] or sizes[2] else "default",
    )
    _detected_cpu_caches = spec
    return spec


def _clear_detected_cpu_caches() -> None:
    """Test hook: drop the memoized :func:`detect_cpu_caches` result."""
    global _detected_cpu_caches
    _detected_cpu_caches = None


def calibrate_cpu_caches(
    max_bytes: int = 8 * 1024 * 1024, repeats: int = 3
) -> CpuCacheSpec:
    """Micro-calibrate *effective* L1/L2 sizes by timed traversals.

    Walks buffers of doubling size with a strided read pattern and
    times the per-element cost; a knee (cost jumping past 1.5x the
    small-buffer baseline) marks a capacity boundary, mirroring how
    ``model/calibration.py`` fits the GPU cost constants from measured
    launches rather than trusting the datasheet.  Used by the tiling
    benchmark and ``repro tiling --calibrate``; the default model path
    uses :func:`detect_cpu_caches` so plan building stays fast.
    """
    import time

    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
        return detect_cpu_caches()

    detected = detect_cpu_caches()
    sizes = []
    size = 16 * 1024
    while size <= max_bytes:
        sizes.append(size)
        size *= 2
    costs = {}
    for nbytes in sizes:
        buf = np.arange(nbytes // 8, dtype=np.float64)
        # Strided sum defeats hardware prefetch enough to expose the
        # capacity knee while staying pure-numpy.
        stride = 8  # 64 bytes / 8 per element: one touch per line
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for phase in range(stride):
                float(buf[phase::stride].sum())
            elapsed = time.perf_counter() - t0
            best = min(best, elapsed / max(len(buf), 1))
        costs[nbytes] = best
    baseline = min(list(costs.values())[:2])
    knees = [
        nbytes
        for nbytes, cost in costs.items()
        if baseline > 0 and cost > 1.5 * baseline
    ]
    l1 = detected.l1d_bytes
    l2 = detected.l2_bytes
    if knees:
        # The first knee is the first level that no longer holds the
        # working set; everything below it is "effectively cached".
        first = knees[0]
        if first <= 128 * 1024:
            l1 = max(first // 2, 16 * 1024)
        else:
            l2 = max(first // 2, l1)
    return CpuCacheSpec(
        l1d_bytes=l1,
        l2_bytes=max(l2, l1),
        l3_bytes=detected.l3_bytes,
        line_bytes=detected.line_bytes,
        source="calibrated",
    )

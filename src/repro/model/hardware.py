"""The GPU hardware model.

The paper uses a simplified memory model (Section II-C2): registers
(1 cycle), shared memory (a few cycles), and global memory (400–800
cycles latency, conservatively priced at the full latency).  A
:class:`GpuSpec` bundles those cost constants with the architectural
parameters of a device (cores, SMs, clocks, shared memory and register
files) used by the resource model, the occupancy calculator, and the
performance simulator.

The three evaluation devices of the paper are provided as module
constants with their published configurations (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class GpuSpec:
    """A CUDA device plus the analytic cost-model constants.

    Cost constants (``t_g``, ``t_s``, ``c_alu``, ``c_sfu``) are "flexible
    and can be adapted for new architectures" (paper, II-C2); the
    defaults follow the paper's worked example: ``t_g = 400`` cycles,
    ``c_alu = 4`` cycles.
    """

    name: str
    cuda_cores: int
    sm_count: int
    base_clock_mhz: float
    mem_clock_mhz: float
    shared_mem_per_block: int = 48 * 1024
    shared_mem_per_sm: int = 48 * 1024
    registers_per_block: int = 65536
    registers_per_sm: int = 65536
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    warp_size: int = 32

    # -- analytic cost constants (cycles) ---------------------------------
    t_global: float = 400.0
    t_shared: float = 4.0
    t_register: float = 1.0
    c_alu: float = 4.0
    c_sfu: float = 16.0
    launch_overhead_us: float = 5.0

    # -- performance-simulator constants -----------------------------------
    #: DRAM bus width in bytes (GDDR is double data rate, see bandwidth).
    mem_bus_bytes: int = 32
    #: Fraction of peak DRAM bandwidth a well-coalesced kernel achieves.
    dram_efficiency: float = 0.75
    #: Fraction of memory/compute time that overlaps (latency hiding).
    overlap: float = 0.7
    #: Occupancy above which throughput saturates.
    occupancy_saturation: float = 0.25
    #: Extra cycles charged per halo pixel for border handling.
    border_penalty_cycles: float = 24.0

    def __post_init__(self) -> None:
        if self.cuda_cores <= 0 or self.sm_count <= 0:
            raise ValueError("cores and SM count must be positive")
        if self.cuda_cores % self.sm_count != 0:
            raise ValueError(
                f"{self.name}: cores ({self.cuda_cores}) must divide evenly "
                f"into SMs ({self.sm_count})"
            )
        if self.t_global <= self.t_shared or self.t_shared < self.t_register:
            raise ValueError(
                "memory hierarchy must satisfy t_global > t_shared >= t_register"
            )

    @property
    def cores_per_sm(self) -> int:
        return self.cuda_cores // self.sm_count

    @property
    def clock_hz(self) -> float:
        return self.base_clock_mhz * 1e6

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_bandwidth(self) -> float:
        """Peak DRAM bandwidth in bytes per second (double data rate)."""
        return 2.0 * self.mem_clock_mhz * 1e6 * self.mem_bus_bytes

    @property
    def effective_bandwidth(self) -> float:
        """Achievable bandwidth for well-coalesced kernels, bytes/s."""
        return self.peak_bandwidth * self.dram_efficiency

    @property
    def global_to_shared_ratio(self) -> float:
        """``t_g / t_s``: the per-access gain of shared-memory locality."""
        return self.t_global / self.t_shared

    def with_costs(self, **overrides: float) -> "GpuSpec":
        """A copy with some cost constants overridden (for ablations)."""
        return replace(self, **overrides)

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.cuda_cores} cores / {self.sm_count} SMs, "
            f"{self.base_clock_mhz:.0f} MHz core, "
            f"{self.mem_clock_mhz:.0f} MHz mem)"
        )


#: Geforce GTX 745: 384 CUDA cores (3 Maxwell SMMs), 1033 MHz base clock,
#: 900 MHz memory clock (paper, Section V-A).
GTX745 = GpuSpec(
    name="GTX745",
    cuda_cores=384,
    sm_count=3,
    base_clock_mhz=1033.0,
    mem_clock_mhz=900.0,
    mem_bus_bytes=16,  # 128-bit DDR3 bus
)

#: Geforce GTX 680: 1536 CUDA cores (8 Kepler SMXs), 1058 MHz base clock,
#: 3004 MHz memory clock.
GTX680 = GpuSpec(
    name="GTX680",
    cuda_cores=1536,
    sm_count=8,
    base_clock_mhz=1058.0,
    mem_clock_mhz=3004.0,
    mem_bus_bytes=32,  # 256-bit GDDR5 bus
)

#: Tesla K20c: 2496 CUDA cores (13 Kepler SMXs), 706 MHz base clock,
#: 2600 MHz memory clock.
K20C = GpuSpec(
    name="K20c",
    cuda_cores=2496,
    sm_count=13,
    base_clock_mhz=706.0,
    mem_clock_mhz=2600.0,
    mem_bus_bytes=40,  # 320-bit GDDR5 bus
)

#: The paper's evaluation devices, by name.
KNOWN_GPUS: Dict[str, GpuSpec] = {
    GTX745.name: GTX745,
    GTX680.name: GTX680,
    K20C.name: K20C,
}

"""The 2D overlapped-tiling cost model for the native engine.

The paper's benefit model (Eq. 3–12) prices fusion on the GPU by how
much global-memory traffic a fused kernel saves against the shared
memory it must spend on halos.  On the CPU the same trade appears one
level down: a fused local-to-local chain evaluated tile-by-tile keeps
every intermediate stage resident in a small scratch buffer, paying a
*recompute overhead* on the halo ring of each tile instead of streaming
full-plane intermediates through cache once per consumer.  Following
Jangda & Guha's warp-overlapped tiling formulation, this module picks
the (tile_h × tile_w) shape minimizing

    cost(th, tw) = Σ_s  w_s · area_s(th, tw) / (th · tw) · a(ws)

where ``area_s`` is the halo-extended region stage ``s`` computes,
``w_s`` its per-pixel weight (tape length), and ``a(ws)`` an access
cost keyed to the cache level the total working set ``ws`` fits in
(:class:`repro.model.hardware.CpuCacheSpec`).

The model is deliberately **geometry-free**: tile shape depends only on
the stage margins, weights, element width, and the host cache spec —
never on the plane size — so a shape-polymorphic lowering emits
byte-identical C for every resolution and the structure-keyed plan
cache stays coherent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .hardware import CpuCacheSpec, detect_cpu_caches

__all__ = [
    "STACK_SCRATCH_CAP",
    "StageFootprint",
    "TileChoice",
    "choose_tile",
    "recompute_factor",
    "scratch_bytes",
    "sweep_tiles",
    "tile_cost",
]


#: Hard cap on per-tile stack scratch (bytes).  Tiles live on the
#: OpenMP worker stacks; 1 MiB leaves an order of magnitude of headroom
#: under the common 8 MiB default stack while still exceeding most L2s.
STACK_SCRATCH_CAP = 1 << 20


#: Candidate tile shapes (height, width).  Widths are kept >= 32 so the
#: innermost ``#pragma omp simd`` loop has full vectors to chew on, and
#: the grid is powers of two so halo fractions step smoothly.
DEFAULT_CANDIDATES: Tuple[Tuple[int, int], ...] = tuple(
    (th, tw)
    for th in (8, 16, 32, 64, 128)
    for tw in (32, 64, 128, 256, 512)
)


@dataclass(frozen=True)
class StageFootprint:
    """One stage of a fused chain, as the tiling model sees it.

    ``left``/``right``/``top``/``bottom`` are the halo margins the
    stage must be computed over (from the consumer-offset ledger in
    ``native_exec``); ``weight`` is its relative per-pixel compute cost
    (the stage tape's instruction count); ``materialized`` is False for
    the destination stage, which writes the output plane directly and
    needs no scratch.
    """

    name: str
    left: int = 0
    right: int = 0
    top: int = 0
    bottom: int = 0
    weight: float = 1.0
    materialized: bool = True

    def area(self, tile_h: int, tile_w: int) -> int:
        """Elements the stage computes per (tile_h × tile_w) tile."""
        return (tile_h + self.top + self.bottom) * (
            tile_w + self.left + self.right
        )


@dataclass(frozen=True)
class TileChoice:
    """A candidate (or chosen) tile shape with its model scores."""

    height: int
    width: int
    scratch_bytes: int
    recompute: float
    cost: float
    fits: str  # "L1" | "L2" | "L3"
    caches: CpuCacheSpec

    def describe(self) -> str:
        return (
            f"{self.height}x{self.width}: cost={self.cost:.3f} "
            f"recompute={self.recompute:.3f} "
            f"scratch={self.scratch_bytes // 1024}K (fits {self.fits})"
        )


def scratch_bytes(
    stages: Sequence[StageFootprint],
    tile_h: int,
    tile_w: int,
    bytes_per_element: int = 8,
) -> int:
    """Total per-tile scratch, summed over the materialized stages."""
    return sum(
        s.area(tile_h, tile_w) * bytes_per_element
        for s in stages
        if s.materialized
    )


def recompute_factor(
    stages: Sequence[StageFootprint], tile_h: int, tile_w: int
) -> float:
    """Weighted redundant-work factor of a tile shape (1.0 = no halo)."""
    total_weight = sum(s.weight for s in stages) or 1.0
    work = sum(s.weight * s.area(tile_h, tile_w) for s in stages)
    return work / (total_weight * tile_h * tile_w)


def _working_set(
    stages: Sequence[StageFootprint], tile_h: int, tile_w: int, bpe: int
) -> int:
    # Scratch plus the output tile and one halo-extended input tile:
    # the streams the tile stack touches besides its own buffers.
    max_l = max((s.left for s in stages), default=0)
    max_r = max((s.right for s in stages), default=0)
    max_t = max((s.top for s in stages), default=0)
    max_b = max((s.bottom for s in stages), default=0)
    io = tile_h * tile_w + (tile_h + max_t + max_b) * (tile_w + max_l + max_r)
    return scratch_bytes(stages, tile_h, tile_w, bpe) + io * bpe


def _access_cost(working_set: int, caches: CpuCacheSpec) -> Tuple[float, str]:
    if working_set <= caches.l1d_bytes:
        return 1.0, "L1"
    if working_set <= caches.l2_bytes:
        return 4.0, "L2"
    return 12.0, "L3"


def tile_cost(
    stages: Sequence[StageFootprint],
    tile_h: int,
    tile_w: int,
    caches: Optional[CpuCacheSpec] = None,
    bytes_per_element: int = 8,
) -> TileChoice:
    """Score one tile shape (lower cost is better)."""
    caches = caches or detect_cpu_caches()
    scratch = scratch_bytes(stages, tile_h, tile_w, bytes_per_element)
    recompute = recompute_factor(stages, tile_h, tile_w)
    ws = _working_set(stages, tile_h, tile_w, bytes_per_element)
    access, fits = _access_cost(ws, caches)
    total_weight = sum(s.weight for s in stages) or 1.0
    cost = recompute * total_weight * access
    return TileChoice(
        height=tile_h,
        width=tile_w,
        scratch_bytes=scratch,
        recompute=recompute,
        cost=cost,
        fits=fits,
        caches=caches,
    )


def _feasible(choice: TileChoice, caches: CpuCacheSpec) -> bool:
    cap = min(STACK_SCRATCH_CAP, max(caches.l2_bytes, caches.l1d_bytes))
    return choice.scratch_bytes <= cap


def sweep_tiles(
    stages: Sequence[StageFootprint],
    caches: Optional[CpuCacheSpec] = None,
    bytes_per_element: int = 8,
    candidates: Optional[Sequence[Tuple[int, int]]] = None,
) -> Tuple[TileChoice, ...]:
    """Score every candidate shape, best (lowest cost) first.

    Ties break toward wider tiles (longer contiguous ``simd`` runs,
    fewer partial vectors), then taller ones (fewer halo rows).
    """
    caches = caches or detect_cpu_caches()
    scored = [
        tile_cost(stages, th, tw, caches, bytes_per_element)
        for th, tw in (candidates or DEFAULT_CANDIDATES)
    ]
    feasible = [c for c in scored if _feasible(c, caches)]
    feasible.sort(key=lambda c: (round(c.cost, 9), -c.width, -c.height))
    return tuple(feasible)


def choose_tile(
    stages: Sequence[StageFootprint],
    caches: Optional[CpuCacheSpec] = None,
    bytes_per_element: int = 8,
    candidates: Optional[Sequence[Tuple[int, int]]] = None,
) -> Optional[TileChoice]:
    """The model's pick, or ``None`` when no candidate fits the caps.

    ``None`` tells the native lowering to keep the classic row-tiled
    form: a chain whose margins blow every candidate past the scratch
    cap gains nothing from overlapped tiling anyway.
    """
    ranked = sweep_tiles(stages, caches, bytes_per_element, candidates)
    return ranked[0] if ranked else None

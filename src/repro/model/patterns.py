"""Compute-pattern classification (Section II-C1).

The classification itself lives on :class:`~repro.dsl.kernel.Kernel`
(``kernel.pattern``) because it is derived from the kernel body; this
module provides the model-level helpers and predicates used by the
benefit estimation and the fusion engines.
"""

from __future__ import annotations

from repro.dsl.kernel import ComputePattern, Kernel

__all__ = ["ComputePattern", "classify", "is_point", "is_local", "is_global"]


def classify(kernel: Kernel) -> ComputePattern:
    """Classify a kernel as point / local / global.

    * **point**: one input pixel per output pixel (offset ``(0, 0)``
      reads only) — e.g. gamma correction, tone mapping;
    * **local**: a bounded window of input pixels — e.g. Gaussian or
      median filters;
    * **global**: whole-image reductions — e.g. histograms.  Global
      operators never fuse (the paper targets point and local patterns).
    """
    return kernel.pattern


def is_point(kernel: Kernel) -> bool:
    """Whether the kernel is a point operator."""
    return kernel.pattern is ComputePattern.POINT


def is_local(kernel: Kernel) -> bool:
    """Whether the kernel is a local (windowed) operator."""
    return kernel.pattern is ComputePattern.LOCAL


def is_global(kernel: Kernel) -> bool:
    """Whether the kernel is a global (reduction) operator."""
    return kernel.pattern is ComputePattern.GLOBAL

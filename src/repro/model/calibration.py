"""Calibrating the performance simulator against published numbers.

The simulator's constants (DRAM efficiency, memory/compute overlap,
launch overhead, SFU cost) are physical estimates, not measurements of
the authors' testbed.  This module fits them: a derivative-free
optimizer (scipy's Nelder–Mead) minimizes the squared log-error between
the simulated speedup tables and the paper's published Table I, over
user-selected knobs with physical bounds.

Calibration never touches the *decision* side of the reproduction —
edge weights, legality, and partitions use the paper's own constants
(``t_g = 400``, ``c_ALU = 4``) throughout; only the milliseconds
reported by the simulator move.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.apps import APPLICATIONS
from repro.eval.runner import partition_for
from repro.eval.tables import GPU_ORDER, PAPER_TABLE1
from repro.model.hardware import GTX680, GTX745, K20C, GpuSpec

#: Knobs the optimizer may move, with physical bounds.
KNOB_BOUNDS: Dict[str, Tuple[float, float]] = {
    "dram_efficiency": (0.3, 0.95),
    "overlap": (0.0, 1.0),
    "launch_overhead_us": (1.0, 50.0),
    "c_sfu": (4.0, 64.0),
    "border_penalty_cycles": (0.0, 200.0),
    "occupancy_saturation": (0.05, 1.0),
}

#: The comparisons used as the fitting target.
_FIT_COMPARISONS = (
    ("baseline", "optimized", "optimized/baseline"),
    ("baseline", "basic", "basic/baseline"),
)

_BASE_GPUS = (GTX745, GTX680, K20C)


def _apply_knobs(gpu: GpuSpec, knobs: Dict[str, float]) -> GpuSpec:
    return replace(gpu, **knobs)


#: Lazily-built cache of fused launch lists per application and version.
#: Pipelines and fusion decisions are knob-independent (decisions use
#: the paper's model constants), so only the per-kernel timing re-runs
#: per objective evaluation — and the fused Kernel objects are reused,
#: keeping their cached derived properties warm.
_PREPARED: Dict[str, Dict[str, list]] = {}


def _prepared() -> Dict[str, Dict[str, list]]:
    if not _PREPARED:
        from repro.fusion.fuser import fuse_partition

        for app_name, spec in APPLICATIONS.items():
            graph = spec.pipeline().build()
            _PREPARED[app_name] = {
                version: fuse_partition(
                    graph, partition_for(graph, GTX680, version)
                )
                for version in ("baseline", "basic", "optimized")
            }
    return _PREPARED


def simulated_table1(
    knobs: Dict[str, float] | None = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Noise-free Table I from the simulator under the given knobs."""
    from repro.backend.launch import simulate_kernels

    knobs = knobs or {}
    gpus = [_apply_knobs(gpu, knobs) for gpu in _BASE_GPUS]
    table: Dict[str, Dict[str, Dict[str, float]]] = {
        label: {gpu.name: {} for gpu in gpus}
        for _, _, label in _FIT_COMPARISONS
    }
    for app_name, launches in _prepared().items():
        for gpu in gpus:
            times = {
                version: simulate_kernels(kernels, gpu).total_ms
                for version, kernels in launches.items()
            }
            for slow, fast, label in _FIT_COMPARISONS:
                table[label][gpu.name][app_name] = (
                    times[slow] / times[fast]
                )
    return table


def table1_loss(table: Dict[str, Dict[str, Dict[str, float]]]) -> float:
    """Mean squared log-error against the published Table I cells."""
    errors: List[float] = []
    for _, _, label in _FIT_COMPARISONS:
        for gpu_name in GPU_ORDER:
            for app_name, paper_value in PAPER_TABLE1[label][gpu_name].items():
                measured = table[label][gpu_name][app_name]
                errors.append(
                    (math.log(measured) - math.log(paper_value)) ** 2
                )
    return sum(errors) / len(errors)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a calibration run."""

    knobs: Dict[str, float]
    loss_before: float
    loss_after: float
    evaluations: int

    @property
    def improvement(self) -> float:
        """Relative loss reduction (0..1)."""
        if self.loss_before == 0.0:
            return 0.0
        return 1.0 - self.loss_after / self.loss_before

    def describe(self) -> str:
        knob_text = ", ".join(
            f"{name}={value:.3g}" for name, value in self.knobs.items()
        )
        return (
            f"calibrated [{knob_text}] — loss {self.loss_before:.4f} -> "
            f"{self.loss_after:.4f} ({self.improvement:.0%} better, "
            f"{self.evaluations} evaluations)"
        )


def calibrate(
    knob_names: Sequence[str] = ("dram_efficiency", "overlap",
                                 "launch_overhead_us", "c_sfu"),
    max_evaluations: int = 120,
) -> CalibrationResult:
    """Fit the selected knobs to the published Table I.

    Uses scipy's Nelder–Mead with bound clipping; each objective
    evaluation simulates the full 6 x 3 x 3 matrix (noise-free).
    """
    from scipy.optimize import minimize

    for name in knob_names:
        if name not in KNOB_BOUNDS:
            raise ValueError(f"unknown calibration knob {name!r}")

    defaults = {name: getattr(GTX680, name) for name in knob_names}
    x0 = [defaults[name] for name in knob_names]
    counter = {"n": 0}

    def objective(x) -> float:
        counter["n"] += 1
        knobs = {}
        for name, value in zip(knob_names, x):
            lo, hi = KNOB_BOUNDS[name]
            knobs[name] = float(min(max(value, lo), hi))
        return table1_loss(simulated_table1(knobs))

    loss_before = table1_loss(simulated_table1({}))
    result = minimize(
        objective,
        x0,
        method="Nelder-Mead",
        options={"maxfev": max_evaluations, "xatol": 1e-3, "fatol": 1e-5},
    )
    fitted = {}
    for name, value in zip(knob_names, result.x):
        lo, hi = KNOB_BOUNDS[name]
        fitted[name] = float(min(max(value, lo), hi))
    loss_after = table1_loss(simulated_table1(fitted))
    if loss_after > loss_before:  # optimizer wandered off: keep defaults
        fitted, loss_after = defaults, loss_before
    return CalibrationResult(
        knobs=fitted,
        loss_before=loss_before,
        loss_after=loss_after,
        evaluations=counter["n"],
    )

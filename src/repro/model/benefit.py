"""The analytic benefit model (Section II-C).

Every edge ``(k_s, k_d)`` of the kernel DAG receives a weight: the
number of execution cycles saved by fusing its endpoints.  The weight
combines

* the **locality improvement** δ of relocating the intermediate image
  ``i_e`` out of global memory — to registers (Eq. 4,
  ``δ_reg = IS(i) * t_g``) or to shared memory (Eq. 3,
  ``δ_Mshared = IS(i) * t_g / t_s``);
* the **redundant computation cost** φ when a local consumer forces the
  producer to be recomputed per window element (Eq. 7 / Eq. 10,
  ``φ = cost_op * IS_ks * sz``), with the producer cost from Eq. (6)
  (``cost_op = c_ALU * n_ALU + c_SFU * n_SFU``) and the fused-window
  growth ``g`` of Eq. (9) for local-to-local pairs;
* an **additional gain** γ (launch-overhead elimination etc.) and the
  clamp of Eq. (12): ``w_e = max(w + γ, ε)``.

Four scenarios are distinguished (Section II-C3): illegal, point-based,
point-to-local, and local-to-local.  A non-positive benefit is treated
as an illegal scenario — the fusion must not be performed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.analysis.diagnostics import diag
from repro.dsl.image import Image
from repro.dsl.kernel import ComputePattern, Kernel
from repro.graph.dag import Edge, KernelGraph
from repro.model.hardware import GpuSpec
from repro.model.legality import (
    LegalityReport,
    check_block_legality,
    check_dependences,
    check_headers,
    check_resources,
)


class FusionScenario(enum.Enum):
    """The four fusion scenarios of Section II-C3."""

    ILLEGAL = "illegal"
    POINT_BASED = "point-based"
    POINT_TO_LOCAL = "point-to-local"
    LOCAL_TO_LOCAL = "local-to-local"


@dataclass(frozen=True)
class BenefitConfig:
    """Tunable constants of the benefit model.

    ``is_units`` selects the unit of iteration-space sizes: ``"images"``
    replaces ``IS`` by the number of images (valid for constant-size
    pipelines, and what the paper's Harris walk-through does), while
    ``"pixels"`` uses actual element counts.  Relative edge weights —
    and therefore all fusion decisions — are identical for constant-size
    pipelines; ``"images"`` reproduces the paper's published weights
    (328, 256) exactly.

    ``c_mshared`` is the user threshold of Eq. (2); the paper uses 2.
    ``epsilon`` is the arbitrarily small positive weight of illegal
    edges; ``gamma`` the flat additional gain of Eq. (12).
    """

    c_mshared: float = 2.0
    epsilon: float = 1e-3
    gamma: float = 0.0
    is_units: str = "images"

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive (Algorithm 1 requires it)")
        if self.c_mshared < 1:
            raise ValueError("cMshared below 1 forbids every fusion")
        if self.is_units not in ("images", "pixels"):
            raise ValueError(f"unknown is_units {self.is_units!r}")

    def iteration_units(self, image: Image) -> float:
        """``IS(i)`` in the configured unit."""
        if self.is_units == "images":
            return 1.0
        return float(image.size)


@dataclass(frozen=True)
class EdgeEstimate:
    """The benefit model's verdict for one edge.

    ``raw_benefit`` is ``w`` before the γ/ε combination (``None`` when
    the scenario is illegal).  ``weight`` is the final Eq. (12) value.
    ``profitable`` records whether ``w + γ > 0`` — non-profitable edges
    are treated as illegal scenarios by the fusion algorithm.
    """

    edge: Edge
    scenario: FusionScenario
    weight: float
    raw_benefit: float | None = None
    delta: float = 0.0
    phi: float = 0.0
    pairwise_legal: bool = False
    profitable: bool = False
    reasons: Tuple[str, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        head = (
            f"{self.edge.src} -> {self.edge.dst} [{self.scenario.value}] "
            f"w={self.weight:g}"
        )
        if self.raw_benefit is not None:
            head += f" (delta={self.delta:g}, phi={self.phi:g})"
        if self.reasons:
            head += f" ({'; '.join(self.reasons)})"
        return head


def fused_mask_growth(sz_source: int, sz_destination: int) -> int:
    """Eq. (9): window footprint of a fused local-to-local pair.

    For square masks: fusing a 3x3 source into a 3x3 destination yields
    a 5x5 fused window (25); 3x3 into 5x5 yields 7x7 (49).
    """
    if sz_source < 1 or sz_destination < 1:
        raise ValueError("window sizes must be >= 1")
    side = math.isqrt(sz_destination) + (math.isqrt(sz_source) // 2) * 2
    return side * side


def producer_cost_op(kernel: Kernel, gpu: GpuSpec) -> float:
    """Eq. (6): arithmetic cost of one producer evaluation, in cycles."""
    return kernel.op_counts.cycles(gpu.c_alu, gpu.c_sfu)


def producer_input_units(kernel: Kernel, config: BenefitConfig) -> float:
    """``IS_ks``: summed iteration-space size of the producer's inputs."""
    return sum(config.iteration_units(image) for image in kernel.input_images)


def estimate_edge(
    graph: KernelGraph,
    edge: Edge,
    gpu: GpuSpec,
    config: BenefitConfig | None = None,
) -> EdgeEstimate:
    """Estimate the fusion benefit of one edge (Section II-C3)."""
    config = config or BenefitConfig()
    source = graph.kernel(edge.src)
    destination = graph.kernel(edge.dst)
    intermediate = None
    for image in destination.input_images:
        if image.name == edge.image:
            intermediate = image
            break
    if intermediate is None:  # pragma: no cover - graph invariant
        raise ValueError(f"edge image {edge.image!r} not read by {edge.dst!r}")

    reasons: list[str] = []

    # -- scenario from patterns and headers --------------------------------
    if source.pattern is ComputePattern.GLOBAL or (
        destination.pattern is ComputePattern.GLOBAL
    ):
        reasons.append("global operators do not fuse")
        scenario = FusionScenario.ILLEGAL
    elif check_headers(graph, [edge.src, edge.dst]):
        reasons.extend(check_headers(graph, [edge.src, edge.dst]))
        scenario = FusionScenario.ILLEGAL
    elif destination.pattern is ComputePattern.POINT:
        scenario = FusionScenario.POINT_BASED
    elif source.pattern is ComputePattern.POINT:
        scenario = FusionScenario.POINT_TO_LOCAL
    else:
        scenario = FusionScenario.LOCAL_TO_LOCAL

    if scenario is FusionScenario.ILLEGAL:
        return EdgeEstimate(
            edge=edge,
            scenario=scenario,
            weight=config.epsilon,
            reasons=tuple(reasons),
        )

    # -- locality improvement and redundant computation --------------------
    is_ie = config.iteration_units(intermediate)
    if scenario is FusionScenario.POINT_BASED:
        # Eq. (5): the intermediate pixel stays in a register.
        delta = is_ie * gpu.t_global
        phi = 0.0
    elif scenario is FusionScenario.POINT_TO_LOCAL:
        # Eq. (8): register locality, producer recomputed sz(k_d) times.
        delta = is_ie * gpu.t_global
        phi = (
            producer_cost_op(source, gpu)
            * producer_input_units(source, config)
            * destination.window_size
        )
    else:
        # Eq. (11): shared-memory locality, fused-window recomputation.
        delta = is_ie * gpu.global_to_shared_ratio
        phi = (
            producer_cost_op(source, gpu)
            * producer_input_units(source, config)
            * fused_mask_growth(source.window_size, destination.window_size)
        )

    raw = delta - phi
    profitable = raw + config.gamma > 0
    if not profitable:
        reasons.append(
            f"redundant computation outweighs locality "
            f"(delta={delta:g}, phi={phi:g})"
        )

    # -- pairwise structural legality (Fig. 2 + Eq. 2 on the pair) ---------
    pair = [edge.src, edge.dst]
    pair_problems = check_dependences(graph, pair)
    pair_problems.extend(check_resources(graph, pair, gpu, config.c_mshared))
    pairwise_legal = not pair_problems
    reasons.extend(pair_problems)

    weight = max(raw + config.gamma, config.epsilon)
    if not pairwise_legal:
        weight = config.epsilon

    return EdgeEstimate(
        edge=edge,
        scenario=scenario,
        weight=weight,
        raw_benefit=raw,
        delta=delta,
        phi=phi,
        pairwise_legal=pairwise_legal,
        profitable=profitable,
        reasons=tuple(reasons),
    )


class WeightedGraph:
    """A kernel DAG with benefit estimates on every edge.

    This is the input of every fusion engine: the weighted graph plus
    per-edge :class:`EdgeEstimate` diagnostics, the device, and the
    model configuration.  It also implements the complete ``IsLegal``
    predicate of Algorithm 1 — structural legality *plus* the rule that
    edges with non-positive benefit are treated as illegal scenarios and
    therefore must not end up inside a fused block.
    """

    def __init__(
        self,
        graph: KernelGraph,
        gpu: GpuSpec,
        config: BenefitConfig | None = None,
    ):
        self.config = config or BenefitConfig()
        self.gpu = gpu
        self.estimates: Dict[Tuple[str, str], EdgeEstimate] = {}
        weights: Dict[Tuple[str, str], float] = {}
        for edge in graph.edges:
            estimate = estimate_edge(graph, edge, gpu, self.config)
            self.estimates[edge.key] = estimate
            weights[edge.key] = estimate.weight
        self.graph = graph.with_weights(weights)

    def estimate(self, src: str, dst: str) -> EdgeEstimate:
        return self.estimates[(src, dst)]

    def fusible_edge(self, src: str, dst: str) -> bool:
        """Whether the pair alone forms a legal, profitable fusion."""
        estimate = self.estimates[(src, dst)]
        return estimate.pairwise_legal and estimate.profitable

    def block_legality(self, vertices: Iterable[str]) -> LegalityReport:
        """Full ``IsLegal(p)``: structure, resources, headers, benefit."""
        vertex_list = list(vertices)
        report = check_block_legality(
            self.graph, vertex_list, self.gpu, self.config.c_mshared
        )
        diagnostics = list(report.diagnostics)
        vertex_set = set(vertex_list)
        if len(vertex_list) > 1:
            for edge in self.graph.induced_edges(vertex_set):
                estimate = self.estimates[edge.key]
                if estimate.raw_benefit is not None and not estimate.profitable:
                    diagnostics.append(
                        diag(
                            "FUS010",
                            f"edge {edge.src!r}->{edge.dst!r} has non-positive "
                            "benefit and is treated as an illegal scenario",
                            kernel=edge.dst,
                            src=edge.src,
                            dst=edge.dst,
                            raw_benefit=estimate.raw_benefit,
                            delta=estimate.delta,
                            phi=estimate.phi,
                            scenario=estimate.scenario.value,
                        )
                    )
        return LegalityReport.from_diagnostics(diagnostics)

    def is_legal_block(self, vertices: Iterable[str]) -> bool:
        return bool(self.block_legality(vertices))

    def describe_edges(self) -> str:
        """One line per edge with scenario and weight (diagnostics)."""
        return "\n".join(
            self.estimates[e.key].describe() for e in self.graph.edges
        )


def estimate_graph(
    graph: KernelGraph,
    gpu: GpuSpec,
    config: BenefitConfig | None = None,
) -> WeightedGraph:
    """Assign benefit weights to every edge (lines 2–4 of Algorithm 1)."""
    return WeightedGraph(graph, gpu, config)

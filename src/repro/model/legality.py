"""Legality of partition blocks (Section II-B).

A partition block is legal when all its kernels can be fused into one
kernel:

1. **Dependences** — fusing must not introduce external dependences
   (Fig. 2).  After fusion, only the inputs read by the block's *source*
   kernels and the output of the single *destination* kernel remain in
   global memory (Listing 1); therefore

   * exactly one member's output may escape the block (be consumed
     outside it or be a pipeline output) — Fig. 2c is the violation;
   * every image read from outside the block must be an input of some
     source kernel — sharing the source input inside the block (Fig. 2b)
     is legal, reading an unrelated external image (Fig. 2d) is not.

2. **Resources** — Eq. (2): the fused shared-memory footprint may not
   exceed ``cMshared`` times the largest member footprint, nor the
   device's per-block shared-memory limit.

3. **Headers** — all members must have the same iteration-space size and
   access granularity, and none may be a global operator.

4. **Connectivity** — a partition block is a connected subset of ``G``
   (Section II); fusing unrelated kernels expresses no locality benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.dsl.kernel import ComputePattern
from repro.graph.dag import KernelGraph
from repro.graph.partition import PartitionBlock
from repro.model.hardware import GpuSpec
from repro.model.resources import block_shared_bytes, shared_memory_ratio


@dataclass(frozen=True)
class LegalityReport:
    """Outcome of all legality checks for one candidate block."""

    legal: bool
    reasons: Tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def ok(cls) -> "LegalityReport":
        return cls(True)

    @classmethod
    def fail(cls, reasons: List[str]) -> "LegalityReport":
        return cls(False, tuple(reasons))

    def __bool__(self) -> bool:
        return self.legal


def check_dependences(graph: KernelGraph, vertices: Iterable[str]) -> List[str]:
    """Fig. 2 external-dependence checks; returns violation messages."""
    block = PartitionBlock(graph, vertices)
    problems: List[str] = []

    destinations = block.destination_kernels()
    if len(destinations) > 1:
        problems.append(
            "external output dependence: outputs of "
            f"{sorted(destinations)} all escape the block (Fig. 2c)"
        )
    elif not destinations:
        problems.append("block has no escaping output (dead code?)")

    source_inputs = set()
    for name in block.source_kernels():
        source_inputs.update(graph.kernel(name).input_names)
    produced = {graph.kernel(n).output.name for n in block.vertices}
    for name in block.ordered_vertices():
        for image in graph.kernel(name).input_names:
            if image in produced or image in source_inputs:
                continue
            problems.append(
                f"external input dependence: {name!r} reads {image!r}, "
                "which no source kernel of the block reads (Fig. 2d)"
            )
    return problems


def check_resources(
    graph: KernelGraph,
    vertices: Iterable[str],
    gpu: GpuSpec,
    c_mshared: float,
) -> List[str]:
    """Eq. (2) plus the absolute device limit."""
    vertex_list = list(vertices)
    problems: List[str] = []
    ratio = shared_memory_ratio(graph, vertex_list)
    if ratio > c_mshared:
        problems.append(
            f"shared memory ratio {ratio:.2f} exceeds cMshared={c_mshared:g} "
            "(Eq. 2)"
        )
    total = block_shared_bytes(graph, vertex_list)
    if total > gpu.shared_mem_per_block:
        problems.append(
            f"fused kernel needs {total} B shared memory, device limit is "
            f"{gpu.shared_mem_per_block} B"
        )
    return problems


def check_headers(graph: KernelGraph, vertices: Iterable[str]) -> List[str]:
    """Same iteration space, same granularity, no global operators."""
    vertex_list = list(vertices)
    problems: List[str] = []
    kernels = [graph.kernel(name) for name in vertex_list]
    for kernel in kernels:
        if kernel.pattern is ComputePattern.GLOBAL and len(vertex_list) > 1:
            problems.append(
                f"{kernel.name!r} is a global operator and cannot fuse"
            )
    reference = kernels[0]
    for kernel in kernels[1:]:
        if not kernel.space.compatible_with(reference.space):
            problems.append(
                f"iteration space mismatch: {reference.name!r} is "
                f"{reference.space}, {kernel.name!r} is {kernel.space}"
            )
        if kernel.granularity != reference.granularity:
            problems.append(
                f"access granularity mismatch: {reference.name!r} has "
                f"{reference.granularity}, {kernel.name!r} has "
                f"{kernel.granularity}"
            )
    return problems


def check_block_legality(
    graph: KernelGraph,
    vertices: Iterable[str],
    gpu: GpuSpec,
    c_mshared: float = 2.0,
) -> LegalityReport:
    """The paper's ``IsLegal(p)`` structural checks.

    Profitability of intra-block edges (benefit > 0, treated as an
    illegal scenario otherwise) is layered on top by the fusion
    algorithm, because it needs the edge estimates of the benefit model.
    """
    vertex_list = list(vertices)
    if len(vertex_list) == 1:
        return LegalityReport.ok()
    problems: List[str] = []
    if not graph.is_connected(set(vertex_list)):
        problems.append("block is not connected")
    problems.extend(check_headers(graph, vertex_list))
    problems.extend(check_dependences(graph, vertex_list))
    problems.extend(check_resources(graph, vertex_list, gpu, c_mshared))
    if problems:
        return LegalityReport.fail(problems)
    return LegalityReport.ok()

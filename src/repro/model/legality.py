"""Legality of partition blocks (Section II-B).

A partition block is legal when all its kernels can be fused into one
kernel:

1. **Dependences** — fusing must not introduce external dependences
   (Fig. 2).  After fusion, only the inputs read by the block's *source*
   kernels and the output of the single *destination* kernel remain in
   global memory (Listing 1); therefore

   * exactly one member's output may escape the block (be consumed
     outside it or be a pipeline output) — Fig. 2c is the violation;
   * every image read from outside the block must be an input of some
     source kernel — sharing the source input inside the block (Fig. 2b)
     is legal, reading an unrelated external image (Fig. 2d) is not.

2. **Resources** — Eq. (2): the fused shared-memory footprint may not
   exceed ``cMshared`` times the largest member footprint, nor the
   device's per-block shared-memory limit.

3. **Headers** — all members must have the same iteration-space size and
   access granularity, and none may be a global operator.

4. **Connectivity** — a partition block is a connected subset of ``G``
   (Section II); fusing unrelated kernels expresses no locality benefit.

The checks themselves live in :mod:`repro.analysis.explain`, which
reports each violation as a structured
:class:`~repro.analysis.diagnostics.Diagnostic` (stable code, Fig. 2
scenario, Eq. 2 arithmetic).  This module keeps the historical
string-based API on top: ``check_*`` return the diagnostic messages,
and :class:`LegalityReport` carries both forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.explain import (
    explain_block,
    explain_dependences,
    explain_headers,
    explain_resources,
)
from repro.graph.dag import KernelGraph
from repro.model.hardware import GpuSpec


@dataclass(frozen=True)
class LegalityReport:
    """Outcome of all legality checks for one candidate block.

    ``reasons`` are the human-readable messages (historical API);
    ``diagnostics`` the structured records behind them, when the report
    came from :func:`check_block_legality`.
    """

    legal: bool
    reasons: Tuple[str, ...] = field(default_factory=tuple)
    diagnostics: Tuple[Diagnostic, ...] = field(
        default_factory=tuple, compare=False
    )

    @classmethod
    def ok(cls) -> "LegalityReport":
        return cls(True)

    @classmethod
    def fail(cls, reasons: List[str]) -> "LegalityReport":
        return cls(False, tuple(reasons))

    @classmethod
    def from_diagnostics(
        cls, diagnostics: Sequence[Diagnostic]
    ) -> "LegalityReport":
        return cls(
            legal=not diagnostics,
            reasons=tuple(d.message for d in diagnostics),
            diagnostics=tuple(diagnostics),
        )

    def __bool__(self) -> bool:
        return self.legal


def check_dependences(graph: KernelGraph, vertices: Iterable[str]) -> List[str]:
    """Fig. 2 external-dependence checks; returns violation messages."""
    return [d.message for d in explain_dependences(graph, vertices)]


def check_resources(
    graph: KernelGraph,
    vertices: Iterable[str],
    gpu: GpuSpec,
    c_mshared: float,
) -> List[str]:
    """Eq. (2) plus the absolute device limit."""
    return [d.message for d in explain_resources(graph, vertices, gpu, c_mshared)]


def check_headers(graph: KernelGraph, vertices: Iterable[str]) -> List[str]:
    """Same iteration space, same granularity, no global operators."""
    return [d.message for d in explain_headers(graph, vertices)]


def check_block_legality(
    graph: KernelGraph,
    vertices: Iterable[str],
    gpu: GpuSpec,
    c_mshared: float = 2.0,
) -> LegalityReport:
    """The paper's ``IsLegal(p)`` structural checks.

    Profitability of intra-block edges (benefit > 0, treated as an
    illegal scenario otherwise) is layered on top by the fusion
    algorithm, because it needs the edge estimates of the benefit model.
    """
    return LegalityReport.from_diagnostics(
        explain_block(graph, vertices, gpu, c_mshared)
    )

"""Shared-memory footprint estimation (Section II-B1).

Local operators stage their inputs in shared memory: a thread block of
shape ``(Bx, By)`` computing a kernel with window radius ``(rx, ry)``
loads a tile of ``(Bx + 2*rx) * (By + 2*ry)`` pixels per input.  Point
and global operators stream from global memory and use no shared
memory.

For a *fused* block, every member kernel that used shared memory still
stages its (now register/shared-resident) input tile, so footprints
add up.  This reproduces the paper's Harris analysis: five local
kernels fused into one consume five tiles — "the memory consumption
increases five times" — which violates Eq. (2) at the paper's threshold
``cMshared = 2``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.dsl.kernel import Kernel
from repro.graph.dag import KernelGraph


def tile_shape(
    block_shape: Tuple[int, int], radius: Tuple[int, int]
) -> Tuple[int, int]:
    """Shared-memory tile shape for a thread block and window radius."""
    bx, by = block_shape
    rx, ry = radius
    return bx + 2 * rx, by + 2 * ry


def input_tile_bytes(kernel: Kernel, image_name: str) -> int:
    """Bytes staged for one input image of a local kernel.

    The tile halo uses the extent of the kernel's reads *of that image*
    (a kernel may read one image through a window and another at a
    point).
    """
    offsets = kernel.reads().get(image_name, set())
    if not offsets:
        return 0
    rx = max(abs(dx) for dx, _ in offsets)
    ry = max(abs(dy) for _, dy in offsets)
    if rx == 0 and ry == 0:
        return 0  # point access streams through registers, no staging
    tx, ty = tile_shape(kernel.block_shape, (rx, ry))
    return tx * ty * kernel.accessor_for(image_name).image.bytes_per_pixel


def kernel_shared_bytes(kernel: Kernel) -> int:
    """The paper's ``fMshared(v)``: shared memory used by one kernel."""
    if not kernel.uses_shared_memory:
        return 0
    return sum(input_tile_bytes(kernel, name) for name in kernel.input_names)


def block_shared_bytes(graph: KernelGraph, vertices: Iterable[str]) -> int:
    """``fMshared(v_P)``: shared memory of the fused kernel of a block.

    Each shared-memory-using member still stages one tile per windowed
    input after fusion (the data now lives in shared memory instead of
    global memory, but the staging buffer remains), so the fused
    footprint is the sum of the member footprints.
    """
    return sum(kernel_shared_bytes(graph.kernel(name)) for name in vertices)


def max_member_shared_bytes(graph: KernelGraph, vertices: Iterable[str]) -> int:
    """Denominator of Eq. (2): the largest member footprint."""
    return max(
        (kernel_shared_bytes(graph.kernel(name)) for name in vertices),
        default=0,
    )


def shared_memory_ratio(graph: KernelGraph, vertices: Iterable[str]) -> float:
    """Left-hand side of Eq. (2).

    Defined as 1.0 when no member uses shared memory (fusing pure point
    kernels never stresses the resource).
    """
    vertex_list = list(vertices)
    denominator = max_member_shared_bytes(graph, vertex_list)
    if denominator == 0:
        return 1.0
    return block_shared_bytes(graph, vertex_list) / denominator


def estimated_registers_per_thread(kernel: Kernel) -> int:
    """A coarse register-pressure estimate for the occupancy model.

    The paper observed no register-pressure increase from fusion
    (bodies are concatenated, intermediate values are consumed
    immediately); we model per-thread registers as a base cost plus one
    register per live input and a slowly growing term in the number of
    operations.
    """
    ops = kernel.op_counts.total
    return 16 + 2 * len(kernel.accessors) + min(ops // 8, 48)

"""Thread-block shape tuning.

Hipacc exposes the CUDA block configuration per kernel; the choice
trades shared-memory tile overhead (wide halos favour larger blocks)
against occupancy (large blocks with big tiles exhaust shared memory).
This pass picks, per launch, the candidate block shape with the best
simulated time — a miniature version of the exploration an autotuner
would run on hardware.

Fusion interacts with the choice: a fused kernel's tile footprint is
the sum of its members', so the best block shape can shift after
fusion — the ablation bench records where it does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.backend.memsim import analyze_kernel, estimate_kernel_time
from repro.dsl.kernel import Kernel
from repro.fusion.fuser import fuse_partition
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition
from repro.model.hardware import GpuSpec

#: Candidate shapes: powers of two, 64..1024 threads, GPU-typical.
DEFAULT_CANDIDATES: Tuple[Tuple[int, int], ...] = (
    (32, 2), (32, 4), (32, 8), (64, 4), (32, 16), (64, 8), (128, 4),
    (16, 16), (32, 32),
)


@dataclass(frozen=True)
class TuneResult:
    """Best block shape found for one kernel on one device."""

    kernel: str
    best_shape: Tuple[int, int]
    best_ms: float
    default_shape: Tuple[int, int]
    default_ms: float

    @property
    def gain(self) -> float:
        """Speedup of the tuned shape over the kernel's default."""
        return self.default_ms / self.best_ms

    def describe(self) -> str:
        bx, by = self.best_shape
        return (
            f"{self.kernel}: best {bx}x{by} at {self.best_ms:.4f} ms "
            f"({self.gain:.2f}x over default "
            f"{self.default_shape[0]}x{self.default_shape[1]})"
        )


def _with_shape(kernel: Kernel, shape: Tuple[int, int]) -> Kernel:
    """A shallow re-shaped view of a kernel (analysis only)."""
    import copy

    clone = copy.copy(kernel)
    clone.block_shape = shape
    return clone


def tune_kernel(
    kernel: Kernel,
    gpu: GpuSpec,
    candidates: Sequence[Tuple[int, int]] = DEFAULT_CANDIDATES,
) -> TuneResult:
    """Pick the simulated-best block shape for one kernel."""
    default_ms = estimate_kernel_time(kernel, gpu)
    best_shape = kernel.block_shape
    best_ms = default_ms
    for shape in candidates:
        bx, by = shape
        if bx * by > gpu.max_threads_per_block:
            continue
        candidate_ms = analyze_kernel(_with_shape(kernel, shape), gpu).time_ms
        if candidate_ms < best_ms - 1e-12:
            best_shape = shape
            best_ms = candidate_ms
    return TuneResult(
        kernel=kernel.name,
        best_shape=best_shape,
        best_ms=best_ms,
        default_shape=kernel.block_shape,
        default_ms=default_ms,
    )


def tune_partition(
    graph: KernelGraph,
    partition: Partition,
    gpu: GpuSpec,
    candidates: Sequence[Tuple[int, int]] = DEFAULT_CANDIDATES,
) -> List[TuneResult]:
    """Tune every launch of a partitioned pipeline."""
    return [
        tune_kernel(kernel, gpu, candidates)
        for kernel in fuse_partition(graph, partition)
    ]


def tuned_total_ms(results: Sequence[TuneResult]) -> float:
    """Pipeline kernel time under the tuned shapes."""
    return sum(result.best_ms for result in results)

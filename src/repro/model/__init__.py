"""Analysis and benefit estimation (Sections II-B and II-C of the paper).

* :mod:`repro.model.hardware` — the simplified GPU memory model
  (global / shared / register access costs) and the three evaluation
  GPUs,
* :mod:`repro.model.patterns` — compute-pattern classification,
* :mod:`repro.model.resources` — shared-memory footprint estimation,
* :mod:`repro.model.occupancy` — a CUDA occupancy calculator,
* :mod:`repro.model.legality` — the legality conditions for partition
  blocks (dependences, resources, headers),
* :mod:`repro.model.benefit` — the analytic benefit model assigning edge
  weights (Eqs. 3–12),
* :mod:`repro.model.tiling` — the CPU-side 2D overlapped-tiling model
  sizing native-engine scratch tiles against the host cache hierarchy.
"""

from repro.model.benefit import (
    BenefitConfig,
    EdgeEstimate,
    FusionScenario,
    WeightedGraph,
    estimate_edge,
    estimate_graph,
    fused_mask_growth,
)
from repro.model.hardware import (
    DEFAULT_CPU_CACHES,
    GTX680,
    GTX745,
    K20C,
    CpuCacheSpec,
    GpuSpec,
    KNOWN_GPUS,
    calibrate_cpu_caches,
    detect_cpu_caches,
)
from repro.model.legality import LegalityReport, check_block_legality
from repro.model.occupancy import OccupancyResult, occupancy
from repro.model.patterns import classify, is_local, is_point
from repro.model.resources import block_shared_bytes, kernel_shared_bytes
from repro.model.tiling import (
    StageFootprint,
    TileChoice,
    choose_tile,
    sweep_tiles,
)

def __getattr__(name):
    """Lazy access to the calibration API.

    ``repro.model.calibration`` imports the evaluation runner (which
    imports the fusion engines, which import this package), so it loads
    on first use instead of at package import.
    """
    if name in ("CalibrationResult", "calibrate", "simulated_table1",
                "table1_loss"):
        from repro.model import calibration

        return getattr(calibration, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BenefitConfig",
    "CalibrationResult",
    "calibrate",
    "simulated_table1",
    "table1_loss",
    "CpuCacheSpec",
    "DEFAULT_CPU_CACHES",
    "EdgeEstimate",
    "FusionScenario",
    "GTX680",
    "GTX745",
    "GpuSpec",
    "K20C",
    "KNOWN_GPUS",
    "LegalityReport",
    "OccupancyResult",
    "StageFootprint",
    "TileChoice",
    "WeightedGraph",
    "block_shared_bytes",
    "calibrate_cpu_caches",
    "check_block_legality",
    "choose_tile",
    "classify",
    "detect_cpu_caches",
    "estimate_edge",
    "estimate_graph",
    "fused_mask_growth",
    "is_local",
    "is_point",
    "kernel_shared_bytes",
    "occupancy",
    "sweep_tiles",
]

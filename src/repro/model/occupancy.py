"""A CUDA occupancy calculator.

Occupancy — the ratio of resident warps to the maximum supported by a
streaming multiprocessor — determines how well memory latency can be
hidden.  The paper's resource-legality rule (Eq. 2) exists to protect
occupancy from the shared-memory growth caused by fusion; this module
implements the standard occupancy computation so that the performance
simulator can translate resource usage into latency-hiding capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.hardware import GpuSpec


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of a kernel launch on a device."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float
    limited_by: str

    def __str__(self) -> str:
        return (
            f"{self.occupancy:.0%} ({self.warps_per_sm} warps/SM, "
            f"{self.blocks_per_sm} blocks/SM, limited by {self.limited_by})"
        )


def occupancy(
    gpu: GpuSpec,
    threads_per_block: int,
    shared_bytes_per_block: int,
    registers_per_thread: int,
) -> OccupancyResult:
    """Compute the occupancy of a launch configuration.

    The number of concurrently resident blocks per SM is the minimum of
    four architectural limits; occupancy is resident warps over the
    SM's warp capacity.
    """
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > gpu.max_threads_per_block:
        raise ValueError(
            f"block of {threads_per_block} threads exceeds device limit "
            f"{gpu.max_threads_per_block}"
        )
    if shared_bytes_per_block > gpu.shared_mem_per_block:
        raise ValueError(
            f"{shared_bytes_per_block} B shared memory exceeds the "
            f"{gpu.shared_mem_per_block} B per-block limit"
        )

    warps_per_block = -(-threads_per_block // gpu.warp_size)  # ceil div

    limits = {
        "max_blocks": gpu.max_blocks_per_sm,
        "threads": gpu.max_threads_per_sm // threads_per_block,
    }
    if shared_bytes_per_block > 0:
        limits["shared_memory"] = gpu.shared_mem_per_sm // shared_bytes_per_block
    regs_per_block = registers_per_thread * threads_per_block
    if regs_per_block > 0:
        limits["registers"] = gpu.registers_per_sm // regs_per_block

    limiter = min(limits, key=lambda k: (limits[k], k))
    blocks = max(limits[limiter], 0)
    if blocks == 0:
        return OccupancyResult(0, 0, 0.0, limiter)

    warps = min(blocks * warps_per_block, gpu.max_warps_per_sm)
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / gpu.max_warps_per_sm,
        limited_by=limiter,
    )

"""Block coalescing: a post-pass that grows legal blocks.

Algorithm 1 searches with *per-edge* weights; a block whose internal
edges are all pairwise-illegal (two producers feeding one consumer,
like Canny's {mag, orient} -> nms) carries only ε weight on every edge,
so the recursive min cut never assembles it — even when the block is
legal and beneficial as a whole.  The exhaustive engine finds such
blocks, but only for small graphs.

This post-pass recovers them in polynomial time.  Starting from any
partition (normally Algorithm 1's result):

1. for every adjacent pair of blocks, form the merge candidate and
   *close* it: while the candidate is illegal because it reads an image
   produced by a third block at a non-source position, pull that
   producer block in (bounded by the number of blocks);
2. among all legal closed candidates whose crossing weight is positive,
   greedily commit the one with the largest β gain;
3. repeat until no improving candidate remains.

Only legal unions are taken and every committed merge strictly
increases β, so the result dominates the input partition.  On all six
paper applications the post-pass is a no-op (Algorithm 1 is already
optimal there); on Canny it recovers the four-kernel diamond block the
per-edge weights hide.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from repro.graph.partition import Partition, PartitionBlock
from repro.model.benefit import WeightedGraph
from repro.fusion.mincut_fusion import FusionResult, TraceEvent, mincut_fusion


def _adjacent(weighted: WeightedGraph, a: FrozenSet[str],
              b: FrozenSet[str]) -> bool:
    return any(
        (e.src in a and e.dst in b) or (e.src in b and e.dst in a)
        for e in weighted.graph.edges
    )


def _crossing_weight(
    weighted: WeightedGraph, groups: List[FrozenSet[str]]
) -> float:
    """Total weight of edges crossing between the given blocks."""
    union: Set[str] = set()
    for group in groups:
        union |= group
    membership = {}
    for index, group in enumerate(groups):
        for vertex in group:
            membership[vertex] = index
    total = 0.0
    for edge in weighted.graph.edges:
        if edge.src in union and edge.dst in union:
            if membership[edge.src] != membership[edge.dst]:
                total += edge.weight or 0.0
    return total


def _close_candidate(
    weighted: WeightedGraph,
    blocks: List[FrozenSet[str]],
    seed: Set[int],
) -> Optional[Set[int]]:
    """Expand a merge candidate until legal, or give up.

    The only repairable illegality is a *mid-block external input*: the
    candidate reads an image produced by another block while no source
    kernel of the candidate reads it.  Pulling the producing block in
    may fix it (and may surface further needs).  Other violations —
    resources, headers, unprofitable internal edges — are not
    repairable by growing, so the closure fails fast on them.
    """
    graph = weighted.graph
    producer_block = {
        graph.kernel(vertex).output.name: index
        for index, block in enumerate(blocks)
        for vertex in block
    }
    candidate = set(seed)
    for _ in range(len(blocks)):
        merged: Set[str] = set()
        for index in candidate:
            merged |= blocks[index]
        if weighted.is_legal_block(merged):
            return candidate
        block_view = PartitionBlock(graph, merged)
        source_inputs: Set[str] = set()
        for name in block_view.source_kernels():
            source_inputs.update(graph.kernel(name).input_names)
        produced_inside = {
            graph.kernel(name).output.name for name in merged
        }
        needed: Set[int] = set()
        for name in merged:
            for image in graph.kernel(name).input_names:
                if image in produced_inside or image in source_inputs:
                    continue
                owner = producer_block.get(image)
                if owner is not None and owner not in candidate:
                    needed.add(owner)
        if not needed:
            return None  # illegal for a non-repairable reason
        candidate |= needed
    return None


def coalesce_partition(
    weighted: WeightedGraph, partition: Partition
) -> Tuple[Partition, List[TraceEvent]]:
    """Greedy legal block merging until no improving merge remains."""
    graph = weighted.graph
    rank = {name: i for i, name in enumerate(graph.kernel_names)}
    blocks: List[FrozenSet[str]] = [
        frozenset(block.vertices) for block in partition.blocks
    ]
    trace: List[TraceEvent] = []
    iteration = 0

    def block_key(block: FrozenSet[str]) -> int:
        return min(rank[v] for v in block)

    while True:
        best = None  # (sort key, indices, gain)
        for i in range(len(blocks)):
            for j in range(i + 1, len(blocks)):
                if not _adjacent(weighted, blocks[i], blocks[j]):
                    continue
                closed = _close_candidate(weighted, blocks, {i, j})
                if closed is None:
                    continue
                members = [blocks[k] for k in sorted(closed)]
                gain = _crossing_weight(weighted, members)
                if gain <= 0.0:
                    continue
                key = (gain, -min(block_key(m) for m in members))
                if best is None or key > best[0]:
                    best = (key, closed, gain)
        if best is None:
            break
        _, closed, gain = best
        merged: FrozenSet[str] = frozenset().union(
            *(blocks[k] for k in closed)
        )
        iteration += 1
        trace.append(
            TraceEvent(
                iteration,
                tuple(n for n in graph.kernel_names if n in merged),
                "ready",
                reasons=(f"coalesced {len(closed)} blocks, gain {gain:g}",),
            )
        )
        blocks = [b for k, b in enumerate(blocks) if k not in closed]
        blocks.append(merged)

    result = Partition(
        graph, [PartitionBlock(graph, block) for block in blocks]
    )
    return result, trace


def coalesced_fusion(
    weighted: WeightedGraph, start_vertex: str | None = None
) -> FusionResult:
    """Algorithm 1 followed by the coalescing post-pass."""
    base = mincut_fusion(weighted, start_vertex=start_vertex)
    partition, extra_trace = coalesce_partition(weighted, base.partition)
    return FusionResult(
        partition,
        weighted,
        base.trace + extra_trace,
        engine="mincut+coalesce",
    )

"""Fusion engines and kernel-level fusion machinery.

Three engines, matching the paper's evaluation matrix:

* :func:`~repro.fusion.mincut_fusion.mincut_fusion` — the paper's
  contribution: recursive partitioning via Stoer–Wagner minimum cuts
  (Algorithm 1), the *optimized fusion* configuration;
* :func:`~repro.fusion.basic_fusion.basic_fusion` — the prior-work
  baseline [12]: pairwise fusion of point-related scenarios only, the
  *basic fusion* configuration;
* :func:`~repro.fusion.greedy_fusion.greedy_fusion` — a classic
  heaviest-edge greedy grouping (PolyMage / Halide style), provided as
  an additional comparison point for ablations.

:mod:`repro.fusion.fuser` materializes a fused kernel for each legal
partition block; :mod:`repro.fusion.border` implements the
interior/halo/exterior analysis and the index-exchange method that makes
local-to-local fusion border-correct (Section IV).
"""

from repro.fusion.basic_fusion import basic_fusion
from repro.fusion.coalesce import coalesce_partition, coalesced_fusion
from repro.fusion.distribution import distribute, distribute_block
from repro.fusion.exhaustive import exhaustive_fusion, optimality_gap
from repro.fusion.border import (
    Region,
    classify_coordinate,
    fused_interior_width,
    index_exchange,
    interior_width,
)
from repro.fusion.fuser import FusedKernel, fuse_block, fuse_partition
from repro.fusion.greedy_fusion import greedy_fusion
from repro.fusion.mincut_fusion import FusionResult, TraceEvent, mincut_fusion
from repro.fusion.scenarios import classify_edge_scenario

__all__ = [
    "FusedKernel",
    "FusionResult",
    "Region",
    "TraceEvent",
    "basic_fusion",
    "classify_coordinate",
    "classify_edge_scenario",
    "coalesce_partition",
    "coalesced_fusion",
    "distribute",
    "distribute_block",
    "exhaustive_fusion",
    "fuse_block",
    "fuse_partition",
    "fused_interior_width",
    "greedy_fusion",
    "index_exchange",
    "interior_width",
    "mincut_fusion",
    "optimality_gap",
]

"""The prior-work baseline: basic kernel fusion [12].

Qiao et al.'s earlier SCOPES 2018 technique fuses *pairs* of kernels
along edges and only for the point-related scenarios — point-to-point,
local-to-point, and point-to-local.  Kernels are "precluded as long as
any constraint is met" (Section III-C of the CGO paper):

* the consumer may read **only** the producer's output — any additional
  input (even the producer's own source image, Fig. 2b) is regarded as
  an external dependence and rejected; this is why basic fusion fails
  on Unsharp (shared input) and Sobel (the magnitude kernel reads two
  gradients);
* the producer's output must be consumed by exactly that consumer and
  must not be a pipeline output;
* local-to-local pairs are rejected outright (no border-correct fusion
  in the prior work);
* headers must match and the resource rule (Eq. 2) must hold;
* the benefit tradeoff with redundant computation is **not** modelled
  ("this tradeoff has not been explored by previous work").

Pairs keep merging transitively (a fused local-to-point group can absorb
a further point consumer — the Enhancement chain collapses fully), so
the engine iterates to a fixpoint over current groups.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.dsl.kernel import ComputePattern
from repro.graph.partition import Partition, PartitionBlock
from repro.model.benefit import WeightedGraph
from repro.model.legality import check_headers, check_resources
from repro.fusion.mincut_fusion import FusionResult, TraceEvent


def _group_pattern(weighted: WeightedGraph, group: FrozenSet[str]) -> ComputePattern:
    """Pattern of the kernel a group would fuse into.

    A group containing any local operator composes windowed reads, so
    the fused kernel is local; otherwise it stays a point operator.
    Global operators never enter groups.
    """
    for name in group:
        if weighted.graph.kernel(name).pattern is ComputePattern.LOCAL:
            return ComputePattern.LOCAL
    return ComputePattern.POINT


def _group_inputs(weighted: WeightedGraph, group: FrozenSet[str]) -> Set[str]:
    """External images read by a group."""
    produced = {weighted.graph.kernel(n).output.name for n in group}
    reads: Set[str] = set()
    for name in group:
        reads.update(weighted.graph.kernel(name).input_names)
    return reads - produced


def _group_output(weighted: WeightedGraph, group: FrozenSet[str]) -> str | None:
    """The single escaping output image of a group, or ``None``."""
    graph = weighted.graph
    escaping = []
    for name in group:
        output = graph.kernel(name).output.name
        consumers = [c for c in graph.consumers_of(output) if c not in group]
        if consumers or output in graph.external_outputs:
            escaping.append(output)
    if len(escaping) == 1:
        return escaping[0]
    return None


def _pair_fusible(
    weighted: WeightedGraph,
    producer_group: FrozenSet[str],
    consumer_group: FrozenSet[str],
) -> bool:
    """Basic-fusion pairwise test on two current groups."""
    graph = weighted.graph
    output = _group_output(weighted, producer_group)
    if output is None:
        return False

    # The producer's output must feed exactly the consumer group and
    # must not be externally observed.
    if output in graph.external_outputs:
        return False
    consumers = set(graph.consumers_of(output))
    if not consumers or not consumers <= consumer_group:
        return False

    # The consumer group may read nothing but the producer's output.
    if _group_inputs(weighted, consumer_group) != {output}:
        return False

    # Scenario restriction: no local-to-local, no global operators.
    producer_pattern = _group_pattern(weighted, producer_group)
    consumer_pattern = _group_pattern(weighted, consumer_group)
    for name in producer_group | consumer_group:
        if graph.kernel(name).pattern is ComputePattern.GLOBAL:
            return False
    if (
        producer_pattern is ComputePattern.LOCAL
        and consumer_pattern is ComputePattern.LOCAL
    ):
        return False

    merged = list(producer_group | consumer_group)
    if check_headers(graph, merged):
        return False
    if check_resources(graph, merged, weighted.gpu, weighted.config.c_mshared):
        return False
    return True


def basic_fusion(weighted: WeightedGraph) -> FusionResult:
    """Run the prior-work pairwise fusion to a fixpoint."""
    graph = weighted.graph
    group_of: Dict[str, FrozenSet[str]] = {
        name: frozenset({name}) for name in graph.kernel_names
    }
    trace: List[TraceEvent] = []
    iteration = 0

    changed = True
    while changed:
        changed = False
        for edge in graph.edges:
            producer_group = group_of[edge.src]
            consumer_group = group_of[edge.dst]
            if producer_group == consumer_group:
                continue
            if not _pair_fusible(weighted, producer_group, consumer_group):
                continue
            iteration += 1
            merged = producer_group | consumer_group
            ordered = tuple(n for n in graph.kernel_names if n in merged)
            trace.append(
                TraceEvent(
                    iteration,
                    ordered,
                    "ready",
                    reasons=(f"pairwise merge along {edge.src}->{edge.dst}",),
                )
            )
            for name in merged:
                group_of[name] = merged
            changed = True
            break  # restart the scan over the new grouping

    unique = []
    seen = set()
    for name in graph.kernel_names:
        group = group_of[name]
        if group not in seen:
            seen.add(group)
            unique.append(PartitionBlock(graph, group))
    partition = Partition(graph, unique)
    return FusionResult(partition, weighted, trace, engine="basic")

"""Exhaustive optimal fusion search (small graphs only).

The fusion problem is a minimum-weight k-cut with unknown k, which is
NP-complete (Section III-C, citing Goldschmidt & Hochbaum), so the paper
uses the recursive min-cut heuristic.  For small DAGs the optimum *is*
computable: enumerate all partitions of the vertex set into legal
blocks and maximize β (Eq. 1).

This engine exists to measure the heuristic's optimality gap — the
ablation suite shows Algorithm 1 is optimal on all six paper
applications and on randomly generated small pipelines.

Enumeration is the standard recursive set-partition scheme (first
uncovered vertex anchors each new block), pruned by legality: blocks
are only grown from legal-or-extendable candidates, and singleton
blocks are always admissible.  Complexity is bounded by the Bell number
B(|V|); the implementation refuses graphs beyond ``max_vertices``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Tuple

from repro.graph.dag import GraphError
from repro.graph.partition import Partition, PartitionBlock
from repro.model.benefit import WeightedGraph
from repro.fusion.mincut_fusion import FusionResult, TraceEvent

#: Hard cap: Bell(12) ~ 4.2M candidate partitions already stretches a
#: test-suite; the paper's largest application has 9 kernels.
MAX_VERTICES = 12


def _partitions(items: Tuple[str, ...]) -> Iterator[List[FrozenSet[str]]]:
    """All set partitions of ``items`` (first element anchors blocks)."""
    if not items:
        yield []
        return
    head, rest = items[0], items[1:]
    for sub_partition in _partitions(rest):
        # head joins an existing block...
        for i in range(len(sub_partition)):
            yield (
                sub_partition[:i]
                + [sub_partition[i] | {head}]
                + sub_partition[i + 1 :]
            )
        # ... or starts its own.
        yield [frozenset({head})] + sub_partition


def exhaustive_fusion(
    weighted: WeightedGraph, max_vertices: int = MAX_VERTICES
) -> FusionResult:
    """Find a β-maximal partition into legal blocks by enumeration.

    Ties are broken toward fewer blocks (fewer launches), then toward
    the lexicographically smallest description, so the result is
    deterministic.
    """
    graph = weighted.graph
    names = graph.kernel_names
    if len(names) > max_vertices:
        raise GraphError(
            f"exhaustive search on {len(names)} kernels would enumerate "
            f"too many partitions (cap: {max_vertices})"
        )

    best_blocks: List[FrozenSet[str]] | None = None
    best_key: Tuple[float, int, Tuple] | None = None
    examined = 0
    legality_cache: dict[FrozenSet[str], bool] = {}

    def block_legal(block: FrozenSet[str]) -> bool:
        if block not in legality_cache:
            legality_cache[block] = (
                len(block) == 1 or weighted.is_legal_block(block)
            )
        return legality_cache[block]

    def block_weight(block: FrozenSet[str]) -> float:
        return sum(
            e.weight or 0.0 for e in graph.induced_edges(set(block))
        )

    for candidate in _partitions(names):
        examined += 1
        if not all(block_legal(block) for block in candidate):
            continue
        beta = sum(block_weight(block) for block in candidate)
        signature = tuple(sorted(tuple(sorted(b)) for b in candidate))
        key = (beta, -len(candidate), tuple(reversed(signature)))
        if best_key is None or key > best_key:
            best_key = key
            best_blocks = candidate

    assert best_blocks is not None  # singletons are always legal
    partition = Partition(
        graph, [PartitionBlock(graph, block) for block in best_blocks]
    )
    trace = [
        TraceEvent(
            1,
            tuple(names),
            "ready",
            reasons=(f"enumerated {examined} partitions",),
        )
    ]
    return FusionResult(partition, weighted, trace, engine="exhaustive")


def optimality_gap(weighted: WeightedGraph) -> float:
    """β(optimal) - β(min-cut heuristic); 0.0 means the heuristic won."""
    from repro.fusion.mincut_fusion import mincut_fusion

    optimal = exhaustive_fusion(weighted).benefit
    heuristic = mincut_fusion(weighted).benefit
    return optimal - heuristic

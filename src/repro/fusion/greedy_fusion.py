"""Greedy heaviest-edge fusion baseline.

Classic fusion heuristics (Gao et al.'s greedy variant, PolyMage's and
Halide's grouping) grow groups pairwise along the most profitable edge.
This engine is the comparison point for the ablation study: it uses the
*same* benefit model and the *same* legality oracle as the min-cut
engine, so every difference in outcome is attributable to the search
strategy alone.

The algorithm maintains a partition (initially singletons) and a
candidate set of block pairs connected by at least one edge.  Each step
merges the pair with the largest total connecting weight whose union is
a legal block; pairs whose union is illegal are discarded.  The loop
ends when no candidate remains.

The known weakness (Section III-C of the paper): greedy pairwise growth
can commit to a merge that blocks a better enclosing fusion, and it
never discovers blocks — like Unsharp's shared-input diamond — whose
*pairs* are partially illegal even though the whole block is legal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.graph.partition import Partition, PartitionBlock
from repro.model.benefit import WeightedGraph
from repro.fusion.mincut_fusion import FusionResult, TraceEvent


def _connecting_weight(
    weighted: WeightedGraph, a: FrozenSet[str], b: FrozenSet[str]
) -> float:
    """Total weight of edges between two blocks (either direction)."""
    total = 0.0
    for edge in weighted.graph.edges:
        if (edge.src in a and edge.dst in b) or (edge.src in b and edge.dst in a):
            total += edge.weight or 0.0
    return total


def greedy_fusion(weighted: WeightedGraph) -> FusionResult:
    """Run heaviest-edge greedy grouping to exhaustion."""
    graph = weighted.graph
    blocks: List[FrozenSet[str]] = [frozenset({n}) for n in graph.kernel_names]
    rank: Dict[str, int] = {n: i for i, n in enumerate(graph.kernel_names)}
    dead: Set[Tuple[FrozenSet[str], FrozenSet[str]]] = set()
    trace: List[TraceEvent] = []
    iteration = 0

    def block_key(block: FrozenSet[str]) -> int:
        return min(rank[v] for v in block)

    while True:
        candidates: List[Tuple[float, int, int]] = []
        for i in range(len(blocks)):
            for j in range(i + 1, len(blocks)):
                pair = (blocks[i], blocks[j])
                if pair in dead or (pair[1], pair[0]) in dead:
                    continue
                weight = _connecting_weight(weighted, blocks[i], blocks[j])
                if weight > 0.0:
                    candidates.append((weight, i, j))
        if not candidates:
            break
        # Heaviest first; ties broken by earliest blocks for determinism.
        weight, i, j = max(
            candidates,
            key=lambda c: (c[0], -block_key(blocks[c[1]]), -block_key(blocks[c[2]])),
        )
        merged = blocks[i] | blocks[j]
        iteration += 1
        ordered = tuple(n for n in graph.kernel_names if n in merged)
        report = weighted.block_legality(merged)
        if report.legal:
            trace.append(
                TraceEvent(
                    iteration,
                    ordered,
                    "ready",
                    reasons=(f"greedy merge, connecting weight {weight:g}",),
                )
            )
            blocks = [b for k, b in enumerate(blocks) if k not in (i, j)]
            blocks.append(merged)
            # Stale dead pairs referencing the removed blocks are harmless:
            # merges only grow blocks, so those frozensets never reappear.
        else:
            dead.add((blocks[i], blocks[j]))
            trace.append(
                TraceEvent(
                    iteration,
                    ordered,
                    "reject",
                    reasons=report.reasons,
                    diagnostics=report.diagnostics,
                )
            )

    partition = Partition(graph, [PartitionBlock(graph, b) for b in blocks])
    return FusionResult(partition, weighted, trace, engine="greedy")

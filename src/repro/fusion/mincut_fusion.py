"""Algorithm 1: recursive kernel fusion via minimum cuts.

Given the weighted DAG, the algorithm maintains a ready set ``S_r`` of
legal partition blocks and a working set ``S_p`` of blocks still under
inspection, initialized with the whole graph.  Every iteration pops a
block from ``S_p``: if it is a single kernel or legal, it moves to
``S_r``; otherwise it is split along its minimum cut (Stoer–Wagner) and
both halves return to ``S_p``.  Termination is guaranteed because every
cut strictly shrinks blocks and singletons are always legal.

Maximizing the retained weight equals minimizing the cut weight
(Eq. 13): since all edge weights are positive and illegal edges carry
the arbitrarily small ε, minimum cuts preferentially sever illegal and
unprofitable edges, keeping high-benefit edges inside blocks.

The engine records a full trace — one event per inspected block — which
the Figure 3 reproduction prints step by step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.graph.mincut import min_cut_partition
from repro.graph.partition import Partition, PartitionBlock
from repro.model.benefit import WeightedGraph


@dataclass(frozen=True)
class TraceEvent:
    """One step of a fusion engine.

    ``action`` is ``"ready"`` (block was legal or a singleton and moved
    to the ready set), ``"cut"`` (block was illegal and split by the
    min-cut engine), or ``"reject"`` (a greedy merge candidate was
    discarded).  ``diagnostics`` carries the structured legality
    violations behind ``reasons`` (codes FUS001–FUS010), making every
    partition decision auditable.
    """

    iteration: int
    block: Tuple[str, ...]
    action: str
    reasons: Tuple[str, ...] = field(default_factory=tuple)
    cut_weight: float | None = None
    parts: Tuple[Tuple[str, ...], ...] = field(default_factory=tuple)
    diagnostics: Tuple[Diagnostic, ...] = field(
        default_factory=tuple, compare=False
    )

    def describe(self) -> str:
        members = "{" + ", ".join(self.block) + "}"
        if self.action == "ready":
            return f"[{self.iteration}] {members}: legal -> ready set"
        why = f" ({self.reasons[0]})" if self.reasons else ""
        if self.action == "reject":
            return f"[{self.iteration}] {members}: merge rejected{why}"
        parts = " | ".join("{" + ", ".join(p) + "}" for p in self.parts)
        return (
            f"[{self.iteration}] {members}: illegal{why}; "
            f"min-cut weight {self.cut_weight:g} -> {parts}"
        )


@dataclass
class FusionResult:
    """Outcome of a fusion engine run."""

    partition: Partition
    weighted: WeightedGraph
    trace: List[TraceEvent] = field(default_factory=list)
    engine: str = "mincut"

    @property
    def benefit(self) -> float:
        """The achieved objective β (Eq. 1)."""
        return self.partition.benefit

    def describe(self) -> str:
        lines = [f"engine: {self.engine}", f"benefit: {self.benefit:g}"]
        lines.append(self.partition.describe())
        return "\n".join(lines)


def _ordered(weighted: WeightedGraph, vertices: FrozenSet[str]) -> Tuple[str, ...]:
    """Block members in graph topological order (determinism)."""
    return tuple(n for n in weighted.graph.kernel_names if n in vertices)


def mincut_fusion(
    weighted: WeightedGraph,
    start_vertex: str | None = None,
) -> FusionResult:
    """Run Algorithm 1 on a weighted graph.

    ``start_vertex`` fixes the Stoer–Wagner starting vertex when it is a
    member of the block being cut (the paper starts the Harris example
    from ``dx``); by default the first block member in topological order
    starts every phase.
    """
    graph = weighted.graph
    ready: List[FrozenSet[str]] = []
    working: List[FrozenSet[str]] = [frozenset(graph.kernel_names)]
    trace: List[TraceEvent] = []
    iteration = 0

    while working:
        iteration += 1
        block = working.pop(0)
        members = _ordered(weighted, block)
        if len(block) == 1:
            ready.append(block)
            trace.append(TraceEvent(iteration, members, "ready"))
            continue
        report = weighted.block_legality(members)
        if report.legal:
            ready.append(block)
            trace.append(TraceEvent(iteration, members, "ready"))
            continue

        start = start_vertex if start_vertex in block else members[0]
        cut = min_cut_partition(graph, members, start=start)
        part_a = _ordered(weighted, cut.side_a)
        part_b = _ordered(weighted, cut.side_b)
        trace.append(
            TraceEvent(
                iteration,
                members,
                "cut",
                reasons=report.reasons,
                cut_weight=cut.weight,
                parts=(part_a, part_b),
                diagnostics=report.diagnostics,
            )
        )
        working.append(cut.side_a)
        working.append(cut.side_b)

    blocks = [PartitionBlock(graph, vertices) for vertices in ready]
    partition = Partition(graph, blocks)
    return FusionResult(partition, weighted, trace, engine="mincut")

"""Border handling for local-to-local fusion (Sections IV-A and IV-B).

Composing two local kernels widens the read window; near the image
border the composed window reaches positions where the *intermediate*
image would have been padded in the unfused program.  Naively composing
the convolutions (padding the input once by the combined radius)
computes wrong border values — Fig. 4b of the paper — because the
unfused program re-applies boundary handling to the intermediate image
before the second kernel reads it.

The paper's fix is the **index exchange** method: every intermediate
coordinate requested by the consumer is first resolved against the
intermediate image's bounds using the *consumer's* boundary mode; the
producer window then shifts to the exchanged coordinate (Fig. 5).  The
reference executor (:mod:`repro.backend.numpy_exec`) applies exactly
this two-stage resolution; this module provides the region analysis and
the scalar index-exchange primitive, plus the paper's interior-width
formulas.
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.dsl.boundary import BoundaryMode, BoundarySpec, resolve_index


class Region(enum.Enum):
    """The three regions of Section IV-B (Fig. 5)."""

    INTERIOR = "interior"
    HALO = "halo"
    EXTERIOR = "exterior"


def interior_width(image_width: int, mask_width: int) -> int:
    """Width of the interior region of an unfused local kernel.

    The paper's formula: ``l_i - floor(l_k / 2) * 2``.
    """
    if mask_width % 2 == 0:
        raise ValueError("mask width must be odd")
    return max(image_width - (mask_width // 2) * 2, 0)


def fused_interior_width(
    image_width: int, producer_mask_width: int, consumer_mask_width: int
) -> int:
    """Width of the interior region of a fused local-to-local kernel.

    Conservative form using the combined radius: every composed read at
    offsets within ``r_p + r_c`` of the border may touch exchanged
    indices, so the interior shrinks by the combined radius on each
    side.  (The paper prints ``l_i - floor(max(l_kp, l_kc) / 2) * 2``;
    the combined-radius form is the safe superset we verify against the
    executor, see the border tests.)
    """
    radius = producer_mask_width // 2 + consumer_mask_width // 2
    return max(image_width - 2 * radius, 0)


def classify_coordinate(
    x: int, y: int, width: int, height: int, radius: Tuple[int, int]
) -> Region:
    """Classify a coordinate as interior / halo / exterior.

    ``radius`` is the read-window radius ``(rx, ry)`` of the kernel
    about to read around ``(x, y)``.  Interior coordinates read only
    valid indices; halo coordinates are inside the image but their
    windows cross the border; exterior coordinates lie outside the
    image (where padding applies).
    """
    rx, ry = radius
    if x < 0 or x >= width or y < 0 or y >= height:
        return Region.EXTERIOR
    if rx <= x < width - rx and ry <= y < height - ry:
        return Region.INTERIOR
    return Region.HALO


def index_exchange(
    x: int,
    y: int,
    width: int,
    height: int,
    boundary: BoundarySpec | BoundaryMode,
) -> Tuple[int, int]:
    """Exchange an exterior coordinate for an in-image coordinate.

    In-image coordinates (interior or halo) are returned unchanged; an
    exterior coordinate is resolved per axis under the boundary mode
    *of the consuming kernel* — e.g. CLAMP exchanges it with the nearest
    border pixel, exactly the middle matrix of Fig. 5.  CONSTANT mode
    has no exchange target (the value is a constant, not a pixel); the
    executor handles it with a mask, and calling this raises.
    """
    mode = boundary.mode if isinstance(boundary, BoundarySpec) else boundary
    if mode is BoundaryMode.CONSTANT and not (0 <= x < width and 0 <= y < height):
        raise ValueError(
            "CONSTANT boundary mode substitutes a value; there is no "
            "index to exchange"
        )
    return resolve_index(x, width, mode), resolve_index(y, height, mode)


def halo_pixel_count(
    width: int, height: int, radius: Tuple[int, int]
) -> int:
    """Number of halo pixels of an image for a given window radius.

    The paper emphasizes that the halo grows quadratically with the
    number of fused local kernels (the radii add); this helper feeds the
    simulator's border-handling overhead term and the ablation bench.
    """
    rx, ry = radius
    interior_w = max(width - 2 * rx, 0)
    interior_h = max(height - 2 * ry, 0)
    return width * height - interior_w * interior_h

"""Materializing fused kernels (Section IV).

Fusing a legal partition block produces one kernel:

* the **flattened body** inlines every intra-block producer into its
  consumers — point producers are substituted directly, local producers
  are substituted with their reads shifted by the consuming offset
  (window composition).  The flattened body is the exact computation the
  fused GPU kernel performs in the *interior* region, and its operation
  and read counts are what the performance simulator charges (the
  redundant recomputation of Eq. 7/10 appears naturally);
* the **stage structure** (which member produced which image, through
  which accessors) is retained on the :class:`FusedKernel`, because
  border-correct execution needs two-stage index resolution (the index
  exchange of Section IV-B) that a flat expression with static offsets
  cannot represent.

Only the inputs of the block's source kernels and the destination's
output remain in the fused kernel's signature (Listing 1b).
"""

from __future__ import annotations

from typing import Dict, List

from repro.dsl.kernel import Accessor, Kernel
from repro.graph.dag import GraphError, KernelGraph
from repro.graph.partition import Partition, PartitionBlock
from repro.ir.expr import Expr
from repro.ir.traversal import shift_offsets, substitute_inputs


def flatten_block_body(graph: KernelGraph, block: PartitionBlock) -> Expr:
    """Inline all intra-block producers into the destination body.

    Valid in the interior region (all composed offsets in bounds); the
    halo region additionally needs index exchange at execution time.
    """
    produced: Dict[str, str] = {
        graph.kernel(name).output.name: name for name in block.vertices
    }
    flattened: Dict[str, Expr] = {}

    def flat_body(kernel_name: str) -> Expr:
        if kernel_name in flattened:
            return flattened[kernel_name]
        kernel = graph.kernel(kernel_name)
        mapping = {}
        for image_name in kernel.input_names:
            if image_name in produced:
                body = flat_body(produced[image_name])
                mapping[image_name] = (
                    lambda dx, dy, _body=body: shift_offsets(_body, dx, dy)
                )
        body = (
            substitute_inputs(kernel.body, mapping) if mapping else kernel.body
        )
        flattened[kernel_name] = body
        return body

    destinations = block.destination_kernels()
    if len(destinations) != 1:
        raise GraphError(
            f"block {sorted(block.vertices)} has {len(destinations)} "
            "destination kernels; only legal blocks can be fused"
        )
    return flat_body(destinations[0])


class FusedKernel(Kernel):
    """The kernel resulting from fusing a partition block.

    Behaves as an ordinary :class:`~repro.dsl.kernel.Kernel` — pattern,
    window size, and operation counts all derive from the flattened
    body, so analyses see the recomputation and window growth — while
    retaining the block structure for border-correct execution and for
    the resource model (``fMshared`` of a fused kernel is the sum over
    members, see :mod:`repro.model.resources`).
    """

    def __init__(
        self,
        graph: KernelGraph,
        block: PartitionBlock,
        simplify_body: bool = False,
    ):
        destinations = block.destination_kernels()
        if len(destinations) != 1:
            raise GraphError(
                f"cannot fuse block with destinations {destinations}"
            )
        destination = graph.kernel(destinations[0])
        body = flatten_block_body(graph, block)
        if simplify_body:
            from repro.ir.simplify import simplify

            body = simplify(body)

        # Accessors: external inputs only, each with the boundary of the
        # first member reading it (source kernels by construction).
        accessors: List[Accessor] = []
        for image_name in block.external_input_images():
            for member in block.ordered_vertices():
                kernel = graph.kernel(member)
                if image_name in kernel.input_names:
                    accessors.append(kernel.accessor_for(image_name))
                    break

        members = block.ordered_vertices()
        name = "fused_" + "_".join(members)
        super().__init__(
            name,
            accessors,
            destination.output,
            body,
            granularity=destination.granularity,
            block_shape=destination.block_shape,
        )
        self.block = block
        self.source_graph = graph
        self.member_names = members
        self.destination_name = destinations[0]

    @property
    def members(self) -> List[Kernel]:
        """The original kernels, in topological order."""
        return [self.source_graph.kernel(n) for n in self.member_names]

    def plan(self, naive_borders: bool = False):
        """The compiled instruction-tape plan of this fused kernel.

        Compilation is cached per (graph, block, border mode) — see
        :func:`repro.backend.plan.plan_for_block` — so repeated
        executions reuse the flattened tape and its interned grids.
        """
        from repro.backend.plan import plan_for_block

        return plan_for_block(
            self.source_graph, self.block, naive_borders=naive_borders
        )

    def execute(
        self,
        arrays,
        params=None,
        naive_borders: bool = False,
        engine: str | None = None,
    ):
        """Execute the fused kernel over bound arrays.

        Routes through :func:`repro.api.run_block`, so the ``engine``
        switch (tape by default) applies.
        """
        from repro.api import ExecutionOptions, run_block

        return run_block(
            self.source_graph,
            self.block,
            arrays,
            params,
            options=ExecutionOptions(
                engine=engine, naive_borders=naive_borders
            ),
        )

    def __repr__(self) -> str:
        return (
            f"FusedKernel({'+'.join(self.member_names)}, "
            f"{self.pattern.value}, sz={self.window_size})"
        )


def fuse_block(
    graph: KernelGraph, block: PartitionBlock, simplify_body: bool = False
) -> Kernel:
    """Fuse one block; singleton blocks return their kernel unchanged.

    ``simplify_body`` runs the IR simplifier over the flattened fused
    body — modelling the "further optimizations" (constant folding, CSE
    scope growth) that fusion enables according to the paper.
    """
    if len(block) == 1:
        (name,) = block.vertices
        return graph.kernel(name)
    return FusedKernel(graph, block, simplify_body=simplify_body)


def fuse_partition(
    graph: KernelGraph,
    partition: Partition,
    simplify_body: bool = False,
) -> List[Kernel]:
    """Fuse every block of a partition.

    Returns the transformed kernel list in block order; the result is
    the "generated program" — one kernel launch per entry.
    """
    return [
        fuse_block(graph, block, simplify_body=simplify_body)
        for block in partition.blocks
    ]

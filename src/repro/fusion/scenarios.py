"""Fusion scenario classification helpers.

The :class:`~repro.model.benefit.FusionScenario` enum and the weight
formulas live in :mod:`repro.model.benefit`; this module adds the
convenience queries that the engines and the test-suite use to reason
about scenarios without re-running the full estimator.
"""

from __future__ import annotations

from repro.dsl.kernel import ComputePattern, Kernel
from repro.graph.dag import Edge, KernelGraph
from repro.model.benefit import FusionScenario

__all__ = ["FusionScenario", "classify_edge_scenario", "pair_pattern"]


def pair_pattern(source: Kernel, destination: Kernel) -> str:
    """Human-readable pattern pair, e.g. ``"local-to-point"``."""
    return f"{source.pattern.value}-to-{destination.pattern.value}"


def classify_edge_scenario(graph: KernelGraph, edge: Edge) -> FusionScenario:
    """Scenario of an edge from compute patterns alone.

    This mirrors the scenario dispatch of the benefit model but skips
    header and legality checks — useful for diagnostics and for the
    basic-fusion engine, which restricts itself to point-related
    scenarios.
    """
    source = graph.kernel(edge.src)
    destination = graph.kernel(edge.dst)
    if (
        source.pattern is ComputePattern.GLOBAL
        or destination.pattern is ComputePattern.GLOBAL
    ):
        return FusionScenario.ILLEGAL
    if destination.pattern is ComputePattern.POINT:
        return FusionScenario.POINT_BASED
    if source.pattern is ComputePattern.POINT:
        return FusionScenario.POINT_TO_LOCAL
    return FusionScenario.LOCAL_TO_LOCAL

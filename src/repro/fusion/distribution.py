"""Kernel distribution: splitting over-fused blocks (paper future work).

The paper's conclusion names *kernel distribution* — the inverse of
kernel fusion, analogous to loop distribution — as the next technique
to combine with fusion.  A natural use is repair: when a partition
block violates a resource or occupancy target (because a relaxed
threshold, a different device, or a hand-written partition produced
it), distribution splits the block back into smaller legal blocks while
losing as little fusion benefit as possible.

The split strategy mirrors Algorithm 1: a violating block is divided
along its weighted minimum cut, recursively, until every piece
satisfies the acceptance predicate — so the benefit lost to
distribution is the minimum cut weight, exactly the dual of the fusion
objective.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List

from repro.graph.mincut import min_cut_partition
from repro.graph.partition import Partition, PartitionBlock
from repro.model.benefit import WeightedGraph
from repro.model.occupancy import occupancy
from repro.model.resources import (
    block_shared_bytes,
    estimated_registers_per_thread,
)

BlockPredicate = Callable[[FrozenSet[str]], bool]


def occupancy_predicate(
    weighted: WeightedGraph, min_occupancy: float = 0.5
) -> BlockPredicate:
    """Accept blocks whose fused kernel keeps occupancy above a floor.

    Occupancy is computed from the fused block's summed shared-memory
    tiles and a register estimate — the quantities Eq. (2) protects.
    """
    graph = weighted.graph

    def accept(vertices: FrozenSet[str]) -> bool:
        kernels = [graph.kernel(name) for name in vertices]
        bx, by = kernels[0].block_shape
        shared = block_shared_bytes(graph, vertices)
        if shared > weighted.gpu.shared_mem_per_block:
            return False
        registers = max(
            estimated_registers_per_thread(kernel) for kernel in kernels
        )
        result = occupancy(weighted.gpu, bx * by, shared, registers)
        return result.occupancy >= min_occupancy

    return accept


def legality_predicate(weighted: WeightedGraph) -> BlockPredicate:
    """Accept blocks that are legal under the full ``IsLegal`` oracle."""

    def accept(vertices: FrozenSet[str]) -> bool:
        return len(vertices) == 1 or weighted.is_legal_block(vertices)

    return accept


def distribute_block(
    weighted: WeightedGraph,
    block: PartitionBlock,
    accept: BlockPredicate,
) -> List[PartitionBlock]:
    """Split one block along minimum cuts until every piece is accepted.

    Singleton blocks are accepted unconditionally (there is nothing
    left to distribute).
    """
    graph = weighted.graph
    pending: List[FrozenSet[str]] = [frozenset(block.vertices)]
    accepted: List[FrozenSet[str]] = []
    while pending:
        vertices = pending.pop(0)
        if len(vertices) == 1 or accept(vertices):
            accepted.append(vertices)
            continue
        ordered = [n for n in graph.kernel_names if n in vertices]
        cut = min_cut_partition(graph, ordered, start=ordered[0])
        pending.append(cut.side_a)
        pending.append(cut.side_b)
    return [PartitionBlock(graph, vertices) for vertices in accepted]


def distribute(
    weighted: WeightedGraph,
    partition: Partition,
    accept: BlockPredicate | None = None,
) -> Partition:
    """Repair a partition: distribute every block failing ``accept``.

    The default predicate is full legality — useful to sanitize
    partitions produced under different model parameters or by hand.
    """
    if accept is None:
        accept = legality_predicate(weighted)
    blocks: List[PartitionBlock] = []
    for block in partition.blocks:
        blocks.extend(distribute_block(weighted, block, accept))
    return Partition(weighted.graph, blocks)

"""repro — min-cut driven kernel fusion for image processing pipelines.

A from-scratch Python reproduction of

    Bo Qiao, Oliver Reiche, Frank Hannig, Jürgen Teich:
    "From Loop Fusion to Kernel Fusion: A Domain-Specific Approach to
    Locality Optimization", CGO 2019.

The library contains:

* a Hipacc-like image processing DSL (:mod:`repro.dsl`) over a small
  expression IR (:mod:`repro.ir`),
* the kernel dependence DAG and a from-scratch Stoer–Wagner minimum
  cut (:mod:`repro.graph`),
* the paper's legality rules and analytic benefit model
  (:mod:`repro.model`),
* three fusion engines — min-cut (Algorithm 1), prior-work basic
  fusion, greedy — plus border-correct kernel fusion with index
  exchange (:mod:`repro.fusion`),
* a NumPy reference executor, CUDA source generation, and an analytic
  GPU performance simulator (:mod:`repro.backend`),
* the six benchmark applications (:mod:`repro.apps`) and the evaluation
  harness reproducing every table and figure (:mod:`repro.eval`).

Quickstart::

    from repro.apps.harris import build_pipeline
    from repro.model import GTX680, estimate_graph
    from repro.fusion import mincut_fusion

    graph = build_pipeline().build()
    weighted = estimate_graph(graph, GTX680)
    result = mincut_fusion(weighted, start_vertex="dx")
    print(result.describe())

Execution goes through the canonical API (:mod:`repro.api`)::

    from repro import ExecutionOptions, run

    env = run(graph, {"input": image})                        # fuse + tape
    env = run(graph, {"input": image},
              options=ExecutionOptions(engine="native"))      # compiled C
"""

from repro.api import ExecutionOptions, run, run_block
from repro.dsl import (
    Accessor,
    BoundaryMode,
    BoundarySpec,
    Domain,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
)
from repro.fusion import basic_fusion, greedy_fusion, mincut_fusion
from repro.graph import KernelGraph, Partition, PartitionBlock
from repro.model import (
    GTX680,
    GTX745,
    K20C,
    BenefitConfig,
    GpuSpec,
    estimate_graph,
)

__version__ = "1.0.0"

__all__ = [
    "Accessor",
    "BenefitConfig",
    "BoundaryMode",
    "BoundarySpec",
    "Domain",
    "ExecutionOptions",
    "GTX680",
    "GTX745",
    "GpuSpec",
    "Image",
    "IterationSpace",
    "K20C",
    "Kernel",
    "KernelGraph",
    "Mask",
    "Partition",
    "PartitionBlock",
    "Pipeline",
    "__version__",
    "basic_fusion",
    "estimate_graph",
    "greedy_fusion",
    "mincut_fusion",
    "run",
    "run_block",
]

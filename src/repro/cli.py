"""Command-line interface to the kernel fusion toolchain.

Mirrors the workflow of the Hipacc artifact: pick an application,
enable/disable fusion, inspect the generated code, run the evaluation.

::

    python -m repro list
    python -m repro fuse Harris --engine mincut --trace
    python -m repro codegen Unsharp --engine mincut
    python -m repro run Harris --exec-engine native
    python -m repro simulate Sobel
    python -m repro lint --explain
    python -m repro evaluate --runs 500
    python -m repro figure3
    python -m repro figure4
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.apps import ALL_APPS, APPLICATIONS
from repro.backend.codegen_cuda import generate_cuda_pipeline
from repro.backend.launch import simulate_partition
from repro.eval.report import render_figure6, render_table1, render_table2
from repro.eval.runner import DEFAULT_GPUS, partition_for, run_matrix
from repro.fusion.basic_fusion import basic_fusion
from repro.fusion.coalesce import coalesced_fusion
from repro.fusion.exhaustive import exhaustive_fusion
from repro.fusion.greedy_fusion import greedy_fusion
from repro.fusion.mincut_fusion import mincut_fusion
from repro.graph.partition import Partition
from repro.model.benefit import BenefitConfig, estimate_graph
from repro.model.hardware import KNOWN_GPUS

ENGINES = {
    "mincut": mincut_fusion,
    "coalesced": coalesced_fusion,
    "basic": basic_fusion,
    "greedy": greedy_fusion,
    "exhaustive": exhaustive_fusion,
}


def _resolve_app(name: str):
    try:
        return ALL_APPS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_APPS))
        raise SystemExit(f"unknown application {name!r}; known: {known}")


def _resolve_gpu(name: str):
    try:
        return KNOWN_GPUS[name]
    except KeyError:
        known = ", ".join(sorted(KNOWN_GPUS))
        raise SystemExit(f"unknown GPU {name!r}; known: {known}")


def _config(args: argparse.Namespace) -> BenefitConfig:
    return BenefitConfig(
        c_mshared=args.cmshared, epsilon=args.epsilon, gamma=args.gamma
    )


def cmd_list(args: argparse.Namespace) -> int:
    """List the applications (paper matrix + extensions)."""
    print(f"{'application':<12}{'kernels':>8}{'geometry':>14}{'set':>12}")
    for name, spec in ALL_APPS.items():
        graph = spec.pipeline().build()
        geometry = f"{spec.width}x{spec.height}"
        if spec.channels > 1:
            geometry += f"x{spec.channels}"
        group = "paper" if name in APPLICATIONS else "extension"
        print(f"{name:<12}{len(graph):>8}{geometry:>14}{group:>12}")
    return 0


def cmd_fuse(args: argparse.Namespace) -> int:
    """Fuse one application and print the weights/trace/partition."""
    spec = _resolve_app(args.app)
    gpu = _resolve_gpu(args.gpu)
    graph = spec.pipeline().build()
    weighted = estimate_graph(graph, gpu, _config(args))
    print(f"{spec.name} on {gpu.name}, engine={args.engine}")
    print()
    print("edge estimates:")
    print(weighted.describe_edges())
    print()
    result = ENGINES[args.engine](weighted)
    if args.trace:
        print("trace:")
        for event in result.trace:
            print("  " + event.describe())
        print()
    print("partition:")
    print(result.partition.describe())
    print(f"benefit beta = {result.benefit:g}")
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    """Print the generated source for the chosen target and engine."""
    spec = _resolve_app(args.app)
    gpu = _resolve_gpu(args.gpu)
    graph = spec.pipeline().build()
    if args.engine == "none":
        partition = Partition.singletons(graph)
    else:
        partition = partition_for(graph, gpu, _engine_to_version(args.engine))
    if args.target == "c":
        from repro.backend.codegen_c import generate_c_pipeline

        print(generate_c_pipeline(graph, partition))
    elif args.target == "opencl":
        from repro.backend.codegen_opencl import generate_opencl_pipeline

        print(generate_opencl_pipeline(graph, partition))
    else:
        print(generate_cuda_pipeline(graph, partition))
    return 0


def cmd_roofline(args: argparse.Namespace) -> int:
    """Print the per-launch roofline analysis before and after fusion."""
    from repro.backend.roofline import render_roofline_report

    spec = _resolve_app(args.app)
    gpu = _resolve_gpu(args.gpu)
    graph = spec.pipeline().build()
    baseline = Partition.singletons(graph)
    optimized = partition_for(graph, gpu, "optimized")
    print(render_roofline_report(graph, baseline, optimized, gpu))
    return 0


def _engine_to_version(engine: str) -> str:
    return {"mincut": "optimized", "basic": "basic", "greedy": "greedy",
            "exhaustive": "exhaustive", "coalesced": "coalesced"}[engine]


def cmd_dot(args: argparse.Namespace) -> int:
    """Print the Graphviz DOT of the DAG (and partition clusters)."""
    from repro.graph.viz import to_dot

    spec = _resolve_app(args.app)
    gpu = _resolve_gpu(args.gpu)
    graph = spec.pipeline().build()
    weighted = estimate_graph(graph, gpu, _config(args))
    partition = None
    if args.engine != "none":
        partition = ENGINES[args.engine](weighted).partition
    print(
        to_dot(
            weighted.graph,
            partition,
            epsilon=weighted.config.epsilon,
            title=f"{spec.name} ({args.engine})",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Print simulated execution times on all three devices."""
    spec = _resolve_app(args.app)
    graph = spec.pipeline().build()
    print(f"{spec.name}: simulated execution times (ms)")
    print(f"{'device':<10}{'baseline':>10}{'basic':>10}{'optimized':>11}"
          f"{'speedup':>9}")
    for gpu in DEFAULT_GPUS:
        times = {}
        for version in ("baseline", "basic", "optimized"):
            partition = partition_for(graph, gpu, version)
            times[version] = simulate_partition(graph, partition, gpu).total_ms
        print(
            f"{gpu.name:<10}{times['baseline']:>10.3f}{times['basic']:>10.3f}"
            f"{times['optimized']:>11.3f}"
            f"{times['baseline'] / times['optimized']:>8.2f}x"
        )
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Reproduce Table I / Table II (and optionally Fig. 6 data)."""
    results = run_matrix(runs=args.runs)
    if args.figure6:
        print(render_figure6(results))
        print()
    print(render_table1(results, include_paper=not args.no_paper))
    print()
    print(render_table2(results, include_paper=not args.no_paper))
    return 0


def cmd_artifact(args: argparse.Namespace) -> int:
    """Write the full artifact package to a directory."""
    from repro.eval.artifact import build_artifact

    written = build_artifact(args.out, runs=args.runs)
    for path in written:
        print(path)
    print(f"wrote {len(written)} files to {args.out}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Run the paper-conformance checklist; exit 1 on any FAIL."""
    from repro.eval.paper_check import has_failures, render_report, run_all_checks

    outcome = run_all_checks()
    print(render_report(outcome))
    return 1 if has_failures(outcome) else 0


def cmd_figure3(args: argparse.Namespace) -> int:
    """Print the Fig. 3 Harris walk-through."""
    from repro.eval.figures import figure3_trace

    result = figure3_trace()
    print("edge weights (paper: 328/328/256 + 7x epsilon):")
    print(result.weighted.describe_edges())
    print()
    print("trace:")
    for event in result.trace:
        print("  " + event.describe())
    print()
    print(result.partition.describe())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Execute one application through :func:`repro.api.run`.

    The CLI face of the canonical execution API: build the pipeline at
    the requested geometry, fuse (or not), execute on the chosen
    engine, and print a digest of every surviving image — enough to
    diff two engines or two fusion versions for bit-identity from the
    shell.
    """
    import json
    import zlib as _zlib

    import numpy as np

    from repro.api import ExecutionOptions, run
    from repro.serve.bench import request_inputs
    from repro.serve.registry import DEFAULT_APP_PARAMS

    spec = _resolve_app(args.app)
    graph = spec.build(args.width, args.height).build()
    inputs = request_inputs(spec, args.width, args.height, seed=args.seed)
    options = ExecutionOptions(
        engine=args.exec_engine,
        workers=args.exec_workers,
        validate=args.validate,
        fuse=not args.no_fuse,
        naive_borders=args.naive_borders,
        fusion_version=args.version,
        gpu=args.gpu,
        benefit=_config(args),
    )
    env = run(graph, inputs, DEFAULT_APP_PARAMS.get(spec.name),
              options=options)
    digests = {
        name: {
            "shape": list(np.shape(array)),
            "dtype": str(np.asarray(array).dtype),
            "min": float(np.min(array)),
            "mean": float(np.mean(array)),
            "max": float(np.max(array)),
            "crc32": _zlib.crc32(np.ascontiguousarray(array).tobytes()),
        }
        for name, array in sorted(env.items())
    }
    if args.json:
        print(json.dumps(digests, indent=2, sort_keys=True))
        return 0
    print(f"{spec.name} {args.width}x{args.height} "
          f"(engine={options.engine or 'env-default'}, "
          f"fuse={'off' if args.no_fuse else args.version})")
    for name, digest in digests.items():
        shape = "x".join(str(d) for d in digest["shape"])
        print(f"  {name:<14}{shape:>12}  "
              f"min={digest['min']:<10.4g} mean={digest['mean']:<10.4g} "
              f"max={digest['max']:<10.4g} crc32={digest['crc32']:08x}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the serving runtime over a synthetic request stream.

    Registers the paper apps, fires ``--requests`` concurrent requests
    spread across them, and prints the metrics snapshot — a smoke of
    the plan cache, scheduler, metrics, and resilience layers in one
    command.  ``--faults`` arms deterministic fault injection
    (``REPRO_FAULTS`` grammar) so the retry / breaker / degradation
    machinery is observable from the shell.  ``--processes N`` (or
    ``REPRO_SERVE_PROCS``) with ``N > 1`` serves the stream through a
    sharded multi-process runtime instead — same results, every core.
    """
    import json
    from concurrent.futures import ThreadPoolExecutor

    from repro.api import ExecutionOptions
    from repro.serve import (
        BreakerConfig,
        ResiliencePolicy,
        RetryPolicy,
        ServingRuntime,
        default_registry,
        faultinject,
    )
    from repro.serve.bench import request_inputs

    names = args.apps or sorted(APPLICATIONS)
    for name in names:
        _resolve_app(name)
    if args.cache_keying == "structure" and args.exec_engine != "native":
        print("error: --cache-keying structure requires --exec-engine "
              "native (only shape-polymorphic native plans serve "
              "foreign geometries)", file=sys.stderr)
        return 2
    registry = default_registry(include_extensions=True, apps=set(names))
    resilience = None
    if args.retries is not None or args.breaker_threshold is not None:
        resilience = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=args.retries or 3),
            breaker=BreakerConfig(
                failure_threshold=args.breaker_threshold or 3
            ),
        )
    if args.faults:
        for rule in faultinject.parse_spec(args.faults):
            faultinject.inject(
                rule.site,
                rule.action,
                delay_s=rule.delay_s,
                times=rule.times,
                every=rule.every,
            )
    options = ExecutionOptions(
        engine=args.exec_engine,
        fusion_version=args.version,
        gpu=_resolve_gpu(args.gpu),
        benefit=_config(args),
        resilience=resilience,
    )
    workload = [
        (name, request_inputs(ALL_APPS[name], args.width, args.height, seed=i))
        for i, name in enumerate(
            names[i % len(names)] for i in range(args.requests)
        )
    ]
    from repro.envknobs import serve_procs_env

    processes = (
        serve_procs_env() if args.processes is None else args.processes
    )
    if processes > 1:
        from repro.serve import ShardedRuntime

        if args.cache_keying != "shape":
            print("error: --cache-keying structure is single-process "
                  "(sharded routing is keyed by shape-specialized plan "
                  "signature)", file=sys.stderr)
            return 2
        runtime_cm = ShardedRuntime.from_options(
            options,
            names,
            processes=processes,
            worker_threads=args.workers,
            max_batch=args.max_batch,
        )
    else:
        runtime_cm = ServingRuntime.from_options(
            options,
            registry=registry,
            workers=args.workers,
            max_batch=args.max_batch,
            cache_keying=args.cache_keying,
        )
    with runtime_cm as runtime:
        with ThreadPoolExecutor(max_workers=args.clients) as clients:
            futures = [
                clients.submit(runtime.execute, name, inputs)
                for name, inputs in workload
            ]
            for future in futures:
                future.result()
        snapshot = runtime.metrics_snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    cache = snapshot["plan_cache"]
    latency = snapshot["histograms"].get("total_ms", {})
    engine = snapshot["engine"]
    print(f"served {args.requests} requests over {len(names)} pipelines "
          f"({args.width}x{args.height}, version={args.version}, "
          f"engine={engine['active']})")
    if processes > 1:
        shards = snapshot.get("shards", {})
        alive = sum(1 for view in shards.values() if view.get("alive"))
        counters = snapshot["counters"]
        print(f"shards: {alive}/{processes} alive, "
              f"{counters.get('worker_deaths', 0)} deaths, "
              f"{counters.get('workers_respawned', 0)} respawns, "
              f"{counters.get('requests_retried_on_sibling', 0)} "
              f"sibling retries")
    if engine["active"] != engine["requested"]:
        print(f"note: engine {engine['requested']!r} unavailable "
              f"(no C compiler); served with {engine['active']!r}")
    native_ms = snapshot["histograms"].get("compile_native_compile_ms")
    if native_ms and native_ms.get("count"):
        print(f"native compile ms: mean={native_ms['mean']:.1f} "
              f"over {native_ms['count']} plans")
    print(f"plan cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(hit rate {cache['hit_rate']:.3f}, "
          f"{cache['coalesced']} coalesced; "
          f"{cache['miss_structure']} structure + "
          f"{cache['miss_shape']} shape misses, "
          f"keying={cache.get('keying', 'shape')})")
    print(f"latency ms: p50={latency.get('p50', 0.0):.2f} "
          f"p95={latency.get('p95', 0.0):.2f} "
          f"p99={latency.get('p99', 0.0):.2f}")
    batches = snapshot["counters"].get("batches_executed", 0)
    if batches:
        print(f"batches: {batches} "
              f"(mean size {args.requests / batches:.2f})")
    resilience_snapshot = snapshot["resilience"]
    counters = snapshot["counters"]
    retries = counters.get("request_retries", 0)
    degraded = {
        key.removeprefix("degraded_to_"): value
        for key, value in counters.items()
        if key.startswith("degraded_to_")
    }
    open_breakers = {
        key: state["state"]
        for key, state in resilience_snapshot["breakers"].items()
        if state["state"] != "closed"
    }
    fired = resilience_snapshot["faults"]
    if retries or degraded or open_breakers or fired:
        print(f"resilience: {retries} retries, "
              f"degraded={degraded or 'none'}, "
              f"breakers={open_breakers or 'all closed'}, "
              f"faults fired={fired or 'none'}")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Benchmark cached serving against per-request recompilation."""
    import json

    from repro.serve.bench import run_serving_benchmark

    from repro.envknobs import serve_procs_env

    report = run_serving_benchmark(
        apps=args.apps or list(APPLICATIONS),
        requests_per_app=args.requests_per_app,
        width=args.width,
        height=args.height,
        client_threads=args.clients,
        scheduler_workers=args.workers,
        engine=args.exec_engine,
        processes=(
            serve_procs_env()
            if args.processes is None
            else args.processes
        ),
        cache_keying=args.cache_keying,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report["bit_identical"] else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis passes; exit 1 on any error diagnostic.

    Lints the pipeline IR, explains the legality of every fused block,
    and verifies the compiled instruction tapes of the final partition
    (see :mod:`repro.analysis`).
    """
    import json

    from repro.analysis import describe_codes, lint_app

    if args.codes:
        print(describe_codes())
        return 0
    names = args.apps or sorted(APPLICATIONS)
    for name in names:
        _resolve_app(name)
    if args.lazy:
        from repro.analysis.lint import LINT_HEIGHT, LINT_WIDTH
        from repro.lazy.apps import lazy_trace

        targets = [lazy_trace(name, LINT_WIDTH, LINT_HEIGHT)
                   for name in names]
    else:
        targets = list(names)
    reports = [
        lint_app(
            target,
            gpu=_resolve_gpu(args.gpu),
            config=_config(args),
            version=args.version,
            verify_plans=not args.no_plans,
            native=args.native,
        )
        for target in targets
    ]
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2,
                         sort_keys=True))
    else:
        for report in reports:
            print(report.render(explain=args.explain))
    return 0 if all(r.ok for r in reports) else 1


def cmd_tiling(args: argparse.Namespace) -> int:
    """Report the native engine's 2D-tiling model choices per block.

    Prints the host cache hierarchy the model sizes scratch against
    (detected from sysfs, or micro-calibrated with ``--calibrate``) and,
    for each application, every fused block's model-chosen tile shape —
    or the reason the block keeps the classic row-tiled lowering.
    Needs no C compiler: this reads the model, not the emitted code.
    """
    import json

    from repro.backend.native_exec import tile2d_report
    from repro.model.hardware import calibrate_cpu_caches, detect_cpu_caches

    caches = detect_cpu_caches()
    if args.calibrate:
        caches = calibrate_cpu_caches()
    names = args.apps or sorted(APPLICATIONS)
    reports = {}
    for name in names:
        spec = _resolve_app(name)
        graph = spec.pipeline().build()
        partition = partition_for(
            graph, _resolve_gpu(args.gpu), args.version, _config(args)
        )
        reports[name] = tile2d_report(graph, partition, caches=caches)
    if args.json:
        print(json.dumps(
            {"caches": caches.describe(), "apps": reports},
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"host caches: {caches.describe()}")
    for name in names:
        print(f"\n{name}:")
        for entry in reports[name]:
            kernels = " + ".join(entry["kernels"])
            if "choice" in entry:
                c = entry["choice"]
                tile_h, tile_w = c["tile"]
                print(
                    f"  {entry['output']:<16} tile {tile_h}x{tile_w}  "
                    f"scratch {c['scratch_bytes']}B ({c['fits']})  "
                    f"recompute {c['recompute']:.3f}  [{kernels}]"
                )
            else:
                print(
                    f"  {entry['output']:<16} classic: "
                    f"{entry['classic_reason']}  [{kernels}]"
                )
    return 0


def cmd_figure4(args: argparse.Namespace) -> int:
    """Print the Fig. 4 border-fusion worked example."""
    from repro.eval.figures import figure4_example

    fig4 = figure4_example()
    print("intermediate window (paper: 82 98 93 / 66 61 51 / 43 34 32):")
    print(fig4.intermediate_center.astype(int))
    print(f"interior fused value (paper: 992): {fig4.interior_value:.0f}")
    print(f"staged clamp border  (paper: 763): {fig4.staged_border_value:.0f}")
    print(f"fused + index exchange           : {fig4.fused_border_value:.0f}")
    print(f"fused naive (incorrect)          : {fig4.naive_border_value:.0f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Min-cut kernel fusion for image pipelines "
        "(CGO 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark applications")

    def add_model_flags(p):
        p.add_argument("--gpu", default="GTX680",
                       help="device model (GTX745, GTX680, K20c)")
        p.add_argument("--cmshared", type=float, default=2.0,
                       help="Eq. 2 shared-memory threshold")
        p.add_argument("--epsilon", type=float, default=1e-3,
                       help="illegal-edge weight (Eq. 12)")
        p.add_argument("--gamma", type=float, default=0.0,
                       help="flat additional gain (Eq. 12)")

    fuse = sub.add_parser("fuse", help="fuse an application and print "
                                       "the partition")
    fuse.add_argument("app")
    fuse.add_argument("--engine", choices=sorted(ENGINES), default="mincut")
    fuse.add_argument("--trace", action="store_true",
                      help="print the engine trace")
    add_model_flags(fuse)

    codegen = sub.add_parser("codegen", help="print generated source")
    codegen.add_argument("app")
    codegen.add_argument(
        "--engine", choices=sorted(ENGINES) + ["none"], default="mincut"
    )
    codegen.add_argument(
        "--target", choices=["cuda", "opencl", "c"], default="cuda",
        help="cuda/opencl: GPU kernels; c: OpenMP CPU functions",
    )
    add_model_flags(codegen)

    roofline = sub.add_parser(
        "roofline", help="arithmetic-intensity analysis per launch"
    )
    roofline.add_argument("app")
    roofline.add_argument("--gpu", default="GTX680")

    dot = sub.add_parser("dot", help="Graphviz DOT of the DAG + partition")
    dot.add_argument("app")
    dot.add_argument(
        "--engine", choices=sorted(ENGINES) + ["none"], default="mincut"
    )
    add_model_flags(dot)

    simulate = sub.add_parser("simulate",
                              help="simulated times on all devices")
    simulate.add_argument("app")

    evaluate = sub.add_parser("evaluate",
                              help="reproduce Table I / Table II / Fig. 6")
    evaluate.add_argument("--runs", type=int, default=500)
    evaluate.add_argument("--figure6", action="store_true",
                          help="also print the Fig. 6 box statistics")
    evaluate.add_argument("--no-paper", action="store_true",
                          help="omit the published values")

    sub.add_parser("figure3", help="the Harris fusion walk-through")
    sub.add_parser("figure4", help="the border-fusion worked example")
    sub.add_parser(
        "verify",
        help="run the full paper-conformance checklist (exit 1 on FAIL)",
    )

    artifact = sub.add_parser(
        "artifact", help="write every reproduced table/figure/source "
                         "to a directory"
    )
    artifact.add_argument("--out", default="artifact")
    artifact.add_argument("--runs", type=int, default=500)

    def add_serve_flags(p):
        p.add_argument("--apps", nargs="*", default=None,
                       help="pipelines to serve (default: the six "
                            "paper apps)")
        p.add_argument("--width", type=int, default=96)
        p.add_argument("--height", type=int, default=64)
        p.add_argument("--workers", type=int, default=2,
                       help="scheduler worker threads")
        p.add_argument("--clients", type=int, default=8,
                       help="concurrent client threads")
        p.add_argument("--max-batch", type=int, default=8,
                       help="micro-batch size cap")
        p.add_argument("--processes", type=int, default=None,
                       help="worker processes for sharded serving "
                            "(default: REPRO_SERVE_PROCS or 1; >1 "
                            "serves through a ShardedRuntime)")
        p.add_argument("--exec-engine", default="tape",
                       choices=("tape", "recursive", "native"),
                       help="execution engine serving requests; "
                            "'native' compiles block tapes to C and "
                            "falls back to 'tape' without a compiler")
        p.add_argument("--cache-keying", default="shape",
                       choices=("shape", "structure"),
                       help="plan-cache identity: 'shape' keys on exact "
                            "input shapes (one entry per resolution); "
                            "'structure' keys on pipeline structure + "
                            "dtypes and serves every resolution from "
                            "one shape-polymorphic native plan "
                            "(requires --exec-engine native, "
                            "single-process)")

    lint = sub.add_parser(
        "lint", help="run the static-analysis passes over applications "
                     "(exit 1 on any error diagnostic)"
    )
    lint.add_argument("apps", nargs="*",
                      help="applications to lint (default: the six "
                           "paper apps)")
    lint.add_argument("--version", default="optimized",
                      help="fusion engine whose partition is checked")
    lint.add_argument("--explain", action="store_true",
                      help="print the fusion trace with per-cut "
                           "legality explanations")
    lint.add_argument("--json", action="store_true",
                      help="print the reports as JSON")
    lint.add_argument("--codes", action="store_true",
                      help="print the diagnostic-code catalog and exit")
    lint.add_argument("--native", action="store_true",
                      help="lower the partition through the native C "
                      "backend (specialized and shape-polymorphic) and "
                      "run the codegen sanitizer (NAT0xx) over the "
                      "emitted source; needs a C toolchain")
    lint.add_argument("--no-plans", action="store_true",
                      help="skip tape compilation/verification")
    lint.add_argument("--lazy", action="store_true",
                      help="lint the lazy-recorded (repro.lazy) variant "
                           "of each app: runs the LAZY0xx trace checks, "
                           "then lowers and runs the standard passes")
    add_model_flags(lint)

    serve = sub.add_parser(
        "serve", help="run the serving runtime over a synthetic "
                      "request stream and print metrics"
    )
    serve.add_argument("--requests", type=int, default=100)
    serve.add_argument("--version", default="optimized",
                       help="fusion version served (baseline, basic, "
                            "optimized, ...)")
    serve.add_argument("--json", action="store_true",
                       help="print the raw metrics snapshot as JSON")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="arm deterministic fault injection "
                            "(REPRO_FAULTS grammar, e.g. "
                            "'native.compile:error@10')")
    serve.add_argument("--retries", type=int, default=None,
                       help="max execution attempts per request "
                            "(enables a custom resilience policy)")
    serve.add_argument("--breaker-threshold", type=int, default=None,
                       help="consecutive failures tripping the "
                            "per-pipeline circuit breaker")
    add_serve_flags(serve)
    add_model_flags(serve)

    run_cmd = sub.add_parser(
        "run", help="execute an application via repro.api.run and "
                    "print per-image digests"
    )
    run_cmd.add_argument("app")
    run_cmd.add_argument("--width", type=int, default=96)
    run_cmd.add_argument("--height", type=int, default=64)
    run_cmd.add_argument("--seed", type=int, default=0,
                         help="deterministic input seed")
    run_cmd.add_argument("--exec-engine", default=None,
                         choices=("tape", "recursive", "native"),
                         help="execution engine (default: "
                              "REPRO_EXEC_ENGINE or tape)")
    run_cmd.add_argument("--exec-workers", type=int, default=None,
                         help="parallel block workers within the call")
    run_cmd.add_argument("--validate", default=None,
                         choices=("off", "standard", "strict"),
                         help="per-call validation level")
    run_cmd.add_argument("--version", default="optimized",
                         help="fusion version (baseline, basic, "
                              "optimized, ...)")
    run_cmd.add_argument("--no-fuse", action="store_true",
                         help="run staged (unfused) semantics")
    run_cmd.add_argument("--naive-borders", action="store_true",
                         help="reproduce the border-incorrect naive "
                              "composition (Fig. 4b)")
    run_cmd.add_argument("--json", action="store_true",
                         help="print the digests as JSON")
    add_model_flags(run_cmd)

    serve_bench = sub.add_parser(
        "serve-bench", help="benchmark cached serving vs per-request "
                            "recompilation (JSON report)"
    )
    serve_bench.add_argument("--requests-per-app", type=int, default=20)
    serve_bench.add_argument("--out", default=None,
                             help="also write the report to a file")
    add_serve_flags(serve_bench)

    tiling = sub.add_parser(
        "tiling", help="the native engine's 2D-tiling model choices "
                       "per fused block (host caches + tile shapes)"
    )
    tiling.add_argument("apps", nargs="*",
                        help="applications to report (default: the six "
                             "paper apps)")
    tiling.add_argument("--version", default="optimized",
                        help="fusion version whose partition is tiled")
    tiling.add_argument("--calibrate", action="store_true",
                        help="micro-calibrate effective L1/L2 sizes by "
                             "timed strided traversals instead of "
                             "trusting sysfs")
    tiling.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    add_model_flags(tiling)
    return parser


COMMANDS = {
    "list": cmd_list,
    "fuse": cmd_fuse,
    "codegen": cmd_codegen,
    "dot": cmd_dot,
    "roofline": cmd_roofline,
    "simulate": cmd_simulate,
    "evaluate": cmd_evaluate,
    "figure3": cmd_figure3,
    "figure4": cmd_figure4,
    "lint": cmd_lint,
    "verify": cmd_verify,
    "artifact": cmd_artifact,
    "run": cmd_run,
    "serve": cmd_serve,
    "serve-bench": cmd_serve_bench,
    "tiling": cmd_tiling,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Stoer–Wagner global minimum cut, implemented from scratch.

The paper picks the Stoer–Wagner algorithm [14] to split illegal
partition blocks: it is deterministic, simple, and runs in
``O(|E||V| + |V|^2 log |V|)``.  The algorithm operates on an undirected
edge-weighted graph; the kernel DAG is used undirected for cutting
(Section III-A), with anti-parallel edge pairs summed.

The implementation follows the original paper: ``|V| - 1`` *minimum cut
phases*, each performing a maximum-adjacency ordering from a fixed
start vertex; the cut-of-the-phase isolates the vertex added last, and
the two last-added vertices are merged before the next phase.  The best
cut-of-the-phase over all phases is a global minimum cut.

Determinism: ties in the maximum-adjacency selection are broken by
vertex insertion order (the order of the ``vertices`` argument), so
repeated runs — and therefore the whole fusion pipeline — are
reproducible, matching the paper's "selects the first one encountered"
tie rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.graph.dag import GraphError, KernelGraph


@dataclass(frozen=True)
class MinCutResult:
    """A global minimum cut: weight and the two vertex sides."""

    weight: float
    side_a: FrozenSet[str]
    side_b: FrozenSet[str]

    def sides(self) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        return self.side_a, self.side_b


def _components(
    vertices: Sequence[str], adjacency: Dict[str, Dict[str, float]]
) -> List[Set[str]]:
    """Connected components in insertion order of their first member."""
    remaining = list(vertices)
    seen: Set[str] = set()
    components: List[Set[str]] = []
    for vertex in remaining:
        if vertex in seen:
            continue
        component = {vertex}
        stack = [vertex]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if neighbor not in component:
                    component.add(neighbor)
                    stack.append(neighbor)
        seen |= component
        components.append(component)
    return components


def stoer_wagner(
    vertices: Sequence[str],
    edges: Iterable[Tuple[str, str, float]],
    start: str | None = None,
) -> MinCutResult:
    """Global minimum cut of an undirected weighted graph.

    ``edges`` may contain parallel and anti-parallel entries; their
    weights accumulate.  Self loops are ignored (they cross no cut).
    All weights must be positive.  If the graph is disconnected, the cut
    separating the first connected component has weight 0 and is
    returned immediately.

    ``start`` fixes the first vertex of every maximum-adjacency ordering
    (the paper starts the Harris example from ``dx``); it defaults to
    the first vertex.
    """
    order = list(vertices)
    if len(order) < 2:
        raise GraphError("minimum cut needs at least two vertices")
    if len(set(order)) != len(order):
        raise GraphError("duplicate vertices")

    adjacency: Dict[str, Dict[str, float]] = {v: {} for v in order}
    for src, dst, weight in edges:
        if src == dst:
            continue
        if src not in adjacency or dst not in adjacency:
            raise GraphError(f"edge ({src!r}, {dst!r}) references unknown vertex")
        if weight <= 0:
            raise GraphError(
                f"Stoer-Wagner requires positive weights, got {weight} on "
                f"({src!r}, {dst!r})"
            )
        adjacency[src][dst] = adjacency[src].get(dst, 0.0) + weight
        adjacency[dst][src] = adjacency[dst].get(src, 0.0) + weight

    components = _components(order, adjacency)
    if len(components) > 1:
        side_a = frozenset(components[0])
        side_b = frozenset(v for v in order if v not in components[0])
        return MinCutResult(0.0, side_a, side_b)

    if start is None:
        start = order[0]
    elif start not in adjacency:
        raise GraphError(f"start vertex {start!r} not in graph")

    # Each supernode is a frozenset of original vertices.  ``merged``
    # maps a representative vertex name to its member set.
    members: Dict[str, Set[str]] = {v: {v} for v in order}
    active: List[str] = list(order)
    rank = {v: i for i, v in enumerate(order)}

    best_weight = float("inf")
    best_side: Set[str] = set()

    while len(active) > 1:
        # --- one minimum cut phase: maximum adjacency ordering ---------
        phase_start = start if start in members else active[0]
        added = [phase_start]
        added_set = {phase_start}
        # connectivity weight of every not-yet-added vertex to the added set
        weights_to_added: Dict[str, float] = {
            v: adjacency[phase_start].get(v, 0.0) for v in active if v != phase_start
        }
        while len(added) < len(active):
            # most tightly connected vertex; ties by insertion order
            candidate = max(
                weights_to_added,
                key=lambda v: (weights_to_added[v], -rank[v]),
            )
            added.append(candidate)
            added_set.add(candidate)
            del weights_to_added[candidate]
            for neighbor, weight in adjacency[candidate].items():
                if neighbor in weights_to_added:
                    weights_to_added[neighbor] += weight

        last = added[-1]
        second_last = added[-2]
        cut_of_phase = sum(adjacency[last].values())
        if cut_of_phase < best_weight:
            best_weight = cut_of_phase
            best_side = set(members[last])

        # --- merge the two last-added supernodes ------------------------
        members[second_last] |= members[last]
        for neighbor, weight in list(adjacency[last].items()):
            if neighbor == second_last:
                continue
            adjacency[neighbor][second_last] = (
                adjacency[neighbor].get(second_last, 0.0) + weight
            )
            adjacency[second_last][neighbor] = (
                adjacency[second_last].get(neighbor, 0.0) + weight
            )
            del adjacency[neighbor][last]
        adjacency[second_last].pop(last, None)
        del adjacency[last]
        del members[last]
        active.remove(last)

    side_a = frozenset(best_side)
    side_b = frozenset(v for v in order if v not in best_side)
    if not side_a or not side_b:
        raise GraphError("degenerate cut")  # pragma: no cover - invariant
    return MinCutResult(best_weight, side_a, side_b)


def min_cut_partition(
    graph: KernelGraph,
    vertices: Sequence[str],
    start: str | None = None,
) -> MinCutResult:
    """Minimum cut of the subgraph of ``graph`` induced by ``vertices``.

    Directed DAG edges are symmetrized for cutting; parallel edges (a
    producer feeding the same consumer through two images) accumulate.
    This is the ``MinCut(p)`` step of Algorithm 1.
    """
    vertex_set = set(vertices)
    weighted = []
    for e in graph.induced_edges(vertex_set):
        if e.weight is None:
            raise GraphError(
                f"edge {e.src!r}->{e.dst!r} has no weight; run benefit "
                "estimation first"
            )
        weighted.append((e.src, e.dst, e.weight))
    return stoer_wagner(list(vertices), weighted, start=start)

"""The kernel dependence DAG.

:class:`KernelGraph` stores kernels keyed by name and the data-dependence
edges between them.  Each edge is labelled with the image flowing across
it and (after benefit estimation) carries a positive weight — the number
of execution cycles saved by fusing its endpoints (Section II-C).

The graph also records which images are pipeline inputs (produced by no
kernel) and which kernel outputs are pipeline outputs (live past the
pipeline); the legality analysis needs both.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dsl.kernel import Kernel


class GraphError(ValueError):
    """Raised for malformed graphs (cycles, duplicate producers, ...)."""


@dataclass(frozen=True)
class Edge:
    """A data-dependence edge: ``dst`` consumes ``src``'s output image.

    ``weight`` is assigned by the benefit model; ``None`` means "not yet
    estimated".  Edges compare by endpoints and image so that a graph
    with re-weighted edges still identifies the same dependences.
    """

    src: str
    dst: str
    image: str
    weight: float | None = field(default=None, compare=False)

    def weighted(self, weight: float) -> "Edge":
        """A copy of this edge carrying ``weight``."""
        return replace(self, weight=weight)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)


class KernelGraph:
    """A DAG of kernels with labelled, weighted edges.

    Vertices are addressed by kernel name throughout the fusion
    machinery — names are unique per pipeline and cheap to hash, while
    :class:`~repro.dsl.kernel.Kernel` objects stay the single source of
    truth for bodies and headers.
    """

    def __init__(
        self,
        kernels: Iterable["Kernel"],
        external_outputs: Iterable[str] = (),
        declared_domains: "Mapping[str, object] | None" = None,
    ):
        #: Declared value domains, image name -> domain (anything the
        #: value-range analysis accepts: a ``VRange``, an ``(lo, hi)``
        #: tuple, or a scalar).  Purely advisory — they seed
        #: :func:`repro.analysis.dataflow.analyze_graph` and never enter
        #: :meth:`structural_signature`, so the serving plan cache and
        #: the native artifact cache are oblivious to them.
        self.declared_domains: Dict[str, object] = dict(declared_domains or {})
        self._kernels: Dict[str, "Kernel"] = {}
        producers: Dict[str, str] = {}
        for kernel in kernels:
            if kernel.name in self._kernels:
                raise GraphError(f"duplicate kernel name {kernel.name!r}")
            if kernel.output.name in producers:
                raise GraphError(
                    f"image {kernel.output.name!r} produced by both "
                    f"{producers[kernel.output.name]!r} and {kernel.name!r}"
                )
            self._kernels[kernel.name] = kernel
            producers[kernel.output.name] = kernel.name
        self._producer_of_image = producers

        self._edges: List[Edge] = []
        edge_keys: Set[Tuple[str, str, str]] = set()
        for kernel in self._kernels.values():
            for image in kernel.input_images:
                producer = producers.get(image.name)
                if producer is None:
                    continue  # pipeline input
                if producer == kernel.name:
                    # Kernel.__init__ already rejects this; keep a clear
                    # message for graphs assembled from hand-built
                    # kernels rather than a one-vertex "cycle" report.
                    raise GraphError(
                        f"kernel {kernel.name!r} reads its own output "
                        f"image {image.name!r}"
                    )
                key = (producer, kernel.name, image.name)
                if key not in edge_keys:
                    edge_keys.add(key)
                    self._edges.append(Edge(producer, kernel.name, image.name))

        declared = set(external_outputs)
        unknown = declared - set(producers)
        if unknown:
            raise GraphError(
                f"external outputs {sorted(unknown)} are produced by no kernel"
            )
        # Sink outputs are always external: nothing else observes them.
        consumed = {e.image for e in self._edges}
        sinks = {k.output.name for k in self._kernels.values()} - consumed
        self._external_outputs: Set[str] = declared | sinks

        self._topo_order = self._topological_sort()

    # -- basic queries -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._kernels)

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def __iter__(self) -> Iterator[str]:
        return iter(self._topo_order)

    @property
    def kernel_names(self) -> Tuple[str, ...]:
        """Kernel names in topological order."""
        return tuple(self._topo_order)

    def kernel(self, name: str) -> "Kernel":
        return self._kernels[name]

    def kernels(self) -> Tuple["Kernel", ...]:
        """All kernels in topological order."""
        return tuple(self._kernels[name] for name in self._topo_order)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(self._edges)

    def edge(self, src: str, dst: str) -> Edge:
        """The edge from ``src`` to ``dst`` (KeyError if absent)."""
        for e in self._edges:
            if e.src == src and e.dst == dst:
                return e
        raise KeyError(f"no edge {src!r} -> {dst!r}")

    def has_edge(self, src: str, dst: str) -> bool:
        return any(e.src == src and e.dst == dst for e in self._edges)

    @property
    def external_outputs(self) -> Set[str]:
        """Image names whose contents must survive the pipeline."""
        return set(self._external_outputs)

    def producer_of(self, image_name: str) -> str | None:
        """The kernel producing ``image_name``; None for pipeline inputs."""
        return self._producer_of_image.get(image_name)

    def consumers_of(self, image_name: str) -> Tuple[str, ...]:
        """Kernels reading ``image_name`` (by name, topological order)."""
        readers = {
            k.name for k in self._kernels.values() if image_name in k.input_names
        }
        return tuple(name for name in self._topo_order if name in readers)

    def pipeline_inputs(self) -> Tuple[str, ...]:
        """Image names read by some kernel but produced by none."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for name in self._topo_order:
            for image in self._kernels[name].input_names:
                if image not in self._producer_of_image and image not in seen:
                    seen.add(image)
                    ordered.append(image)
        return tuple(ordered)

    def predecessors(self, name: str) -> Tuple[str, ...]:
        preds = {e.src for e in self._edges if e.dst == name}
        return tuple(n for n in self._topo_order if n in preds)

    def successors(self, name: str) -> Tuple[str, ...]:
        succs = {e.dst for e in self._edges if e.src == name}
        return tuple(n for n in self._topo_order if n in succs)

    def structural_signature(self) -> str:
        """A stable hex digest of the graph's structure.

        Covers every kernel signature (in topological order), the edge
        set, and the external outputs — everything plan compilation and
        execution semantics depend on — while ignoring object identity
        and edge *weights* (weights belong to the fusion configuration,
        which plan caches key separately).  Two graphs built separately
        by the same pipeline code hash identically, which is what lets
        the serving runtime's plan cache (:mod:`repro.serve.plancache`)
        reuse compiled plans across requests and sessions.
        """
        cached = getattr(self, "_signature_cache", None)
        if cached is None:
            payload = (
                tuple(
                    self._kernels[name].structural_signature()
                    for name in self._topo_order
                ),
                tuple(sorted((e.src, e.dst, e.image) for e in self._edges)),
                tuple(sorted(self._external_outputs)),
            )
            cached = hashlib.sha256(repr(payload).encode()).hexdigest()
            self._signature_cache = cached
        return cached

    def structure_signature(self) -> str:
        """:meth:`structural_signature` with image geometry elided.

        Two graphs built by the same pipeline code at *different
        resolutions* hash identically here (while any change to kernel
        bodies, boundaries, channels, edges, or outputs still misses) —
        the identity under which the serving runtime's structure-keyed
        plan cache shares one shape-polymorphic native plan across every
        geometry of a pipeline.
        """
        cached = getattr(self, "_structure_sig_cache", None)
        if cached is None:
            payload = (
                tuple(
                    self._kernels[name].structure_signature()
                    for name in self._topo_order
                ),
                tuple(sorted((e.src, e.dst, e.image) for e in self._edges)),
                tuple(sorted(self._external_outputs)),
            )
            cached = hashlib.sha256(repr(payload).encode()).hexdigest()
            self._structure_sig_cache = cached
        return cached

    @property
    def total_weight(self) -> float:
        """The paper's ``w_G``: sum of all edge weights (Eq. 13)."""
        missing = [e for e in self._edges if e.weight is None]
        if missing:
            raise GraphError(
                f"{len(missing)} edges have no weight; run benefit "
                "estimation first"
            )
        return sum(e.weight for e in self._edges)

    # -- mutation (weights only — structure is immutable) -------------------

    def with_weights(self, weights: Dict[Tuple[str, str], float]) -> "KernelGraph":
        """A structurally identical graph with the given edge weights.

        ``weights`` maps ``(src, dst)`` to the estimated fusion benefit.
        Every edge must receive a weight, and weights must be positive —
        the Stoer–Wagner invariants of Algorithm 1 require it.
        """
        new = KernelGraph.__new__(KernelGraph)
        new._kernels = self._kernels
        new._producer_of_image = self._producer_of_image
        new._external_outputs = self._external_outputs
        new._topo_order = self._topo_order
        new_edges = []
        for e in self._edges:
            if e.key not in weights:
                raise GraphError(f"missing weight for edge {e.src!r}->{e.dst!r}")
            weight = weights[e.key]
            if weight <= 0:
                raise GraphError(
                    f"edge weight must be positive, got {weight} for "
                    f"{e.src!r}->{e.dst!r}"
                )
            new_edges.append(e.weighted(weight))
        new._edges = new_edges
        return new

    # -- structure ----------------------------------------------------------

    def _topological_sort(self) -> List[str]:
        """Kahn's algorithm; raises :class:`GraphError` on cycles.

        Ties are broken by kernel insertion order so that the whole
        toolchain (min-cut starting vertex, trace output, codegen order)
        is deterministic.
        """
        insertion = {name: i for i, name in enumerate(self._kernels)}
        indegree = {name: 0 for name in self._kernels}
        for e in self._edges:
            indegree[e.dst] += 1
        ready = sorted(
            (name for name, deg in indegree.items() if deg == 0),
            key=insertion.__getitem__,
        )
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            changed = False
            for e in self._edges:
                if e.src == name:
                    indegree[e.dst] -= 1
                    if indegree[e.dst] == 0:
                        ready.append(e.dst)
                        changed = True
            if changed:
                ready.sort(key=insertion.__getitem__)
        if len(order) != len(self._kernels):
            stuck = sorted(set(self._kernels) - set(order))
            raise GraphError(f"dependence cycle involving {stuck}")
        return order

    def induced_edges(self, vertices: Set[str]) -> Tuple[Edge, ...]:
        """Edges with both endpoints inside ``vertices``."""
        return tuple(
            e for e in self._edges if e.src in vertices and e.dst in vertices
        )

    def is_connected(self, vertices: Set[str]) -> bool:
        """Weak connectivity of the induced subgraph."""
        if not vertices:
            return True
        adjacency: Dict[str, Set[str]] = {v: set() for v in vertices}
        for e in self.induced_edges(vertices):
            adjacency[e.src].add(e.dst)
            adjacency[e.dst].add(e.src)
        start = next(iter(sorted(vertices)))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen == set(vertices)

    def __repr__(self) -> str:
        return (
            f"KernelGraph({len(self._kernels)} kernels, "
            f"{len(self._edges)} edges)"
        )

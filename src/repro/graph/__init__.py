"""The kernel dependence DAG and graph partitioning machinery.

The fusion problem of the paper is stated on a directed acyclic graph
``G = (V, E)``: vertices are kernels, an edge ``(v_i, v_j)`` means kernel
``v_j`` consumes the image produced by kernel ``v_i``.  This package
provides:

* :class:`~repro.graph.dag.KernelGraph` — the DAG with edge weights,
* :class:`~repro.graph.partition.PartitionBlock` /
  :class:`~repro.graph.partition.Partition` — partition blocks and full
  partitions with the paper's disjoint-cover validity conditions,
* :func:`~repro.graph.mincut.stoer_wagner` — a from-scratch
  implementation of the Stoer–Wagner global minimum cut used by
  Algorithm 1.
"""

from repro.graph.dag import Edge, GraphError, KernelGraph
from repro.graph.mincut import MinCutResult, stoer_wagner, min_cut_partition
from repro.graph.partition import Partition, PartitionBlock

__all__ = [
    "Edge",
    "GraphError",
    "KernelGraph",
    "MinCutResult",
    "Partition",
    "PartitionBlock",
    "min_cut_partition",
    "stoer_wagner",
]

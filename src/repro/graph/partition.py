"""Partition blocks and partitions (Section II-A).

A *partition block* is a set of kernels that will be fused into one; a
*partition* is a set of blocks that is pairwise disjoint and covers the
graph.  The objective value β of a partition is the sum of the weights
of all edges *inside* blocks (Eq. 1) — equivalently, the total graph
weight minus the weight of all cut edges (Eq. 13).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.graph.dag import Edge, GraphError, KernelGraph


class PartitionBlock:
    """An immutable set of kernel names within a graph."""

    def __init__(self, graph: KernelGraph, vertices: Iterable[str]):
        names: FrozenSet[str] = frozenset(vertices)
        if not names:
            raise GraphError("partition block must be non-empty")
        unknown = [v for v in names if v not in graph]
        if unknown:
            raise GraphError(f"unknown kernels in block: {sorted(unknown)}")
        self.graph = graph
        self.vertices = names

    def __len__(self) -> int:
        return len(self.vertices)

    def __contains__(self, name: str) -> bool:
        return name in self.vertices

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PartitionBlock)
            and self.vertices == other.vertices
            and self.graph is other.graph
        )

    def __hash__(self) -> int:
        return hash(self.vertices)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """Edges with both endpoints in the block."""
        return self.graph.induced_edges(set(self.vertices))

    @property
    def weight(self) -> float:
        """The paper's ``w_P``: sum of intra-block edge weights."""
        return sum(e.weight or 0.0 for e in self.edges)

    def ordered_vertices(self) -> Tuple[str, ...]:
        """Block members in the graph's topological order."""
        return tuple(n for n in self.graph.kernel_names if n in self.vertices)

    def source_kernels(self) -> Tuple[str, ...]:
        """Members with no producer inside the block (the ``k_s`` role)."""
        return tuple(
            name
            for name in self.ordered_vertices()
            if not any(p in self.vertices for p in self.graph.predecessors(name))
        )

    def destination_kernels(self) -> Tuple[str, ...]:
        """Members whose output escapes the block (the ``k_d`` role).

        A kernel's output escapes if it is consumed outside the block or
        is an external output of the pipeline.  A legal block has
        exactly one destination (only the destination's output survives
        fusion, Listing 1).
        """
        escaping: List[str] = []
        for name in self.ordered_vertices():
            output = self.graph.kernel(name).output.name
            consumers = self.graph.consumers_of(output)
            external = [c for c in consumers if c not in self.vertices]
            if external or output in self.graph.external_outputs:
                escaping.append(name)
        return tuple(escaping)

    def external_input_images(self) -> Tuple[str, ...]:
        """Images read inside the block but produced outside it."""
        produced = {self.graph.kernel(n).output.name for n in self.vertices}
        seen: Set[str] = set()
        ordered: List[str] = []
        for name in self.ordered_vertices():
            for image in self.graph.kernel(name).input_names:
                if image not in produced and image not in seen:
                    seen.add(image)
                    ordered.append(image)
        return tuple(ordered)

    def intermediate_images(self) -> Tuple[str, ...]:
        """Images produced and consumed entirely inside the block.

        These are the images kernel fusion removes from global memory.
        """
        result: List[str] = []
        destinations = set(self.destination_kernels())
        for name in self.ordered_vertices():
            if name not in destinations:
                result.append(self.graph.kernel(name).output.name)
        return tuple(result)

    def is_connected(self) -> bool:
        return self.graph.is_connected(set(self.vertices))

    def signature(self) -> Tuple[str, ...]:
        """The block's members as a canonical sorted tuple.

        Hashable and independent of graph object identity; plan caches
        key compiled block tapes on it.
        """
        return tuple(sorted(self.vertices))

    def __repr__(self) -> str:
        return f"PartitionBlock({sorted(self.vertices)})"


class Partition:
    """A set of partition blocks forming a disjoint cover of the graph."""

    def __init__(self, graph: KernelGraph, blocks: Sequence[PartitionBlock]):
        covered: Set[str] = set()
        for block in blocks:
            if block.graph is not graph:
                raise GraphError("block belongs to a different graph")
            overlap = covered & set(block.vertices)
            if overlap:
                raise GraphError(
                    f"blocks overlap on kernels {sorted(overlap)}"
                )
            covered |= set(block.vertices)
        missing = set(graph.kernel_names) - covered
        if missing:
            raise GraphError(f"partition does not cover kernels {sorted(missing)}")
        self.graph = graph
        # Deterministic order: by first member in topological order.
        topo_index = {name: i for i, name in enumerate(graph.kernel_names)}
        self.blocks: Tuple[PartitionBlock, ...] = tuple(
            sorted(
                blocks,
                key=lambda b: min(topo_index[v] for v in b.vertices),
            )
        )

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    @property
    def benefit(self) -> float:
        """The objective β of Eq. (1)."""
        return sum(block.weight for block in self.blocks)

    @property
    def cut_weight(self) -> float:
        """Total weight of edges crossing blocks (``w_C`` in Eq. 13)."""
        return self.graph.total_weight - self.benefit

    def block_of(self, kernel_name: str) -> PartitionBlock:
        """The block containing ``kernel_name``."""
        for block in self.blocks:
            if kernel_name in block:
                return block
        raise KeyError(f"kernel {kernel_name!r} not in partition")

    def fused_block_count(self) -> int:
        """Number of blocks with more than one kernel."""
        return sum(1 for block in self.blocks if len(block) > 1)

    @classmethod
    def singletons(cls, graph: KernelGraph) -> "Partition":
        """The identity partition: every kernel in its own block.

        This is the *baseline* configuration of the evaluation — no
        fusion is applied.
        """
        return cls(graph, [PartitionBlock(graph, {n}) for n in graph.kernel_names])

    def signature(self) -> Tuple[Tuple[str, ...], ...]:
        """Canonical per-block signatures in deterministic block order.

        Two partitions of structurally identical graphs with the same
        block structure share one signature — the fusion-level half of
        the serving plan-cache key (the graph-level half is
        :meth:`repro.graph.dag.KernelGraph.structural_signature`).
        """
        return tuple(block.signature() for block in self.blocks)

    def describe(self) -> str:
        """Human-readable one-line-per-block summary."""
        lines = []
        for block in self.blocks:
            members = ", ".join(block.ordered_vertices())
            tag = "fused" if len(block) > 1 else "single"
            lines.append(f"[{tag}] {{{members}}} weight={block.weight:g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        sizes = [len(b) for b in self.blocks]
        return f"Partition({len(self.blocks)} blocks, sizes={sizes})"

"""Graphviz DOT export of kernel DAGs and fusion partitions.

Produces figures in the style of the paper's Fig. 3: vertices are
kernels (shape-coded by compute pattern), edges carry their estimated
benefit weights, and partition blocks render as clusters.  The output
is plain DOT text — render with ``dot -Tpdf`` wherever Graphviz is
available.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dsl.kernel import ComputePattern
from repro.graph.dag import KernelGraph
from repro.graph.partition import Partition

_SHAPE = {
    ComputePattern.POINT: "ellipse",
    ComputePattern.LOCAL: "box",
    ComputePattern.GLOBAL: "hexagon",
}

_FILL = {
    ComputePattern.POINT: "#dbeafe",
    ComputePattern.LOCAL: "#dcfce7",
    ComputePattern.GLOBAL: "#fee2e2",
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def _format_weight(weight: float | None, epsilon: float | None) -> str:
    if weight is None:
        return ""
    if epsilon is not None and weight <= epsilon:
        return "ε"
    if weight == int(weight):
        return str(int(weight))
    return f"{weight:g}"


def to_dot(
    graph: KernelGraph,
    partition: Partition | None = None,
    epsilon: float | None = None,
    title: str | None = None,
) -> str:
    """Render a kernel DAG (optionally with its partition) as DOT.

    ``epsilon`` marks weights at or below it with the ε symbol, exactly
    like the paper's figures.
    """
    lines: List[str] = ["digraph pipeline {"]
    lines.append("    rankdir=TB;")
    lines.append('    node [style=filled, fontname="Helvetica"];')
    if title:
        lines.append(f'    label="{_escape(title)}"; labelloc=t;')

    def node_line(name: str, indent: str = "    ") -> str:
        kernel = graph.kernel(name)
        pattern = kernel.pattern
        return (
            f'{indent}"{_escape(name)}" [shape={_SHAPE[pattern]}, '
            f'fillcolor="{_FILL[pattern]}", '
            f'tooltip="{pattern.value}, window {kernel.window_size}"];'
        )

    if partition is None:
        for name in graph.kernel_names:
            lines.append(node_line(name))
    else:
        for index, block in enumerate(partition.blocks):
            if len(block) > 1:
                lines.append(f"    subgraph cluster_{index} {{")
                lines.append('        style=rounded; color="#64748b";')
                lines.append(
                    f'        label="fused (w={block.weight:g})";'
                )
                for name in block.ordered_vertices():
                    lines.append(node_line(name, indent=" " * 8))
                lines.append("    }")
            else:
                (name,) = block.vertices
                lines.append(node_line(name))

    for edge in graph.edges:
        label = _format_weight(edge.weight, epsilon)
        attributes = f' [label="{label}"]' if label else ""
        lines.append(
            f'    "{_escape(edge.src)}" -> "{_escape(edge.dst)}"{attributes};'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def legend() -> Dict[str, str]:
    """Shape legend used by the exporter (for documentation/tests)."""
    return {pattern.value: shape for pattern, shape in _SHAPE.items()}

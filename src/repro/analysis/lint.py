"""Lint orchestration: run every analysis pass over one application.

``repro lint <app>`` lands here.  :func:`lint_app` builds the
application's pipeline at a small geometry (the passes are structural —
geometry only scales array sizes, not findings), then runs

1. the **pipeline lint** (:mod:`repro.analysis.passes`),
2. the **value-range dataflow** (:mod:`repro.analysis.dataflow`),
   seeded by the pipeline's declared domains,
3. **fusion** under the requested engine version, checking that every
   block of the final partition is legal
   (:mod:`repro.analysis.explain`) — and keeping the engine trace so
   ``--explain`` can show *why* each cut or rejection happened,
4. the **plan verifier** (:mod:`repro.analysis.verifier`) over the
   compiled instruction tapes of that partition,
5. with ``native=True`` (``repro lint --native``), the **native-codegen
   sanitizer** (:mod:`repro.analysis.native_check`) over the C emitted
   for that partition, specialized *and* shape-polymorphic.

The report's error gate covers the diagnostics only; trace events are
explanatory context (a cut is a decision, not a defect).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    has_errors,
    render_diagnostics,
)
from repro.analysis.explain import explain_block
from repro.analysis.passes import lint_pipeline
from repro.analysis.verifier import verify_partition_plan
from repro.model.benefit import BenefitConfig
from repro.model.hardware import KNOWN_GPUS, GpuSpec

#: Default lint geometry: big enough for every paper mask, small enough
#: that tape compilation and verification stay instant.
LINT_WIDTH = 64
LINT_HEIGHT = 48


@dataclass
class LintReport:
    """Everything one lint run found for one application."""

    app: str
    version: str
    diagnostics: Tuple[Diagnostic, ...] = field(default_factory=tuple)
    #: Engine trace events (``ready`` / ``cut`` / ``reject``) with their
    #: structured legality explanations — ``--explain`` output.
    trace: Tuple[Any, ...] = field(default_factory=tuple)
    #: Final partition blocks as sorted member tuples.
    blocks: Tuple[Tuple[str, ...], ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not has_errors(self.diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def render(self, explain: bool = False) -> str:
        errors = self.count(Severity.ERROR)
        warnings = self.count(Severity.WARNING)
        lines = [
            f"{self.app} [{self.version}]: "
            f"{errors} error(s), {warnings} warning(s), "
            f"{len(self.blocks)} block(s)"
        ]
        if self.diagnostics:
            lines.append(render_diagnostics(self.diagnostics))
        if explain:
            for event in self.trace:
                lines.append("  " + event.describe())
                for diagnostic in getattr(event, "diagnostics", ()):
                    lines.append("      " + diagnostic.render())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "version": self.version,
            "ok": self.ok,
            "errors": self.count(Severity.ERROR),
            "warnings": self.count(Severity.WARNING),
            "blocks": [list(b) for b in self.blocks],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


@dataclass(frozen=True)
class _TraceSpec:
    """Name carrier standing in for an AppSpec when linting a lazy trace."""

    name: str


def lint_app(
    app,
    width: int = LINT_WIDTH,
    height: int = LINT_HEIGHT,
    gpu: "GpuSpec | str" = "GTX680",
    config: Optional[BenefitConfig] = None,
    version: str = "optimized",
    verify_plans: bool = True,
    native: bool = False,
) -> LintReport:
    """Run the whole analysis stack over one application.

    ``app`` is an :class:`~repro.apps.AppSpec`, a registered app name,
    or a lazy-recorded :class:`~repro.lazy.trace.Trace` — traces first
    run the ``LAZY0xx`` checks (:func:`repro.lazy.lint.lint_trace`) and
    then lower through the ordinary pipeline passes (their geometry is
    fixed at recording time, so ``width``/``height`` are ignored).
    ``version`` selects the fusion engine whose final partition is
    checked and whose trace the report keeps.  ``verify_plans=False``
    skips tape compilation/verification (pipeline + fusion passes only).
    ``native=True`` additionally lowers the partition through the native
    C backend — both specialized and shape-polymorphic — and runs the
    codegen sanitizer over the emitted source (``NAT0xx``); it needs a
    working C toolchain.
    """
    from repro.apps import ALL_APPS
    from repro.lazy.lint import lint_trace
    from repro.lazy.trace import Trace

    if isinstance(app, str):
        try:
            app = ALL_APPS[app]
        except KeyError:
            known = ", ".join(sorted(ALL_APPS))
            raise KeyError(f"unknown application {app!r}; known: {known}")
    if isinstance(gpu, str):
        gpu = KNOWN_GPUS[gpu]
    config = config or BenefitConfig()

    diagnostics: List[Diagnostic] = []
    provenance: Dict[str, str] = {}
    if isinstance(app, Trace):
        diagnostics.extend(lint_trace(app))
        if any(d.code == "LAZY001" for d in diagnostics):
            # Nothing lowered: there is no pipeline to lint or fuse.
            return LintReport(
                app=app.name,
                version=version,
                diagnostics=tuple(diagnostics),
            )
        pipeline = app.lower()
        provenance = app.checkpoint_provenance()
        app = _TraceSpec(app.name)
    else:
        pipeline = app.build(width, height)
    diagnostics.extend(lint_pipeline(pipeline))

    trace: Tuple[Any, ...] = ()
    blocks: Tuple[Tuple[str, ...], ...] = ()
    if not has_errors(diagnostics):
        # Fusion + plan verification need a buildable graph; with
        # structural errors present there is nothing sound to fuse.
        graph = pipeline.build()
        from repro.analysis.dataflow import lint_graph_values

        diagnostics.extend(lint_graph_values(graph))
        partition, result = _fuse(graph, gpu, version, config)
        if result is not None:
            trace = tuple(result.trace)
        blocks = partition.signature()
        for block in partition:
            diagnostics.extend(
                explain_block(graph, block.vertices, gpu, config.c_mshared)
            )
        if verify_plans:
            from repro.backend.plan import plan_for_partition

            plan = plan_for_partition(graph, partition)
            diagnostics.extend(verify_partition_plan(plan, graph=graph))
        if native:
            diagnostics.extend(_lint_native(graph, partition))
    if provenance:
        diagnostics = [_with_provenance(d, provenance) for d in diagnostics]
    return LintReport(
        app=app.name,
        version=version,
        diagnostics=tuple(diagnostics),
        trace=trace,
        blocks=blocks,
    )


def _with_provenance(
    diagnostic: Diagnostic, provenance: Dict[str, str]
) -> Diagnostic:
    """Point a diagnostic on a synthesized lazy kernel at its checkpoint.

    Auto-materialized kernels carry names the user never wrote
    (``lazy0``, ...); the location path gains the nearest downstream
    ``checkpoint()`` name so ``repro lint --lazy`` output is actionable.
    """
    checkpoint = provenance.get(diagnostic.kernel or "")
    if checkpoint is None:
        return diagnostic
    suffix = f"via checkpoint {checkpoint!r}"
    path = f"{diagnostic.path} ({suffix})" if diagnostic.path else suffix
    return replace(diagnostic, path=path)


def _lint_native(graph, partition) -> List[Diagnostic]:
    """Sanitize the native C emitted for ``partition`` (NAT diagnostics).

    The plans are built under a ``standard`` validation override so that
    strict mode's build-time enforcement cannot raise before the lint
    report collects the findings; the sanitizer then runs explicitly
    over both grammars (baked extents and runtime-geometry formals).
    Blocks that fell back to the tape interpreter carry no native code
    and verify vacuously.
    """
    from repro.analysis.native_check import verify_native_plan
    from repro.backend.native_exec import native_plan_for_partition
    from repro.envknobs import validate_override

    diagnostics: List[Diagnostic] = []
    with validate_override("standard"):
        for polymorphic in (False, True):
            plan = native_plan_for_partition(
                graph, partition, polymorphic=polymorphic
            )
            diagnostics.extend(verify_native_plan(plan))
    return diagnostics


def _fuse(graph, gpu, version, config):
    """The fused partition plus the engine result (None for baseline)."""
    from repro.eval.runner import partition_for
    from repro.fusion.greedy_fusion import greedy_fusion
    from repro.fusion.mincut_fusion import mincut_fusion
    from repro.graph.partition import Partition
    from repro.model.benefit import estimate_graph

    if version == "baseline":
        return Partition.singletons(graph), None
    traced = {"optimized": mincut_fusion, "greedy": greedy_fusion}
    engine = traced.get(version)
    if engine is not None:
        result = engine(estimate_graph(graph, gpu, config))
        return result.partition, result
    return partition_for(graph, gpu, version, config), None

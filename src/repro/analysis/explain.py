"""Fusion explainability: *why* a candidate block is (il)legal.

Structured counterparts of the legality checks in
:mod:`repro.model.legality` — one :class:`~repro.analysis.diagnostics.Diagnostic`
per violation, carrying the Fig. 2 scenario, the Eq. 2 budget
arithmetic, or the mismatching header fields in its ``details`` dict.
The message text is byte-identical to the strings the legality layer
has always produced (``check_*`` are now thin wrappers over these
passes), so log scrapers and tests matching on messages keep working
while new consumers match on codes.

The fusion engines surface these through their trace events
(:mod:`repro.fusion.mincut_fusion`, :mod:`repro.fusion.greedy_fusion`),
making every partition decision auditable.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.diagnostics import Diagnostic, diag
from repro.dsl.kernel import ComputePattern
from repro.graph.dag import KernelGraph
from repro.graph.partition import PartitionBlock
from repro.model.hardware import GpuSpec
from repro.model.resources import (
    block_shared_bytes,
    kernel_shared_bytes,
    max_member_shared_bytes,
    shared_memory_ratio,
)


def explain_dependences(
    graph: KernelGraph, vertices: Iterable[str]
) -> List[Diagnostic]:
    """Fig. 2 external-dependence violations (scenarios c and d)."""
    block = PartitionBlock(graph, vertices)
    found: List[Diagnostic] = []

    destinations = block.destination_kernels()
    if len(destinations) > 1:
        found.append(
            diag(
                "FUS001",
                "external output dependence: outputs of "
                f"{sorted(destinations)} all escape the block (Fig. 2c)",
                scenario="fig2c",
                destinations=sorted(destinations),
                block=sorted(block.vertices),
            )
        )
    elif not destinations:
        found.append(
            diag(
                "FUS003",
                "block has no escaping output (dead code?)",
                block=sorted(block.vertices),
            )
        )

    source_inputs = set()
    for name in block.source_kernels():
        source_inputs.update(graph.kernel(name).input_names)
    produced = {graph.kernel(n).output.name for n in block.vertices}
    for name in block.ordered_vertices():
        for image in graph.kernel(name).input_names:
            if image in produced or image in source_inputs:
                continue
            found.append(
                diag(
                    "FUS002",
                    f"external input dependence: {name!r} reads {image!r}, "
                    "which no source kernel of the block reads (Fig. 2d)",
                    kernel=name,
                    scenario="fig2d",
                    image=image,
                    sources=sorted(block.source_kernels()),
                    block=sorted(block.vertices),
                )
            )
    return found


def explain_resources(
    graph: KernelGraph,
    vertices: Iterable[str],
    gpu: GpuSpec,
    c_mshared: float,
) -> List[Diagnostic]:
    """Eq. (2) and the absolute device limit, with the full arithmetic."""
    vertex_list = list(vertices)
    found: List[Diagnostic] = []
    footprints = {
        name: kernel_shared_bytes(graph.kernel(name)) for name in vertex_list
    }
    total = block_shared_bytes(graph, vertex_list)
    ratio = shared_memory_ratio(graph, vertex_list)
    if ratio > c_mshared:
        found.append(
            diag(
                "FUS004",
                f"shared memory ratio {ratio:.2f} exceeds "
                f"cMshared={c_mshared:g} (Eq. 2)",
                ratio=ratio,
                c_mshared=c_mshared,
                total_bytes=total,
                max_member_bytes=max_member_shared_bytes(graph, vertex_list),
                member_bytes=footprints,
                block=sorted(vertex_list),
            )
        )
    if total > gpu.shared_mem_per_block:
        found.append(
            diag(
                "FUS005",
                f"fused kernel needs {total} B shared memory, device limit "
                f"is {gpu.shared_mem_per_block} B",
                total_bytes=total,
                limit_bytes=gpu.shared_mem_per_block,
                member_bytes=footprints,
                block=sorted(vertex_list),
            )
        )
    return found


def explain_headers(
    graph: KernelGraph, vertices: Iterable[str]
) -> List[Diagnostic]:
    """Header-compatibility violations, naming the mismatching fields."""
    vertex_list = list(vertices)
    found: List[Diagnostic] = []
    kernels = [graph.kernel(name) for name in vertex_list]
    for kernel in kernels:
        if kernel.pattern is ComputePattern.GLOBAL and len(vertex_list) > 1:
            found.append(
                diag(
                    "FUS006",
                    f"{kernel.name!r} is a global operator and cannot fuse",
                    kernel=kernel.name,
                    reduction=kernel.reduction.value,
                    block=sorted(vertex_list),
                )
            )
    reference = kernels[0]
    for kernel in kernels[1:]:
        if not kernel.space.compatible_with(reference.space):
            found.append(
                diag(
                    "FUS007",
                    f"iteration space mismatch: {reference.name!r} is "
                    f"{reference.space}, {kernel.name!r} is {kernel.space}",
                    kernel=kernel.name,
                    reference=reference.name,
                    reference_space=str(reference.space),
                    kernel_space=str(kernel.space),
                )
            )
        if kernel.granularity != reference.granularity:
            found.append(
                diag(
                    "FUS008",
                    f"access granularity mismatch: {reference.name!r} has "
                    f"{reference.granularity}, {kernel.name!r} has "
                    f"{kernel.granularity}",
                    kernel=kernel.name,
                    reference=reference.name,
                    reference_granularity=reference.granularity,
                    kernel_granularity=kernel.granularity,
                )
            )
    return found


def explain_block(
    graph: KernelGraph,
    vertices: Iterable[str],
    gpu: GpuSpec,
    c_mshared: float = 2.0,
) -> List[Diagnostic]:
    """Every legality violation of one candidate block.

    Empty for a legal block.  Singleton blocks are always legal —
    they express "no fusion here", which needs no justification.
    """
    vertex_list = list(vertices)
    if len(vertex_list) == 1:
        return []
    found: List[Diagnostic] = []
    if not graph.is_connected(set(vertex_list)):
        found.append(
            diag(
                "FUS009",
                "block is not connected",
                block=sorted(vertex_list),
            )
        )
    found.extend(explain_headers(graph, vertex_list))
    found.extend(explain_dependences(graph, vertex_list))
    found.extend(explain_resources(graph, vertex_list, gpu, c_mshared))
    return found

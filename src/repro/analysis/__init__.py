"""Static analysis: pipeline linting, fusion explainability, plan verification.

Three pass families over three artifact levels:

* :mod:`repro.analysis.passes` — collect-all **pipeline lint** over
  kernels and dependence graphs (IR well-formedness, dtype/finiteness
  propagation, boundary/extent checks, dead code, cycles);
* :mod:`repro.analysis.explain` — **fusion explainability**: structured
  reasons why a partition block is illegal (the Fig. 2 dependence
  scenarios, the Eq. 2 shared-memory budget, header mismatches);
* :mod:`repro.analysis.verifier` — the **tape/plan verifier**: static
  invariants over compiled instruction tapes and partition plans,
  enforced under ``REPRO_VALIDATE=strict``;
* :mod:`repro.analysis.dataflow` — **value-range dataflow** (``VAL0xx``):
  abstract interpretation over kernel expressions and compiled tapes
  propagating interval/NaN/zero facts, plus the provable tape
  simplifications the native lowering folds;
* :mod:`repro.analysis.native_check` — the **native-codegen sanitizer**
  (``NAT0xx``): static in-bounds and no-alias proofs over the emitted C
  of every native plan, run before first execution under strict mode.

All passes report :class:`~repro.analysis.diagnostics.Diagnostic`
records (stable code, severity, location, message, details) instead of
raising on the first problem.  ``repro lint <app>`` runs the whole
stack from the command line.

The package ``__init__`` resolves attributes lazily (PEP 562):
:mod:`repro.ir.validate` — imported during *kernel construction*, far
below this layer — needs :mod:`repro.analysis.diagnostics` without
dragging in the passes (which themselves import the IR).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    # diagnostics
    "CODES": "repro.analysis.diagnostics",
    "Diagnostic": "repro.analysis.diagnostics",
    "Severity": "repro.analysis.diagnostics",
    "describe_codes": "repro.analysis.diagnostics",
    "has_errors": "repro.analysis.diagnostics",
    "max_severity": "repro.analysis.diagnostics",
    "render_diagnostics": "repro.analysis.diagnostics",
    # pipeline lint
    "lint_graph": "repro.analysis.passes",
    "lint_kernels": "repro.analysis.passes",
    "lint_pipeline": "repro.analysis.passes",
    # fusion explainability
    "explain_block": "repro.analysis.explain",
    "explain_dependences": "repro.analysis.explain",
    "explain_headers": "repro.analysis.explain",
    "explain_resources": "repro.analysis.explain",
    # verifier
    "PlanVerificationError": "repro.analysis.verifier",
    "enforce": "repro.analysis.verifier",
    "verify_block_plan": "repro.analysis.verifier",
    "verify_partition_plan": "repro.analysis.verifier",
    "verify_tape": "repro.analysis.verifier",
    # value-range dataflow
    "TapeSimplifications": "repro.analysis.dataflow",
    "VRange": "repro.analysis.dataflow",
    "analyze_graph": "repro.analysis.dataflow",
    "analyze_kernel": "repro.analysis.dataflow",
    "analyze_tape": "repro.analysis.dataflow",
    "domain": "repro.analysis.dataflow",
    "lint_graph_values": "repro.analysis.dataflow",
    "lint_kernel_values": "repro.analysis.dataflow",
    "lint_tape_values": "repro.analysis.dataflow",
    "tape_simplifications": "repro.analysis.dataflow",
    # native-codegen sanitizer
    "check_native_source": "repro.analysis.native_check",
    "verify_native_blocks": "repro.analysis.native_check",
    "verify_native_plan": "repro.analysis.native_check",
    # orchestration
    "LintReport": "repro.analysis.lint",
    "lint_app": "repro.analysis.lint",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.analysis.diagnostics import (  # noqa: F401
        CODES,
        Diagnostic,
        Severity,
        describe_codes,
        has_errors,
        max_severity,
        render_diagnostics,
    )

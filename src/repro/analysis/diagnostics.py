"""Structured diagnostics: the currency of the analysis subsystem.

Every static-analysis pass — pipeline lint, fusion explainability, the
tape/plan verifier — reports findings as :class:`Diagnostic` records
instead of raising on the first problem.  A diagnostic carries

* a **stable error code** (``IR004``, ``FUS001``, ``TAPE008``, ...)
  registered in :data:`CODES` so tools and tests can match on identity
  rather than message text,
* a **severity** — ``error`` (the artifact is wrong and must not be
  used), ``warning`` (suspicious but executable), ``info`` (an
  explanation of a decision, e.g. why a block was cut),
* a **location**: the kernel (or block/tape) the finding belongs to
  plus an expression/instruction path inside it,
* a human-readable **message**, and
* a machine-readable **details** dict exposing the underlying
  arithmetic (e.g. the Eq. 2 shared-memory budget terms) for tests,
  dashboards, and audits.

The module is intentionally dependency-free (standard library only) so
that the lowest layers of the toolchain — :mod:`repro.ir.validate` in
particular — can import it without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CODES",
    "Diagnostic",
    "Severity",
    "describe_codes",
    "has_errors",
    "max_severity",
    "only",
    "render_diagnostics",
]


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank


#: The stable error-code registry: ``code -> (default severity, summary)``.
#: Codes are append-only; renumbering a released code breaks consumers
#: that filter on it.  The ``repro lint --codes`` table and
#: ``docs/analysis.md`` are generated from this mapping.
CODES: Dict[str, Tuple[Severity, str]] = {
    # -- IR well-formedness (collect-all ir/validate) ---------------------
    "IR001": (Severity.ERROR, "unknown IR node type"),
    "IR002": (Severity.ERROR, "constant is not numeric"),
    "IR003": (Severity.ERROR, "constant is not finite"),
    "IR004": (Severity.ERROR, "read offset is not an integer"),
    "IR005": (Severity.ERROR, "read offset exceeds the maximum radius"),
    "IR006": (Severity.ERROR, "image name is empty"),
    "IR007": (Severity.ERROR, "cast to an invalid dtype"),
    "IR008": (Severity.WARNING, "division/modulo by a constant zero"),
    "IR009": (Severity.WARNING, "SFU call outside its real domain"),
    "IR010": (Severity.WARNING, "constant subexpression folds to a non-finite value"),
    # -- pipeline lint ----------------------------------------------------
    "PIPE001": (Severity.ERROR, "duplicate kernel name"),
    "PIPE002": (Severity.ERROR, "image produced by more than one kernel"),
    "PIPE003": (Severity.ERROR, "kernel reads (or declares) its own output"),
    "PIPE004": (Severity.ERROR, "dependence cycle"),
    "PIPE005": (Severity.WARNING, "dead kernel: reaches no pipeline output"),
    "PIPE006": (Severity.ERROR, "declared output produced by no kernel"),
    "PIPE007": (Severity.WARNING, "accessor declared but never read"),
    "PIPE008": (Severity.WARNING, "windowed read under UNDEFINED boundary mode"),
    "PIPE009": (Severity.ERROR, "image read without a declared accessor"),
    "PIPE010": (Severity.WARNING, "read window wider than the accessed image"),
    # -- fusion legality (Fig. 2, Eq. 2, headers) -------------------------
    "FUS001": (Severity.ERROR, "external output dependence (Fig. 2c)"),
    "FUS002": (Severity.ERROR, "external input dependence (Fig. 2d)"),
    "FUS003": (Severity.ERROR, "block has no escaping output"),
    "FUS004": (Severity.ERROR, "shared-memory ratio exceeds cMshared (Eq. 2)"),
    "FUS005": (Severity.ERROR, "fused shared memory exceeds the device limit"),
    "FUS006": (Severity.ERROR, "global operator cannot fuse"),
    "FUS007": (Severity.ERROR, "iteration-space mismatch"),
    "FUS008": (Severity.ERROR, "access-granularity mismatch"),
    "FUS009": (Severity.ERROR, "block is not connected"),
    "FUS010": (Severity.ERROR, "edge has non-positive benefit (illegal scenario)"),
    # -- tape verifier ----------------------------------------------------
    "TAPE001": (Severity.ERROR, "instruction uses a slot defined later (def-before-use)"),
    "TAPE002": (Severity.ERROR, "instruction uses a slot after its release"),
    "TAPE003": (Severity.ERROR, "unknown tape opcode"),
    "TAPE004": (Severity.ERROR, "malformed instruction operands/immediates"),
    "TAPE005": (Severity.ERROR, "malformed coordinate-grid or mask key"),
    "TAPE006": (Severity.ERROR, "tape root is invalid or released"),
    "TAPE007": (Severity.WARNING, "instruction unreachable from the tape root"),
    "TAPE008": (Severity.ERROR, "tape differs from a reference recompilation"),
    "TAPE009": (Severity.ERROR, "gather of an image produced inside the block"),
    # -- lazy-trace lint (repro.lazy) -------------------------------------
    "LAZY001": (Severity.ERROR, "trace lowers to an empty graph (unmodified input)"),
    "LAZY002": (Severity.WARNING, "recorded kernel reaches no evaluated output"),
    "LAZY003": (Severity.WARNING, "recorded kernel reads no image (constant output)"),
    "LAZY004": (Severity.WARNING, "trace kernels mix foreign scalar types"),
    # -- partition-plan verifier ------------------------------------------
    "PLAN001": (Severity.ERROR, "block scheduled before its producers"),
    "PLAN002": (Severity.ERROR, "plan outputs do not cover the graph's external outputs"),
    "PLAN003": (Severity.ERROR, "partition does not match the graph"),
    "PLAN004": (Severity.ERROR, "two blocks produce the same output image"),
    # -- value-range dataflow (repro.analysis.dataflow) -------------------
    "VAL001": (Severity.WARNING, "sqrt/log/rsqrt of a possibly-negative value"),
    "VAL002": (Severity.WARNING, "division/modulo by a possibly-zero denominator"),
    "VAL003": (Severity.WARNING, "cast may overflow the target dtype's range"),
    "VAL004": (Severity.INFO, "precision-losing cast (possibly-fractional value to integer)"),
    "VAL005": (Severity.WARNING, "comparison is statically always-true/always-false"),
    "VAL006": (Severity.WARNING, "select branch is proven dead"),
    "VAL007": (Severity.WARNING, "SFU argument outside its real domain (possible NaN)"),
    "VAL008": (Severity.ERROR, "param used uninitialized in the range environment"),
    # -- native-codegen sanitizer (repro.analysis.native_check) -----------
    "NAT001": (Severity.ERROR, "array index proven out of the plane's bounds"),
    "NAT002": (Severity.ERROR, "array index cannot be proven within the plane's bounds"),
    "NAT003": (Severity.ERROR, "restrict-qualified pointer arguments may alias"),
    "NAT004": (Severity.ERROR, "emitted native source does not match the expected loop-nest shape"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    ``details`` is excluded from equality/hashing so diagnostics can be
    deduplicated and carried inside frozen trace events while still
    exposing arbitrary machine-readable payloads.
    """

    code: str
    message: str
    severity: Severity = Severity.ERROR
    kernel: Optional[str] = None
    path: Optional[str] = None
    details: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    @property
    def location(self) -> str:
        """``kernel`` / ``kernel:path`` / ``"-"`` when unlocated."""
        if self.kernel and self.path:
            return f"{self.kernel}:{self.path}"
        return self.kernel or self.path or "-"

    def render(self) -> str:
        """``severity CODE [location] message`` — one line."""
        return f"{self.severity.value:<7} {self.code} [{self.location}] {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (details copied, not shared)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "kernel": self.kernel,
            "path": self.path,
            "message": self.message,
            "details": dict(self.details),
        }


def diag(
    code: str,
    message: str,
    kernel: Optional[str] = None,
    path: Optional[str] = None,
    severity: Optional[Severity] = None,
    **details: Any,
) -> Diagnostic:
    """Build a diagnostic with the code's registered default severity."""
    if severity is None:
        severity = CODES[code][0]
    return Diagnostic(
        code=code,
        message=message,
        severity=severity,
        kernel=kernel,
        path=path,
        details=details,
    )


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or ``None`` for a clean result."""
    best: Optional[Severity] = None
    for diagnostic in diagnostics:
        if best is None or diagnostic.severity > best:
            best = diagnostic.severity
    return best


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


def only(
    diagnostics: Iterable[Diagnostic],
    severity: Optional[Severity] = None,
    code: Optional[str] = None,
) -> List[Diagnostic]:
    """Filter by severity and/or code."""
    result = []
    for diagnostic in diagnostics:
        if severity is not None and diagnostic.severity is not severity:
            continue
        if code is not None and diagnostic.code != code:
            continue
        result.append(diagnostic)
    return result


def render_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line report, errors first, stable within a severity."""
    ordered = sorted(
        diagnostics, key=lambda d: (-d.severity.rank, d.code, d.location)
    )
    return "\n".join(d.render() for d in ordered)


def describe_codes() -> str:
    """The error-code table (``repro lint --codes`` and the docs)."""
    lines = [f"{'code':<9}{'severity':<10}summary"]
    for code, (severity, summary) in CODES.items():
        lines.append(f"{code:<9}{severity.value:<10}{summary}")
    return "\n".join(lines)

"""Value-range dataflow analysis over kernel expressions and SSA tapes.

The structural passes (:mod:`repro.analysis.passes`,
:mod:`repro.analysis.verifier`) check shapes, SSA discipline, and fusion
legality; this module is the *semantic* tier: an abstract interpretation
that propagates per-value interval ranges, a dtype lattice, and NaN/zero
flags from source images (declared or default domains), params, and
constants through both representations of a pipeline —

* the kernel expression IR (:mod:`repro.ir.expr`), with path-sensitive
  refinement through ``Select`` guards, and
* the compiled :class:`~repro.backend.plan.BlockPlan` SSA tapes, with
  guarded-use suppression (a risky slot whose every consumer is a
  ``select`` guarded by an appropriate comparison is deliberate, not a
  defect).

Two products come out of one lattice:

1. the **VAL001–VAL008** diagnostic family (domain errors of
   ``sqrt``/``log``/``rsqrt``, possibly-zero denominators, overflowing or
   precision-losing casts, statically constant comparisons, dead
   ``select`` branches, out-of-domain SFU arguments, unbound params in an
   explicit range environment), and
2. :func:`tape_simplifications` — facts the native backend
   (:mod:`repro.backend.native_exec`) consumes to emit simplified bodies:
   ``select`` instructions whose condition is proven constant, identity
   ``min``/``max``, boundary resolvers and out-of-bounds masks proven to
   be the identity.  Every fact is *per-pixel value-preserving*, so the
   simplified C stays bit-identical to the tape engine; the facts are
   computed **without** declared domains (structure and constants only),
   so they are a pure function of the tape and safe under
   structural-signature plan caching.

Declared domains
----------------
Default domains are fully conservative: an image pixel is any double
including NaN, a param is any finite double.  Pipelines can narrow them:

    pipe.declare_domain("input", 0.0, 255.0)       # 8-bit source pixels
    pipe.declare_domain("gamma", 0.1, 10.0)        # a scalar param

``Pipeline.build()`` carries the declarations onto the
:class:`~repro.graph.dag.KernelGraph` (``graph.declared_domains``); every
analysis entry point below also accepts explicit ``images=`` / ``params=``
mappings that override the declarations.  Values may be a
:class:`VRange`, a ``(lo, hi)`` tuple, or a single float (degenerate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.diagnostics import Diagnostic, diag
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    InputAt,
    Param,
    Select,
    UnOp,
)

__all__ = [
    "VRange",
    "TapeSimplifications",
    "analyze_graph",
    "analyze_kernel",
    "analyze_tape",
    "domain",
    "grid_index_interval",
    "lint_graph_values",
    "lint_kernel_values",
    "lint_tape_values",
    "resolve_is_identity",
    "tape_simplifications",
]

_INF = math.inf


# ---------------------------------------------------------------------------
# The value lattice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VRange:
    """One abstract value: an interval plus NaN/zero flags and a dtype.

    The interval ``[lo, hi]`` bounds the value *when it is not NaN*;
    ``maybe_nan`` tracks NaN separately (so refining an interval through
    a failed comparison — which NaN also fails — stays sound).
    ``maybe_zero`` is tracked independently of the interval sign so
    facts like ``exp(x) > 0`` and ``1 + nonneg >= 1`` survive interval
    arithmetic whose closed endpoints would readmit zero.
    """

    lo: float = -_INF
    hi: float = _INF
    maybe_nan: bool = True
    maybe_zero: bool = True
    dtype: str = "float64"

    def __post_init__(self) -> None:
        lo, hi = float(self.lo), float(self.hi)
        if math.isnan(lo) or math.isnan(hi) or lo > hi:
            lo, hi = -_INF, _INF
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        # A range that excludes zero can never produce it.
        object.__setattr__(
            self, "maybe_zero", bool(self.maybe_zero) and lo <= 0.0 <= hi
        )

    # -- predicates -------------------------------------------------------

    @property
    def nonneg(self) -> bool:
        return self.lo >= 0.0

    @property
    def degenerate(self) -> bool:
        return self.lo == self.hi and not self.maybe_nan

    @property
    def finite(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def describe(self) -> str:
        flags = []
        if self.maybe_nan:
            flags.append("nan?")
        if self.maybe_zero:
            flags.append("0?")
        suffix = f" {' '.join(flags)}" if flags else ""
        return f"[{self.lo:g}, {self.hi:g}]{suffix}"


#: The fully conservative image domain: any double, NaN included.
TOP = VRange()

#: The default param domain: any *finite* double (params arrive through
#: ``float()`` bindings; a NaN binding is pathological and out of model).
PARAM_DEFAULT = VRange(maybe_nan=False)


def domain(
    lo: float, hi: float, *, nan: bool = False, dtype: str = "float64"
) -> VRange:
    """A declared domain: ``[lo, hi]``, NaN-free unless ``nan=True``."""
    return VRange(lo, hi, maybe_nan=nan, dtype=dtype)


DomainLike = Union[VRange, Tuple[float, float], float, int]


def _as_range(value: DomainLike) -> VRange:
    if isinstance(value, VRange):
        return value
    if isinstance(value, (int, float)):
        v = float(value)
        return VRange(v, v, maybe_nan=math.isnan(v))
    lo, hi = value
    return VRange(float(lo), float(hi), maybe_nan=False)


def _env(mapping: Optional[Mapping[str, DomainLike]]) -> Dict[str, VRange]:
    return {k: _as_range(v) for k, v in (mapping or {}).items()}


# -- interval arithmetic ------------------------------------------------


def _nn(value: float, fallback: float) -> float:
    """NaN-safe endpoint: indeterminate forms widen to ``fallback``."""
    return fallback if math.isnan(value) else value


def _join(a: VRange, b: VRange) -> VRange:
    return VRange(
        min(a.lo, b.lo),
        max(a.hi, b.hi),
        maybe_nan=a.maybe_nan or b.maybe_nan,
        maybe_zero=a.maybe_zero or b.maybe_zero,
        dtype=_promote(a.dtype, b.dtype),
    )


def _refine(r: VRange, c: VRange) -> VRange:
    """Intersect ``r`` with a constraint ``c`` (meet; empty clamps)."""
    lo, hi = max(r.lo, c.lo), min(r.hi, c.hi)
    if lo > hi:  # contradictory path: keep a sound (if useless) point
        lo = hi = max(r.lo, c.lo)
    return VRange(
        lo,
        hi,
        maybe_nan=r.maybe_nan and c.maybe_nan,
        maybe_zero=r.maybe_zero and c.maybe_zero,
        dtype=r.dtype,
    )


def _promote(a: str, b: str) -> str:
    if a == b:
        return a
    try:
        return np.promote_types(a, b).name
    except TypeError:
        return "float64"


def _add(a: VRange, b: VRange) -> VRange:
    opposing = (a.hi == _INF and b.lo == -_INF) or (
        a.lo == -_INF and b.hi == _INF
    )
    return VRange(
        _nn(a.lo + b.lo, -_INF),
        _nn(a.hi + b.hi, _INF),
        maybe_nan=a.maybe_nan or b.maybe_nan or opposing,
        dtype=_promote(a.dtype, b.dtype),
    )


def _neg(a: VRange) -> VRange:
    return VRange(
        -a.hi, -a.lo, maybe_nan=a.maybe_nan,
        maybe_zero=a.maybe_zero, dtype=a.dtype,
    )


def _abs(a: VRange) -> VRange:
    if a.lo >= 0.0:
        lo, hi = a.lo, a.hi
    elif a.hi <= 0.0:
        lo, hi = -a.hi, -a.lo
    else:
        lo, hi = 0.0, max(-a.lo, a.hi)
    return VRange(
        lo, hi, maybe_nan=a.maybe_nan, maybe_zero=a.maybe_zero, dtype=a.dtype
    )


def _mul(a: VRange, b: VRange) -> VRange:
    products = []
    indeterminate = False
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            p = x * y
            if math.isnan(p):  # 0 * inf
                indeterminate = True
            else:
                products.append(p)
    zero_times_inf = (a.maybe_zero and not b.finite) or (
        b.maybe_zero and not a.finite
    )
    if indeterminate or not products:
        lo, hi = -_INF, _INF
    else:
        lo, hi = min(products), max(products)
    return VRange(
        lo,
        hi,
        maybe_nan=a.maybe_nan or b.maybe_nan or zero_times_inf,
        maybe_zero=a.maybe_zero or b.maybe_zero,
        dtype=_promote(a.dtype, b.dtype),
    )


def _square(a: VRange) -> VRange:
    """``x * x`` with both operands known identical: always nonnegative."""
    if a.lo >= 0.0:
        lo, hi = a.lo * a.lo, a.hi * a.hi
    elif a.hi <= 0.0:
        lo, hi = a.hi * a.hi, a.lo * a.lo
    else:
        lo, hi = 0.0, max(a.lo * a.lo, a.hi * a.hi)
    return VRange(
        lo,
        _nn(hi, _INF),
        maybe_nan=a.maybe_nan,
        maybe_zero=a.maybe_zero,
        dtype=a.dtype,
    )


def _div(a: VRange, b: VRange) -> VRange:
    dtype = _promote(a.dtype, b.dtype)
    if b.maybe_zero:
        # x/0 is +-inf, 0/0 is NaN: everything is possible.
        return VRange(dtype=dtype)
    quotients = []
    indeterminate = False
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            try:
                q = x / y
            except ZeroDivisionError:  # pragma: no cover - b excludes 0
                indeterminate = True
                continue
            if math.isnan(q):  # inf / inf
                indeterminate = True
            else:
                quotients.append(q)
    inf_over_inf = not a.finite and not b.finite
    if indeterminate or not quotients:
        lo, hi = -_INF, _INF
    else:
        lo, hi = min(quotients), max(quotients)
    underflow = b.lo == -_INF or b.hi == _INF  # x / inf == 0.0
    return VRange(
        lo,
        hi,
        maybe_nan=a.maybe_nan or b.maybe_nan or inf_over_inf,
        maybe_zero=a.maybe_zero or underflow,
        dtype=dtype,
    )


def _mod(a: VRange, b: VRange) -> VRange:
    dtype = _promote(a.dtype, b.dtype)
    if b.maybe_zero or not b.finite:
        return VRange(dtype=dtype)
    # np.mod's result carries the divisor's sign; b excludes zero, so it
    # is entirely positive or entirely negative.
    if b.lo > 0.0:
        lo, hi = 0.0, b.hi
    else:
        lo, hi = b.lo, 0.0
    return VRange(lo, hi, maybe_nan=a.maybe_nan or b.maybe_nan, dtype=dtype)


def _min(a: VRange, b: VRange) -> VRange:
    return VRange(
        min(a.lo, b.lo),
        min(a.hi, b.hi),
        maybe_nan=a.maybe_nan or b.maybe_nan,
        maybe_zero=a.maybe_zero or b.maybe_zero,
        dtype=_promote(a.dtype, b.dtype),
    )


def _max(a: VRange, b: VRange) -> VRange:
    return VRange(
        max(a.lo, b.lo),
        max(a.hi, b.hi),
        maybe_nan=a.maybe_nan or b.maybe_nan,
        maybe_zero=a.maybe_zero or b.maybe_zero,
        dtype=_promote(a.dtype, b.dtype),
    )


def _exp_point(v: float) -> float:
    if v > 709.0:
        return _INF
    if v == -_INF:
        return 0.0
    return math.exp(v)


_BOOL = VRange(0.0, 1.0, maybe_nan=False)


def _cmp_verdict(op: str, a: VRange, b: VRange) -> Optional[bool]:
    """``True``/``False`` when the comparison is statically constant.

    Provably-*true* needs both sides NaN-free (NaN compares false for
    every operator except ``ne``); provably-*false* tolerates NaN for
    the ordering operators and ``eq``, and provably-true ``ne`` holds
    under NaN too (NaN != x).
    """
    no_nan = not (a.maybe_nan or b.maybe_nan)
    if op == "lt":
        if a.hi < b.lo and no_nan:
            return True
        if a.lo >= b.hi:
            return False
    elif op == "le":
        if a.hi <= b.lo and no_nan:
            return True
        if a.lo > b.hi:
            return False
    elif op == "gt":
        if a.lo > b.hi and no_nan:
            return True
        if a.hi <= b.lo:
            return False
    elif op == "ge":
        if a.lo >= b.hi and no_nan:
            return True
        if a.hi < b.lo:
            return False
    elif op == "eq":
        if a.degenerate and b.degenerate and a.lo == b.lo:
            return True
        if a.hi < b.lo or a.lo > b.hi:
            return False
    elif op == "ne":
        if a.hi < b.lo or a.lo > b.hi:
            return True
        if a.degenerate and b.degenerate and a.lo == b.lo:
            return False
    return None


#: How a ``select`` condition decides: nonzero (NaN included — NaN != 0
#: is true in both engines) takes the true branch, exactly 0.0 the false
#: branch.
def _select_verdict(cond: VRange) -> Optional[bool]:
    if not cond.maybe_zero:
        return True  # never zero: false branch is dead (NaN also true)
    if cond.lo == 0.0 and cond.hi == 0.0 and not cond.maybe_nan:
        return False  # always exactly zero: true branch is dead
    return None


# ---------------------------------------------------------------------------
# SFU / cast transfer functions (shared by both walkers)
# ---------------------------------------------------------------------------


def _transfer_call(
    fn: str,
    args: Sequence[VRange],
    emit,
) -> VRange:
    """Range of one SFU call; ``emit(code, message, **details)`` reports."""
    a = args[0]
    if fn == "exp":
        return VRange(
            _exp_point(a.lo),
            _exp_point(a.hi),
            maybe_nan=a.maybe_nan,
            maybe_zero=a.lo == -_INF,
        )
    if fn in ("sqrt", "log", "rsqrt"):
        if a.lo < 0.0:
            emit(
                "VAL001",
                f"{fn}() argument may be negative "
                f"(range {a.describe()})",
                arg_range=a.describe(),
                fn=fn,
            )
        nan = a.maybe_nan or a.lo < 0.0
        lo_pos = max(a.lo, 0.0)
        hi_pos = max(a.hi, 0.0)
        if fn == "sqrt":
            return VRange(
                math.sqrt(lo_pos),
                _nn(math.sqrt(hi_pos) if hi_pos < _INF else _INF, _INF),
                maybe_nan=nan,
                maybe_zero=a.maybe_zero or a.lo <= 0.0,
            )
        if fn == "log":
            lo = math.log(lo_pos) if lo_pos > 0.0 else -_INF
            hi = math.log(hi_pos) if 0.0 < hi_pos < _INF else (
                _INF if hi_pos == _INF else -_INF
            )
            return VRange(lo, hi, maybe_nan=nan)
        # rsqrt: 1/sqrt(x); rsqrt(0) is +inf (not NaN).
        lo = 1.0 / math.sqrt(hi_pos) if 0.0 < hi_pos < _INF else 0.0
        return VRange(lo, _INF, maybe_nan=nan, maybe_zero=hi_pos == _INF)
    if fn in ("sin", "cos"):
        return VRange(
            -1.0, 1.0, maybe_nan=a.maybe_nan or not a.finite
        )
    if fn == "tan":
        return VRange(maybe_nan=a.maybe_nan or not a.finite)
    if fn == "tanh":
        return VRange(
            math.tanh(a.lo), math.tanh(a.hi), maybe_nan=a.maybe_nan
        )
    if fn == "pow":
        base, expo = args
        fractional = not (
            expo.degenerate and float(expo.lo).is_integer()
        )
        if base.lo < 0.0 and fractional:
            emit(
                "VAL007",
                "pow() base may be negative with a non-integer "
                f"exponent (base {base.describe()}, "
                f"exponent {expo.describe()})",
                base_range=base.describe(),
                exponent_range=expo.describe(),
                fn=fn,
            )
            return VRange()
        if base.lo >= 0.0:
            return VRange(
                0.0,
                _INF,
                maybe_nan=base.maybe_nan or expo.maybe_nan,
            )
        return VRange(maybe_nan=base.maybe_nan or expo.maybe_nan)
    if fn == "atan2":
        y, x = args
        return VRange(
            -math.pi, math.pi, maybe_nan=y.maybe_nan or x.maybe_nan
        )
    return VRange()  # unknown SFU: fully conservative


def _transfer_cast(dtype: str, a: VRange, emit) -> VRange:
    try:
        target = np.dtype(dtype)
    except TypeError:
        return a  # IR007's problem, not ours
    if target.kind == "f":
        info = np.finfo(target)
        overflow = a.hi > float(info.max) or a.lo < float(info.min)
        if overflow and dtype not in ("float64", "double"):
            emit(
                "VAL003",
                f"cast to {dtype} may overflow its finite range "
                f"(value {a.describe()}, "
                f"target +-{float(info.max):g})",
                value_range=a.describe(),
                dtype=dtype,
            )
        lo = a.lo if a.lo >= float(info.min) else -_INF
        hi = a.hi if a.hi <= float(info.max) else _INF
        return VRange(
            lo, hi, maybe_nan=a.maybe_nan,
            maybe_zero=a.maybe_zero, dtype=target.name,
        )
    if target.kind in ("i", "u"):
        info = np.iinfo(target)
        overflow = (
            a.maybe_nan
            or a.hi > float(info.max)
            or a.lo < float(info.min)
        )
        if overflow:
            emit(
                "VAL003",
                f"cast to {dtype} may overflow "
                f"[{info.min}, {info.max}] "
                f"(value {a.describe()})",
                value_range=a.describe(),
                dtype=dtype,
            )
            return VRange(
                float(info.min), float(info.max),
                maybe_nan=False, dtype=target.name,
            )
        fractional = not (
            a.degenerate and float(a.lo).is_integer()
        )
        if fractional:
            emit(
                "VAL004",
                f"cast to {dtype} truncates possibly-fractional "
                f"values (value {a.describe()})",
                value_range=a.describe(),
                dtype=dtype,
            )
        return VRange(
            math.floor(a.lo) if math.isfinite(a.lo) else float(info.min),
            math.ceil(a.hi) if math.isfinite(a.hi) else float(info.max),
            maybe_nan=False,
            dtype=target.name,
        )
    return a


# ---------------------------------------------------------------------------
# Expression-level analysis (path-sensitive through Select guards)
# ---------------------------------------------------------------------------


def _constraint_for(op: str, bound: VRange, true_branch: bool) -> Optional[VRange]:
    """What ``L op R`` (or its negation) says about ``L`` given ``R``'s range.

    In the *true* branch the comparison actually held, which also proves
    the operand is not NaN; in the *false* branch NaN remains possible
    (NaN fails every comparison), so only the interval is refined.
    """
    negate = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt",
              "eq": "ne", "ne": "eq"}
    if not true_branch:
        op = negate.get(op)
        if op is None:
            return None
    nan = not true_branch
    if op in ("gt", "ge"):
        return VRange(
            bound.lo, _INF, maybe_nan=nan,
            maybe_zero=not (op == "gt" and bound.lo >= 0.0)
            and not (op == "ge" and bound.lo > 0.0),
        )
    if op in ("lt", "le"):
        return VRange(
            -_INF, bound.hi, maybe_nan=nan,
            maybe_zero=not (op == "lt" and bound.hi <= 0.0)
            and not (op == "le" and bound.hi < 0.0),
        )
    if op == "eq":
        # An equality that *held* (directly, or as the failed branch of
        # ``ne`` — NaN passes ``ne``, so its failure proves non-NaN too)
        # pins the operand to the bound's interval.
        return VRange(
            bound.lo, bound.hi, maybe_nan=False,
            maybe_zero=bound.maybe_zero,
        )
    if op == "ne":
        # ``x != c`` says nothing about the interval (and NaN passes it),
        # but with ``c`` exactly zero it does prove the operand nonzero.
        if bound.degenerate and bound.lo == 0.0:
            return VRange(maybe_zero=False)
        return None
    return None


_MIRROR = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq"}


class _ExprAnalyzer:
    def __init__(
        self,
        images: Dict[str, VRange],
        params: Dict[str, VRange],
        strict_params: bool,
        kernel_name: Optional[str],
    ):
        self.images = images
        self.params = params
        self.strict_params = strict_params
        self.kernel = kernel_name
        self.diagnostics: List[Diagnostic] = []
        self._reported: set = set()

    def _emitter(self, node: Expr, path: str):
        def emit(code: str, message: str, **details) -> None:
            key = (code, id(node))
            if key in self._reported:
                return
            self._reported.add(key)
            self.diagnostics.append(
                diag(code, message, kernel=self.kernel, path=path, **details)
            )

        return emit

    def run(self, expr: Expr) -> VRange:
        return self._visit(expr, "body", {}, {})

    def _visit(
        self,
        node: Expr,
        path: str,
        constraints: Dict[Expr, VRange],
        memo: Dict[int, VRange],
    ) -> VRange:
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        r = self._compute(node, path, constraints, memo)
        c = constraints.get(node)
        if c is not None:
            r = _refine(r, c)
        memo[id(node)] = r
        return r

    def _compute(
        self,
        node: Expr,
        path: str,
        constraints: Dict[Expr, VRange],
        memo: Dict[int, VRange],
    ) -> VRange:
        emit = self._emitter(node, path)
        if isinstance(node, Const):
            v = float(node.value)
            return VRange(v, v, maybe_nan=math.isnan(v))
        if isinstance(node, Param):
            bound = self.params.get(node.name)
            if bound is not None:
                return bound
            if self.strict_params:
                emit(
                    "VAL008",
                    f"param {node.name!r} is unbound in the range "
                    "environment",
                    param=node.name,
                )
                return TOP
            return PARAM_DEFAULT
        if isinstance(node, InputAt):
            return self.images.get(node.image, TOP)
        if isinstance(node, BinOp):
            lhs = self._visit(node.lhs, f"{path}.lhs", constraints, memo)
            rhs = self._visit(node.rhs, f"{path}.rhs", constraints, memo)
            if node.op == "mul":
                if node.lhs == node.rhs:
                    return _square(lhs)
                # (c * x) * x with a nonnegative constant c: still a
                # scaled square (Harris' 0.04*trace*trace shape).
                scaled = _scaled_square(node, lhs, rhs, constraints, memo, self)
                if scaled is not None:
                    return scaled
                return _mul(lhs, rhs)
            if node.op == "add":
                return _add(lhs, rhs)
            if node.op == "sub":
                return _add(lhs, _neg(rhs))
            if node.op == "div" or node.op == "mod":
                if rhs.maybe_zero:
                    emit(
                        "VAL002",
                        f"{'division' if node.op == 'div' else 'modulo'} "
                        f"by a possibly-zero denominator "
                        f"(range {rhs.describe()})",
                        denominator_range=rhs.describe(),
                    )
                return _div(lhs, rhs) if node.op == "div" else _mod(lhs, rhs)
            if node.op == "min":
                return _min(lhs, rhs)
            if node.op == "max":
                return _max(lhs, rhs)
            return VRange()
        if isinstance(node, UnOp):
            operand = self._visit(
                node.operand, f"{path}.operand", constraints, memo
            )
            return _neg(operand) if node.op == "neg" else _abs(operand)
        if isinstance(node, Cmp):
            lhs = self._visit(node.lhs, f"{path}.lhs", constraints, memo)
            rhs = self._visit(node.rhs, f"{path}.rhs", constraints, memo)
            verdict = _cmp_verdict(node.op, lhs, rhs)
            if verdict is not None:
                emit(
                    "VAL005",
                    f"comparison is always "
                    f"{'true' if verdict else 'false'} "
                    f"(lhs {lhs.describe()} {node.op} "
                    f"rhs {rhs.describe()})",
                    verdict=verdict,
                    lhs_range=lhs.describe(),
                    rhs_range=rhs.describe(),
                )
                v = 1.0 if verdict else 0.0
                return VRange(v, v, maybe_nan=False)
            return _BOOL
        if isinstance(node, Select):
            cond = self._visit(node.cond, f"{path}.cond", constraints, memo)
            verdict = _select_verdict(cond)
            if verdict is not None:
                dead = "if_false" if verdict else "if_true"
                emit(
                    "VAL006",
                    f"select branch {dead!r} is proven dead "
                    f"(condition {cond.describe()})",
                    dead_branch=dead,
                    cond_range=cond.describe(),
                )
                live, leg = (
                    (node.if_true, "if_true")
                    if verdict
                    else (node.if_false, "if_false")
                )
                return self._visit(live, f"{path}.{leg}", constraints, memo)
            t = self._visit(
                node.if_true,
                f"{path}.if_true",
                self._branch(constraints, node.cond, True, memo, path),
                {},
            )
            f = self._visit(
                node.if_false,
                f"{path}.if_false",
                self._branch(constraints, node.cond, False, memo, path),
                {},
            )
            return _join(t, f)
        if isinstance(node, Call):
            args = [
                self._visit(a, f"{path}.args[{i}]", constraints, memo)
                for i, a in enumerate(node.args)
            ]
            return _transfer_call(node.fn, args, emit)
        if isinstance(node, Cast):
            operand = self._visit(
                node.operand, f"{path}.operand", constraints, memo
            )
            return _transfer_cast(node.dtype, operand, emit)
        return TOP  # unknown node type: IR001's problem

    def _branch(
        self,
        constraints: Dict[Expr, VRange],
        cond: Expr,
        true_branch: bool,
        memo: Dict[int, VRange],
        path: str,
    ) -> Dict[Expr, VRange]:
        """Constraints refined by taking one branch of ``cond``."""
        if not isinstance(cond, Cmp):
            return constraints
        refined = dict(constraints)

        def note(target: Expr, op: str, other: Expr) -> None:
            if isinstance(target, Const):
                return
            bound = self._visit(other, path, constraints, memo)
            c = _constraint_for(op, bound, true_branch)
            if c is None:
                return
            prior = refined.get(target)
            refined[target] = _refine(prior, c) if prior is not None else c

        note(cond.lhs, cond.op, cond.rhs)
        mirrored = _MIRROR.get(cond.op)
        if mirrored is not None:
            note(cond.rhs, mirrored, cond.lhs)
        return refined


def _scaled_square(
    node: BinOp,
    lhs: VRange,
    rhs: VRange,
    constraints,
    memo,
    analyzer: _ExprAnalyzer,
) -> Optional[VRange]:
    """``(c * x) * x`` / ``(x * c) * x`` with const ``c >= 0``: a scaled
    square, provably sign-stable where plain interval products are not."""
    inner = node.lhs
    if not isinstance(inner, BinOp) or inner.op != "mul":
        return None
    for c_node, x_node in ((inner.lhs, inner.rhs), (inner.rhs, inner.lhs)):
        if isinstance(c_node, Const) and x_node == node.rhs:
            c = float(c_node.value)
            if math.isnan(c):
                return None
            scale = VRange(c, c, maybe_nan=False)
            return _mul(scale, _square(rhs))
    return None


# ---------------------------------------------------------------------------
# Kernel / graph entry points
# ---------------------------------------------------------------------------


def analyze_kernel(
    kernel,
    images: Optional[Mapping[str, DomainLike]] = None,
    params: Optional[Mapping[str, DomainLike]] = None,
    *,
    strict_params: bool = False,
) -> Tuple[VRange, List[Diagnostic]]:
    """Abstractly interpret one kernel body.

    Returns ``(output range, diagnostics)``.  ``images`` maps image
    names to domains (missing images default to the fully conservative
    :data:`TOP`); ``params`` maps param names (missing params default to
    any finite double, or raise ``VAL008`` under ``strict_params``).
    """
    analyzer = _ExprAnalyzer(
        _env(images), _env(params), strict_params, kernel.name
    )
    result = analyzer.run(kernel.body)
    return result, analyzer.diagnostics


def lint_kernel_values(
    kernel,
    images: Optional[Mapping[str, DomainLike]] = None,
    params: Optional[Mapping[str, DomainLike]] = None,
    *,
    strict_params: bool = False,
) -> List[Diagnostic]:
    """The VAL diagnostics of one kernel body."""
    return analyze_kernel(
        kernel, images, params, strict_params=strict_params
    )[1]


@dataclass
class GraphValueAnalysis:
    """Per-image value ranges plus the diagnostics of one graph walk."""

    ranges: Dict[str, VRange] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)


def _graph_domains(graph) -> Dict[str, VRange]:
    return _env(getattr(graph, "declared_domains", None))


def _reduced_range(kernel, body: VRange) -> VRange:
    """The output range of a kernel after its global reduction (if any)."""
    reduction = getattr(kernel, "reduction", None)
    if reduction is None:
        return body
    kind = getattr(reduction, "value", str(reduction)).lower()
    if kind in ("min", "max"):
        return body
    if kind == "sum":
        space = kernel.accessors[0].image.space if kernel.accessors else None
        if space is not None:
            count = VRange(
                float(space.width * space.height),
                float(space.width * space.height),
                maybe_nan=False,
            )
            return _mul(body, count)
    return VRange(maybe_nan=True)


def analyze_graph(
    graph,
    images: Optional[Mapping[str, DomainLike]] = None,
    params: Optional[Mapping[str, DomainLike]] = None,
    *,
    strict_params: bool = False,
) -> GraphValueAnalysis:
    """Propagate value ranges through a :class:`KernelGraph` in
    topological order: each kernel's computed output range becomes the
    domain its consumers read.  Declared domains
    (``pipeline.declare_domain`` / ``images=``) seed the environment and
    override computed ranges by name."""
    declared = _graph_domains(graph)
    declared.update(_env(images))
    param_env = _env(params)
    analysis = GraphValueAnalysis()
    env: Dict[str, VRange] = dict(declared)
    for name in graph.kernel_names:
        kernel = graph.kernel(name)
        result, found = analyze_kernel(
            kernel, env, param_env, strict_params=strict_params
        )
        analysis.diagnostics.extend(found)
        output = kernel.output.name
        computed = _reduced_range(kernel, result)
        env[output] = declared.get(output, computed)
        analysis.ranges[output] = env[output]
    return analysis


def lint_graph_values(
    graph,
    images: Optional[Mapping[str, DomainLike]] = None,
    params: Optional[Mapping[str, DomainLike]] = None,
    *,
    strict_params: bool = False,
) -> List[Diagnostic]:
    """The VAL diagnostics of a whole graph (see :func:`analyze_graph`)."""
    return analyze_graph(
        graph, images, params, strict_params=strict_params
    ).diagnostics


# ---------------------------------------------------------------------------
# Tape-level analysis
# ---------------------------------------------------------------------------


def _instr_const(tape, slot: int) -> Optional[float]:
    instr = tape[slot]
    return float(instr.aux[0]) if instr.op == "const" else None


def _tape_ranges(
    plan,
    images: Dict[str, VRange],
    params: Dict[str, VRange],
    strict_params: bool,
    diagnostics: Optional[List[Diagnostic]],
    kernel_name: str,
) -> List[VRange]:
    """One forward pass over a block tape; ranges per slot.

    When ``diagnostics`` is given, VAL findings are appended — with
    guarded-use suppression resolved by the caller.
    """
    tape = plan.tape
    ranges: List[VRange] = []
    pending: List[Tuple[int, Diagnostic, int, str]] = []

    for index, instr in enumerate(tape):
        op, args, aux = instr.op, instr.args, instr.aux

        def emit_pending(code, message, guard_slot, need, **details):
            if diagnostics is None:
                return
            pending.append(
                (
                    index,
                    diag(
                        code,
                        message,
                        kernel=kernel_name,
                        path=f"tape[{index}]",
                        **details,
                    ),
                    guard_slot,
                    need,
                )
            )

        def emit(code, message, **details):
            if diagnostics is not None:
                diagnostics.append(
                    diag(
                        code,
                        message,
                        kernel=kernel_name,
                        path=f"tape[{index}]",
                        **details,
                    )
                )

        if op == "const":
            v = float(aux[0])
            r = VRange(v, v, maybe_nan=math.isnan(v))
        elif op == "param":
            bound = params.get(aux[0])
            if bound is not None:
                r = bound
            elif strict_params:
                emit(
                    "VAL008",
                    f"param {aux[0]!r} is unbound in the range "
                    "environment",
                    param=aux[0],
                )
                r = TOP
            else:
                r = PARAM_DEFAULT
        elif op == "gather":
            image, _, _, boundary = aux
            r = images.get(image, TOP)
            mode = getattr(boundary, "mode", None)
            fill = getattr(boundary, "constant", None)
            if getattr(mode, "value", None) == "constant" and fill is not None:
                f = float(fill)
                r = _join(r, VRange(f, f, maybe_nan=math.isnan(f)))
        elif op == "bin":
            kind = aux[0]
            a, b = ranges[args[0]], ranges[args[1]]
            if kind == "mul":
                if args[0] == args[1]:
                    r = _square(a)
                else:
                    r = _tape_scaled_square(tape, ranges, args) or _mul(a, b)
            elif kind == "add":
                r = _add(a, b)
            elif kind == "sub":
                r = _add(a, _neg(b))
            elif kind in ("div", "mod"):
                if b.maybe_zero:
                    emit_pending(
                        "VAL002",
                        f"{'division' if kind == 'div' else 'modulo'} by "
                        f"a possibly-zero denominator "
                        f"(range {b.describe()})",
                        args[1],
                        "nonzero",
                        denominator_range=b.describe(),
                    )
                r = _div(a, b) if kind == "div" else _mod(a, b)
            elif kind == "min":
                r = _min(a, b)
            elif kind == "max":
                r = _max(a, b)
            else:
                r = VRange()
        elif op == "un":
            a = ranges[args[0]]
            r = _neg(a) if aux[0] == "neg" else _abs(a)
        elif op == "cmp":
            a, b = ranges[args[0]], ranges[args[1]]
            verdict = _cmp_verdict(aux[0], a, b)
            if verdict is not None:
                emit(
                    "VAL005",
                    f"comparison is always "
                    f"{'true' if verdict else 'false'} "
                    f"(lhs {a.describe()} {aux[0]} rhs {b.describe()})",
                    verdict=verdict,
                    lhs_range=a.describe(),
                    rhs_range=b.describe(),
                )
                v = 1.0 if verdict else 0.0
                r = VRange(v, v, maybe_nan=False)
            else:
                r = _BOOL
        elif op == "select":
            cond = ranges[args[0]]
            verdict = _select_verdict(cond)
            if verdict is not None:
                emit(
                    "VAL006",
                    f"select branch "
                    f"{'if_false' if verdict else 'if_true'!r} is proven "
                    f"dead (condition {cond.describe()})",
                    dead_branch="if_false" if verdict else "if_true",
                    cond_range=cond.describe(),
                )
                r = ranges[args[1] if verdict else args[2]]
            else:
                r = _join(ranges[args[1]], ranges[args[2]])
        elif op == "call":
            arg_ranges = [ranges[s] for s in args]
            risky = {"code": None}

            def emit_call(code, message, **details):
                risky["code"] = (code, message, details)

            r = _transfer_call(aux[0], arg_ranges, emit_call)
            if risky["code"] is not None:
                code, message, details = risky["code"]
                need = "nonneg" if code == "VAL001" else "guarded"
                emit_pending(code, message, args[0], need, **details)
        elif op == "cast":
            r = _transfer_cast(aux[0], ranges[args[0]], emit)
        elif op == "maskfill":
            fill = float(aux[1])
            r = _join(
                ranges[args[0]], VRange(fill, fill, maybe_nan=math.isnan(fill))
            )
        else:
            r = VRange()
        ranges.append(r)

    if diagnostics is not None and pending:
        diagnostics.extend(
            entry
            for index, entry, guard_slot, need in pending
            if not _guarded(plan, index, guard_slot, need, ranges)
        )
    return ranges


def _tape_scaled_square(tape, ranges, args) -> Optional[VRange]:
    """Slot-level ``(c * x) * x`` detection (see :func:`_scaled_square`)."""
    lhs = tape[args[0]]
    if lhs.op != "bin" or lhs.aux[0] != "mul":
        return None
    for c_slot, x_slot in (
        (lhs.args[0], lhs.args[1]),
        (lhs.args[1], lhs.args[0]),
    ):
        c = _instr_const(tape, c_slot)
        if c is not None and x_slot == args[1] and not math.isnan(c):
            return _mul(VRange(c, c, maybe_nan=False), _square(ranges[x_slot]))
    return None


def _guarded(plan, slot: int, risky_arg: int, need: str, ranges) -> bool:
    """Guarded-use suppression: every consumer of ``slot`` is a select
    whose condition provably constrains ``risky_arg`` the way ``need``
    requires for the branch position ``slot`` occupies.  A flipped guard
    or swapped branches breaks the match, so seeded defects still fire."""
    tape = plan.tape
    users = [
        (i, instr)
        for i, instr in enumerate(tape)
        if slot in instr.args
    ]
    if not users:
        return False
    for _, instr in users:
        if instr.op != "select":
            return False
        cond_slot, true_slot, false_slot = instr.args
        if slot == cond_slot and slot not in (true_slot, false_slot):
            return False
        branch = slot == true_slot
        cond = tape[cond_slot]
        if cond.op != "cmp":
            return False
        if not _cmp_implies(
            cond.aux[0], cond.args, branch, risky_arg, need, ranges
        ):
            return False
    return True


def _cmp_implies(
    op: str, cmp_args, true_branch: bool, x: int, need: str, ranges
) -> bool:
    """Does ``(a op b) == true_branch`` imply the fact ``need`` of slot
    ``x``?  (On the false branch NaN survives the comparison, but a NaN
    input already propagates NaN regardless of the guard — suppression
    concerns the *domain* warning, which is about real-valued inputs.)"""
    a, b = cmp_args
    if not true_branch:
        negate = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt",
                  "eq": "ne", "ne": "eq"}
        op = negate.get(op)
        if op is None:
            return False
    if op in ("eq", "ne"):
        other = b if a == x else (a if b == x else None)
        if other is None:
            return False
        if need == "guarded":
            return True
        bound = ranges[other]
        if need == "nonzero":
            if op == "ne":
                # x != c excludes zero only when c is exactly zero.
                return bound.lo == 0.0 and bound.hi == 0.0
            return bound.lo > 0.0 or bound.hi < 0.0
        if need == "nonneg" and op == "eq":
            return bound.lo >= 0.0
        return False
    # Normalize to a fact about x: x >= bound / x <= bound.
    if a == x and op in ("gt", "ge"):
        bound, strict, lower = ranges[b], op == "gt", True
    elif b == x and op in ("lt", "le"):
        bound, strict, lower = ranges[a], op == "lt", True
    elif a == x and op in ("lt", "le"):
        bound, strict, lower = ranges[b], op == "lt", False
    elif b == x and op in ("gt", "ge"):
        bound, strict, lower = ranges[a], op == "gt", False
    else:
        return False
    if need == "nonneg":
        return lower and bound.lo >= 0.0
    if need == "nonzero":
        if lower:
            return bound.lo > 0.0 or (strict and bound.lo >= 0.0)
        return bound.hi < 0.0 or (strict and bound.hi <= 0.0)
    if need == "guarded":  # out-of-domain SFU: any guard on the arg
        return True
    return False


def analyze_tape(
    plan,
    images: Optional[Mapping[str, DomainLike]] = None,
    params: Optional[Mapping[str, DomainLike]] = None,
    *,
    strict_params: bool = False,
) -> Tuple[List[VRange], List[Diagnostic]]:
    """Per-slot value ranges + VAL diagnostics of one block plan."""
    diagnostics: List[Diagnostic] = []
    ranges = _tape_ranges(
        plan,
        _env(images),
        _env(params),
        strict_params,
        diagnostics,
        plan.destination.name,
    )
    return ranges, diagnostics


def lint_tape_values(
    plan,
    images: Optional[Mapping[str, DomainLike]] = None,
    params: Optional[Mapping[str, DomainLike]] = None,
    *,
    strict_params: bool = False,
) -> List[Diagnostic]:
    """The VAL diagnostics of one block plan's tape."""
    return analyze_tape(
        plan, images, params, strict_params=strict_params
    )[1]


# ---------------------------------------------------------------------------
# Native-simplification facts
# ---------------------------------------------------------------------------


def grid_index_interval(key: tuple) -> Tuple[int, int, int]:
    """The index range of a grid key as ``(lo, hi_offset, hi_extent)``.

    The range is ``[lo, hi_extent + hi_offset]`` with ``hi_extent`` the
    numeric extent the upper bound rides on (0 for a pure constant) —
    the affine form makes the containment test below independent of the
    actual geometry, which is what licenses applying it to
    shape-polymorphic plans.
    """
    tag = key[0]
    if tag == "base":
        extent = key[2] if key[1] == "x" else key[3]
        return (0, -1, extent)
    if tag == "shift":
        lo, hi_off, hi_ext = grid_index_interval(key[1])
        return (lo + key[2], hi_off + key[2], hi_ext)
    if tag == "resolve":
        return (0, -1, key[2])
    raise ValueError(f"unknown grid key {key!r}")


def resolve_is_identity(key: tuple, *, polymorphic: bool = False) -> bool:
    """Is a ``("resolve", parent, n, mode)`` key provably the identity?

    True when the parent's index range is contained in ``[0, n)`` for
    every mode (each resolver maps in-range indices to themselves).
    Polymorphic plans only accept the geometry-independent proof: the
    parent's upper bound must ride on the *same* extent ``n``, so the
    containment survives substitution by the runtime extent.
    """
    if key[0] != "resolve":
        return False
    n = key[2]
    lo, hi_off, hi_ext = grid_index_interval(key[1])
    if lo < 0:
        return False
    if hi_ext == n:
        return hi_off <= -1
    if polymorphic:
        return False
    return (hi_ext + hi_off) <= n - 1


def _mask_is_false(mask_key: tuple, *, polymorphic: bool) -> bool:
    """Is an ``("oob", parent, n)`` mask provably all-false?"""
    _, parent, n = mask_key
    lo, hi_off, hi_ext = grid_index_interval(parent)
    if lo < 0:
        return False
    if hi_ext == n:
        return hi_off <= -1
    if polymorphic:
        return False
    return (hi_ext + hi_off) <= n - 1


@dataclass(frozen=True)
class TapeSimplifications:
    """Value-analysis facts the native lowering may fold away.

    Every fact is per-pixel value-preserving (NaN and signed-zero
    behaviour included), so the simplified C is bit-identical to the
    tape engine; the strict-mode first-execution differential check
    stays on as the independent guard.
    """

    #: select instruction index -> the surviving argument slot.
    dead_selects: Mapping[int, int] = field(default_factory=dict)
    #: min/max instruction index -> the passthrough argument slot.
    identity_ops: Mapping[int, int] = field(default_factory=dict)
    #: resolve grid keys proven identity (resolver call elided).
    identity_resolves: frozenset = frozenset()
    #: oob mask keys proven all-false (mask/fill elided).
    identity_masks: frozenset = frozenset()

    @property
    def count(self) -> int:
        return (
            len(self.dead_selects)
            + len(self.identity_ops)
            + len(self.identity_resolves)
            + len(self.identity_masks)
        )


def _walk_grid_keys(key: tuple, resolves: set) -> None:
    tag = key[0]
    if tag == "shift":
        _walk_grid_keys(key[1], resolves)
    elif tag == "resolve":
        resolves.add(key)
        _walk_grid_keys(key[1], resolves)


def tape_simplifications(plan, *, polymorphic: bool = False) -> TapeSimplifications:
    """The provable simplifications of one block tape.

    Deliberately computed with **no** declared domains — image reads are
    fully conservative and params unbounded — so the result is a pure
    function of the tape.  Structurally identical tapes (the unit the
    native ``.so`` cache and the serving plan cache key on) therefore
    always agree on their simplifications.
    """
    tape = plan.tape
    ranges = _tape_ranges(plan, {}, {}, False, None, plan.destination.name)

    dead_selects: Dict[int, int] = {}
    identity_ops: Dict[int, int] = {}
    for index, instr in enumerate(tape):
        if instr.op == "select":
            verdict = _select_verdict(ranges[instr.args[0]])
            if verdict is not None:
                dead_selects[index] = (
                    instr.args[1] if verdict else instr.args[2]
                )
        elif instr.op == "bin" and instr.aux[0] in ("min", "max"):
            a, b = instr.args
            ra, rb = ranges[a], ranges[b]
            # Strict inequalities only: ties can flip which operand's
            # bits (signed zeros) come out, and the non-surviving side
            # must be NaN-free (repro_min/max propagate either NaN).
            if instr.aux[0] == "min":
                if ra.hi < rb.lo and not rb.maybe_nan:
                    identity_ops[index] = a
                elif rb.hi < ra.lo and not ra.maybe_nan:
                    identity_ops[index] = b
            else:
                if ra.lo > rb.hi and not rb.maybe_nan:
                    identity_ops[index] = a
                elif rb.lo > ra.hi and not ra.maybe_nan:
                    identity_ops[index] = b

    resolves: set = set()
    masks: set = set()
    for instr in tape:
        if instr.op == "gather":
            _, xi, yi, _boundary = instr.aux
            _walk_grid_keys(xi, resolves)
            _walk_grid_keys(yi, resolves)
        elif instr.op == "maskfill":
            mask_key = instr.aux[0]
            for oob in mask_key[1:]:
                masks.add(oob)
                _walk_grid_keys(oob[1], resolves)

    identity_resolves = frozenset(
        key
        for key in resolves
        if resolve_is_identity(key, polymorphic=polymorphic)
    )
    identity_masks = frozenset(
        key for key in masks if _mask_is_false(key, polymorphic=polymorphic)
    )
    return TapeSimplifications(
        dead_selects=dead_selects,
        identity_ops=identity_ops,
        identity_resolves=identity_resolves,
        identity_masks=identity_masks,
    )

"""Static verification of compiled instruction tapes and partition plans.

The tape executor (:mod:`repro.backend.plan`) compiles each partition
block once and then replays the tape for every request the serving
runtime dispatches to it — a miscompiled or corrupted tape silently
poisons every subsequent execution.  This module checks the invariants
a well-formed plan must satisfy *statically*, before any execution:

* **SSA discipline** — an instruction's output slot is its tape index,
  so every argument must reference an earlier slot (``TAPE001``) that
  the release schedule has not freed yet (``TAPE002``);
* **instruction shape** — known opcode (``TAPE003``), per-opcode
  argument count and immediates (``TAPE004``), well-formed symbolic
  coordinate-grid/mask keys (``TAPE005``);
* **root and liveness** — a valid, never-released root slot
  (``TAPE006``), no instructions unreachable from it (``TAPE007``);
* **provenance** — gathers only read images external to the block
  (``TAPE009``), and, when the source graph and block are available,
  the tape is diffed instruction-by-instruction against a fresh
  reference recompilation (``TAPE008``) — the check that catches
  *semantic* corruption (a flipped constant, a swapped operator) that
  is statically well-formed;
* **plan structure** — block schedule respects producer dependences
  (``PLAN001``), plan outputs cover the graph's external outputs
  (``PLAN002``), partition and graph signatures match (``PLAN003``),
  one producer per output image (``PLAN004``).

Under ``REPRO_VALIDATE=strict`` (:func:`repro.envknobs.validate_mode`)
the plan compiler runs these checks on every freshly built plan, and
the serving runtime marks the cached entries it verified.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    diag,
    has_errors,
    render_diagnostics,
)
from repro.backend.numpy_exec import _BIN_FN, _CALL_FN, _CMP_FN, block_schedule
from repro.backend.plan import (
    BlockPlan,
    Instr,
    PartitionPlan,
    compile_block,
    compile_kernel,
)
from repro.dsl.boundary import BoundaryMode, BoundarySpec
from repro.graph.dag import KernelGraph
from repro.graph.partition import PartitionBlock
from repro.ir.expr import SFU_ARITY

#: Every opcode the tape executor dispatches on.
KNOWN_OPS = frozenset(
    {
        "const",
        "param",
        "gather",
        "maskfill",
        "bin",
        "un",
        "cmp",
        "select",
        "call",
        "cast",
    }
)

_GRID_TAGS = frozenset({"base", "shift", "resolve"})
_MASK_TAGS = frozenset({"oob", "ormask"})
_BOUNDARY_MODES = frozenset(mode.value for mode in BoundaryMode)


class PlanVerificationError(RuntimeError):
    """A plan failed static verification; carries the diagnostics."""

    def __init__(self, diagnostics: Sequence[Diagnostic], context: str = ""):
        self.diagnostics = tuple(diagnostics)
        self.context = context
        head = f"plan verification failed ({context})" if context else (
            "plan verification failed"
        )
        super().__init__(f"{head}:\n{render_diagnostics(self.diagnostics)}")


def enforce(diagnostics: Sequence[Diagnostic], context: str = "") -> None:
    """Raise :class:`PlanVerificationError` when any error is present."""
    if has_errors(diagnostics):
        raise PlanVerificationError(diagnostics, context)


# ---------------------------------------------------------------------------
# Symbolic key well-formedness
# ---------------------------------------------------------------------------


def _grid_key_ok(key: object) -> bool:
    if not isinstance(key, tuple) or not key:
        return False
    tag = key[0]
    if tag == "base":
        return (
            len(key) == 4
            and key[1] in ("x", "y")
            and isinstance(key[2], int)
            and isinstance(key[3], int)
            and key[2] > 0
            and key[3] > 0
        )
    if tag == "shift":
        return (
            len(key) == 3
            and _grid_key_ok(key[1])
            and isinstance(key[2], int)
            and key[2] != 0
        )
    if tag == "resolve":
        return (
            len(key) == 4
            and _grid_key_ok(key[1])
            and isinstance(key[2], int)
            and key[2] > 0
            and key[3] in _BOUNDARY_MODES
        )
    return False


def _mask_key_ok(key: object) -> bool:
    if not isinstance(key, tuple) or not key:
        return False
    tag = key[0]
    if tag == "oob":
        return (
            len(key) == 3
            and _grid_key_ok(key[1])
            and isinstance(key[2], int)
            and key[2] > 0
        )
    if tag == "ormask":
        return len(key) == 3 and _mask_key_ok(key[1]) and _mask_key_ok(key[2])
    return False


def _finite_number(value: object) -> bool:
    return (
        not isinstance(value, bool)
        and isinstance(value, (int, float))
        and math.isfinite(value)
    )


# ---------------------------------------------------------------------------
# Tape-level verification
# ---------------------------------------------------------------------------


def _check_instr_shape(instr: Instr, label: Optional[str], path: str) -> List[Diagnostic]:
    """TAPE003/TAPE004/TAPE005: opcode, operand count, immediates."""
    op = instr.op
    if op not in KNOWN_OPS:
        return [
            diag("TAPE003", f"unknown tape opcode {op!r}", kernel=label, path=path, op=op)
        ]

    def malformed(why: str) -> Diagnostic:
        return diag(
            "TAPE004",
            f"malformed {op} instruction: {why}",
            kernel=label,
            path=path,
            op=op,
            args=list(instr.args),
            aux=repr(instr.aux),
        )

    def bad_key(kind: str, key: object) -> Diagnostic:
        return diag(
            "TAPE005",
            f"malformed {kind} key {key!r} in {op} instruction",
            kernel=label,
            path=path,
            op=op,
            key=repr(key),
        )

    found: List[Diagnostic] = []
    nargs = len(instr.args)
    aux = instr.aux
    if op == "const":
        if nargs != 0 or len(aux) != 1:
            found.append(malformed("expects no args and one immediate"))
        elif not _finite_number(aux[0]):
            found.append(malformed(f"constant {aux[0]!r} is not a finite number"))
    elif op == "param":
        if nargs != 0 or len(aux) != 1 or not isinstance(aux[0], str) or not aux[0]:
            found.append(malformed("expects no args and one parameter name"))
    elif op == "bin":
        if nargs != 2 or len(aux) != 1:
            found.append(malformed("expects two args and one operator"))
        elif aux[0] not in _BIN_FN:
            found.append(malformed(f"unknown binary operator {aux[0]!r}"))
    elif op == "un":
        if nargs != 1 or len(aux) != 1:
            found.append(malformed("expects one arg and one operator"))
        elif aux[0] not in ("neg", "abs"):
            found.append(malformed(f"unknown unary operator {aux[0]!r}"))
    elif op == "cmp":
        if nargs != 2 or len(aux) != 1:
            found.append(malformed("expects two args and one operator"))
        elif aux[0] not in _CMP_FN:
            found.append(malformed(f"unknown comparison operator {aux[0]!r}"))
    elif op == "select":
        if nargs != 3 or aux:
            found.append(malformed("expects three args and no immediates"))
    elif op == "call":
        if len(aux) != 1 or aux[0] not in _CALL_FN:
            found.append(malformed(f"unknown SFU function {aux!r}"))
        elif nargs != SFU_ARITY.get(aux[0], -1):
            found.append(
                malformed(
                    f"{aux[0]} expects {SFU_ARITY[aux[0]]} argument(s), got {nargs}"
                )
            )
    elif op == "cast":
        if nargs != 1 or len(aux) != 1:
            found.append(malformed("expects one arg and one dtype"))
        else:
            import numpy as np

            try:
                np.dtype(aux[0])
            except TypeError:
                found.append(malformed(f"invalid dtype {aux[0]!r}"))
    elif op == "gather":
        if nargs != 0 or len(aux) != 4:
            found.append(malformed("expects no args and (image, xi, yi, boundary)"))
        else:
            image, xi, yi, boundary = aux
            if not isinstance(image, str) or not image:
                found.append(malformed(f"image name {image!r} is not a string"))
            if not isinstance(boundary, BoundarySpec):
                found.append(malformed(f"boundary {boundary!r} is not a BoundarySpec"))
            for key in (xi, yi):
                if not _grid_key_ok(key):
                    found.append(bad_key("grid", key))
    elif op == "maskfill":
        if nargs != 1 or len(aux) != 2:
            found.append(malformed("expects one arg and (mask key, fill value)"))
        else:
            mask_key, fill = aux
            if not _mask_key_ok(mask_key):
                found.append(bad_key("mask", mask_key))
            if not _finite_number(fill):
                found.append(malformed(f"fill value {fill!r} is not a finite number"))
    return found


def verify_tape(
    tape: Sequence[Instr],
    root: int,
    release: Optional[Sequence[Tuple[int, ...]]] = None,
    label: Optional[str] = None,
) -> List[Diagnostic]:
    """Static invariants of one instruction tape.

    ``release`` is the per-instruction slot-release schedule
    (:class:`~repro.backend.plan.BlockPlan` exposes its own); omit it to
    check the tape alone.  ``label`` names the tape in diagnostics
    (typically the destination kernel).
    """
    found: List[Diagnostic] = []
    if not tape:
        found.append(
            diag("TAPE006", "tape is empty", kernel=label, root=root)
        )
        return found

    for index, instr in enumerate(tape):
        path = f"tape[{index}]"
        found.extend(_check_instr_shape(instr, label, path))
        for arg in instr.args:
            if not isinstance(arg, int) or arg < 0 or arg >= index:
                found.append(
                    diag(
                        "TAPE001",
                        f"instruction {index} ({instr.op}) uses slot {arg!r}, "
                        f"which is not defined before it",
                        kernel=label,
                        path=path,
                        index=index,
                        slot=arg,
                    )
                )

    if not isinstance(root, int) or root < 0 or root >= len(tape):
        found.append(
            diag(
                "TAPE006",
                f"tape root {root!r} is outside the tape (length {len(tape)})",
                kernel=label,
                root=root,
            )
        )
        root = None  # reachability below needs a valid root

    if release is not None:
        if len(release) != len(tape):
            found.append(
                diag(
                    "TAPE002",
                    f"release schedule covers {len(release)} instructions, "
                    f"tape has {len(tape)}",
                    kernel=label,
                )
            )
        else:
            released: Set[int] = set()
            for index, instr in enumerate(tape):
                for arg in instr.args:
                    if arg in released:
                        found.append(
                            diag(
                                "TAPE002",
                                f"instruction {index} ({instr.op}) uses slot "
                                f"{arg} after its release",
                                kernel=label,
                                path=f"tape[{index}]",
                                index=index,
                                slot=arg,
                            )
                        )
                released.update(release[index])
            if root is not None and root in released:
                found.append(
                    diag(
                        "TAPE006",
                        f"tape root {root} is released before the tape ends",
                        kernel=label,
                        root=root,
                    )
                )

    if root is not None:
        live: Set[int] = set()
        stack = [root]
        while stack:
            slot = stack.pop()
            if slot in live or slot < 0 or slot >= len(tape):
                continue
            live.add(slot)
            stack.extend(tape[slot].args)
        for index in range(len(tape)):
            if index not in live:
                found.append(
                    diag(
                        "TAPE007",
                        f"instruction {index} ({tape[index].op}) is "
                        "unreachable from the tape root",
                        kernel=label,
                        path=f"tape[{index}]",
                        index=index,
                    )
                )
    return found


# ---------------------------------------------------------------------------
# Block- and partition-plan verification
# ---------------------------------------------------------------------------


def _diff_tapes(
    plan: BlockPlan, reference: BlockPlan, label: Optional[str]
) -> List[Diagnostic]:
    """TAPE008: instruction-by-instruction diff against a recompilation."""
    found: List[Diagnostic] = []
    if len(plan.tape) != len(reference.tape):
        found.append(
            diag(
                "TAPE008",
                f"tape has {len(plan.tape)} instructions, reference "
                f"recompilation has {len(reference.tape)}",
                kernel=label,
                tape_len=len(plan.tape),
                reference_len=len(reference.tape),
            )
        )
        return found
    for index, (got, want) in enumerate(zip(plan.tape, reference.tape)):
        if got != want:
            found.append(
                diag(
                    "TAPE008",
                    f"instruction {index} differs from the reference "
                    f"recompilation: {got} != {want}",
                    kernel=label,
                    path=f"tape[{index}]",
                    index=index,
                    got=repr(got),
                    want=repr(want),
                )
            )
    if plan.root != reference.root:
        found.append(
            diag(
                "TAPE008",
                f"tape root {plan.root} differs from the reference "
                f"recompilation root {reference.root}",
                kernel=label,
                root=plan.root,
                reference_root=reference.root,
            )
        )
    return found


def verify_block_plan(
    plan: BlockPlan,
    graph: Optional[KernelGraph] = None,
    block: Optional[PartitionBlock] = None,
) -> List[Diagnostic]:
    """All static invariants of one compiled block plan.

    With ``graph`` and ``block`` available the check also recompiles a
    reference tape and diffs against it (``TAPE008``) and rejects
    gathers of block-internal images (``TAPE009``); without them only
    the tape-local invariants run.
    """
    label = plan.output_name
    found = verify_tape(plan.tape, plan.root, plan._release, label=label)

    if graph is not None and block is not None:
        internal = {graph.kernel(name).output.name for name in block.vertices}
        for index, instr in enumerate(plan.tape):
            if instr.op == "gather" and len(instr.aux) == 4:
                image = instr.aux[0]
                if image in internal and not plan.naive_borders:
                    found.append(
                        diag(
                            "TAPE009",
                            f"instruction {index} gathers {image!r}, which "
                            "is produced inside the block (should be a "
                            "fused member evaluation)",
                            kernel=label,
                            path=f"tape[{index}]",
                            image=image,
                        )
                    )
        if plan.kind == "kernel":
            reference = compile_kernel(plan.destination)
        else:
            reference = compile_block(
                graph,
                block,
                naive_borders=plan.naive_borders,
                apply_reduction=False,
            )
        found.extend(_diff_tapes(plan, reference, label))
    elif plan.kind == "kernel":
        found.extend(_diff_tapes(plan, compile_kernel(plan.destination), label))
    return found


def verify_partition_plan(
    plan: PartitionPlan,
    graph: Optional[KernelGraph] = None,
) -> List[Diagnostic]:
    """All static invariants of a compiled partition plan.

    ``graph`` is the graph the caller *intends* to execute; when given,
    its structural signature must match the plan's own graph
    (``PLAN003``) — the check the serving plan cache runs on insert.
    """
    found: List[Diagnostic] = []
    own = plan.graph

    if graph is not None and (
        graph.structural_signature() != own.structural_signature()
    ):
        found.append(
            diag(
                "PLAN003",
                "plan was compiled for a structurally different graph",
                plan_signature=own.structural_signature(),
                graph_signature=graph.structural_signature(),
            )
        )

    covered = {v for b in plan.partition for v in b.vertices}
    if covered != set(own.kernel_names):
        found.append(
            diag(
                "PLAN003",
                "partition does not cover the graph: "
                f"{sorted(set(own.kernel_names) ^ covered)} mismatched",
                missing=sorted(set(own.kernel_names) - covered),
                extra=sorted(covered - set(own.kernel_names)),
            )
        )
        return found

    schedule = block_schedule(own, plan.partition)
    if len(schedule) != len(plan.plans) or len(plan.deps) != len(plan.plans):
        found.append(
            diag(
                "PLAN003",
                f"plan has {len(plan.plans)} block plans and "
                f"{len(plan.deps)} dependence sets for "
                f"{len(schedule)} scheduled blocks",
                plans=len(plan.plans),
                deps=len(plan.deps),
                blocks=len(schedule),
            )
        )
        return found

    producer_block: dict = {}
    expected_deps: List[Set[int]] = []
    for index, block in enumerate(schedule):
        deps = {
            producer_block[image]
            for image in block.external_input_images()
            if image in producer_block
        }
        expected_deps.append(deps)
        for name in block.vertices:
            producer_block[own.kernel(name).output.name] = index

    outputs_seen: dict = {}
    for index, (block, block_plan) in enumerate(zip(schedule, plan.plans)):
        label = block_plan.output_name
        deps = set(plan.deps[index])
        if any(dep >= index for dep in deps) or deps != expected_deps[index]:
            found.append(
                diag(
                    "PLAN001",
                    f"block {index} ({label!r}) declares dependences "
                    f"{sorted(deps)}, expected {sorted(expected_deps[index])}",
                    kernel=label,
                    index=index,
                    deps=sorted(deps),
                    expected=sorted(expected_deps[index]),
                )
            )
        previous = outputs_seen.get(label)
        if previous is not None:
            found.append(
                diag(
                    "PLAN004",
                    f"blocks {previous} and {index} both produce {label!r}",
                    kernel=label,
                    image=label,
                    blocks=[previous, index],
                )
            )
        outputs_seen[label] = index
        found.extend(verify_block_plan(block_plan, graph=own, block=block))

    produced = set(outputs_seen)
    missing = set(own.external_outputs) - produced
    if missing:
        found.append(
            diag(
                "PLAN002",
                f"plan produces no block for external outputs {sorted(missing)}",
                missing=sorted(missing),
                produced=sorted(produced),
            )
        )
    return found


def verify_plan(
    plan,
    graph: Optional[KernelGraph] = None,
    block: Optional[PartitionBlock] = None,
) -> List[Diagnostic]:
    """Dispatch on plan type (convenience for callers holding either)."""
    if isinstance(plan, PartitionPlan):
        return verify_partition_plan(plan, graph=graph)
    return verify_block_plan(plan, graph=graph, block=block)

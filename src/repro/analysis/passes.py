"""Pipeline lint: collect-all checks over kernels and dependence graphs.

Two pass families, both tolerant — a broken pipeline yields diagnostics,
never an exception, so one lint run reports *every* problem at once:

* :func:`lint_kernels` checks each kernel in isolation: IR
  well-formedness (shared with :mod:`repro.ir.validate`), dtype
  validity, constant-folding finiteness, SFU domains, and the
  accessor/boundary contracts (unused accessors, windowed reads under
  ``UNDEFINED`` boundary handling, windows wider than the image);
* :func:`lint_graph` checks the pipeline structure without building a
  :class:`~repro.graph.dag.KernelGraph` (which raises on the first
  structural problem): duplicate names/producers, self-reads, cycles,
  dead kernels, and unknown declared outputs.

:func:`lint_pipeline` runs both families over a
:class:`~repro.dsl.pipeline.Pipeline` or an already-built graph.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic, diag
from repro.ir.expr import BinOp, Call, Cast, Cmp, Const, Expr, NODE_TYPES, Select, UnOp
from repro.ir.validate import collect_expr_diagnostics, named_children

_SFU_FOLD = {
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "tanh": math.tanh,
    "pow": math.pow,
    "atan2": math.atan2,
}

_BIN_FOLD = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "mod": lambda a, b: math.fmod(a, b),
    "min": min,
    "max": max,
}

_CMP_FOLD = {
    "lt": lambda a, b: 1.0 if a < b else 0.0,
    "le": lambda a, b: 1.0 if a <= b else 0.0,
    "gt": lambda a, b: 1.0 if a > b else 0.0,
    "ge": lambda a, b: 1.0 if a >= b else 0.0,
    "eq": lambda a, b: 1.0 if a == b else 0.0,
    "ne": lambda a, b: 1.0 if a != b else 0.0,
}


def _postorder_with_paths(expr: Expr) -> List[Tuple[str, Expr]]:
    """``(path, node)`` pairs, children before parents; unknown-node safe."""
    out: List[Tuple[str, Expr]] = []
    stack: List[Tuple[str, Expr, bool]] = [("body", expr, False)]
    while stack:
        path, node, visited = stack.pop()
        if visited or not isinstance(node, NODE_TYPES):
            out.append((path, node))
            continue
        stack.append((path, node, True))
        for name, child in named_children(node):
            stack.append((f"{path}.{name}", child, False))
    return out


def _lint_constant_folding(expr: Expr, kernel: Optional[str]) -> List[Diagnostic]:
    """IR008/IR009/IR010: problems visible in constant subexpressions.

    Folds bottom-up over constant-valued subtrees and reports at the
    *lowest* offending node only — a non-finite value does not propagate,
    so one root cause yields one diagnostic, not a cascade.
    """
    found: List[Diagnostic] = []
    values: Dict[int, Optional[float]] = {}
    for path, node in _postorder_with_paths(expr):
        value: Optional[float] = None
        if isinstance(node, Const):
            if (
                not isinstance(node.value, bool)
                and isinstance(node.value, (int, float))
                and math.isfinite(node.value)
            ):
                value = float(node.value)
        elif isinstance(node, (BinOp, Cmp, UnOp, Select, Call)):
            kids = [values.get(id(c)) for _, c in named_children(node)]
            if isinstance(node, BinOp) and node.op in ("div", "mod"):
                rhs = node.rhs
                if isinstance(rhs, Const) and rhs.value == 0:
                    found.append(
                        diag(
                            "IR008",
                            f"{node.op} by a constant zero",
                            kernel=kernel,
                            path=path,
                            op=node.op,
                        )
                    )
                    values[id(node)] = None
                    continue
            if all(k is not None for k in kids):
                try:
                    if isinstance(node, BinOp):
                        value = _BIN_FOLD[node.op](*kids)
                    elif isinstance(node, Cmp):
                        value = _CMP_FOLD[node.op](*kids)
                    elif isinstance(node, UnOp):
                        value = -kids[0] if node.op == "neg" else abs(kids[0])
                    elif isinstance(node, Select):
                        value = kids[1] if kids[0] != 0.0 else kids[2]
                    else:
                        value = _SFU_FOLD[node.fn](*kids)
                except ValueError:
                    found.append(
                        diag(
                            "IR009",
                            f"{node.fn}({', '.join(str(k) for k in kids)}) is "
                            "outside the function's real domain",
                            kernel=kernel,
                            path=path,
                            fn=node.fn,
                            args=[float(k) for k in kids],
                        )
                    )
                    value = None
                except (OverflowError, ZeroDivisionError):
                    value = math.inf
                if value is not None and not math.isfinite(value):
                    found.append(
                        diag(
                            "IR010",
                            "constant subexpression folds to a non-finite "
                            f"value ({value})",
                            kernel=kernel,
                            path=path,
                            value=str(value),
                        )
                    )
                    value = None
        values[id(node)] = value
    return found


def _lint_casts(expr: Expr, kernel: Optional[str]) -> List[Diagnostic]:
    """IR007: every Cast dtype must be a valid NumPy dtype string."""
    found: List[Diagnostic] = []
    for path, node in _postorder_with_paths(expr):
        if isinstance(node, Cast):
            try:
                np.dtype(node.dtype)
            except TypeError:
                found.append(
                    diag(
                        "IR007",
                        f"cast to invalid dtype {node.dtype!r}",
                        kernel=kernel,
                        path=path,
                        dtype=repr(node.dtype),
                    )
                )
    return found


def lint_kernel(kernel, max_radius: int = 64) -> List[Diagnostic]:
    """All per-kernel diagnostics for one kernel."""
    name = kernel.name
    found = collect_expr_diagnostics(kernel.body, max_radius=max_radius, kernel=name)
    found.extend(_lint_casts(kernel.body, name))
    found.extend(_lint_constant_folding(kernel.body, name))

    reads = kernel.reads()
    declared = {a.image.name for a in kernel.accessors}

    for image in sorted(set(reads) - declared):
        found.append(
            diag(
                "PIPE009",
                f"kernel {name!r} reads {image!r} without a declared accessor",
                kernel=name,
                image=image,
            )
        )
    for accessor in kernel.accessors:
        image = accessor.image.name
        offsets = reads.get(image)
        if not offsets:
            found.append(
                diag(
                    "PIPE007",
                    f"accessor for {image!r} is declared but never read",
                    kernel=name,
                    image=image,
                )
            )
            continue
        rx = max(abs(dx) for dx, _ in offsets)
        ry = max(abs(dy) for _, dy in offsets)
        windowed = rx > 0 or ry > 0
        if windowed and accessor.boundary.mode.value == "undefined":
            found.append(
                diag(
                    "PIPE008",
                    f"window of radius ({rx}, {ry}) over {image!r} is read "
                    "under UNDEFINED boundary handling; border pixels are "
                    "unspecified",
                    kernel=name,
                    image=image,
                    rx=rx,
                    ry=ry,
                )
            )
        space = accessor.image.space
        if 2 * rx + 1 > space.width or 2 * ry + 1 > space.height:
            found.append(
                diag(
                    "PIPE010",
                    f"read window ({2 * rx + 1}x{2 * ry + 1}) over {image!r} "
                    f"is wider than the image ({space.width}x{space.height})",
                    kernel=name,
                    image=image,
                    window=(2 * rx + 1, 2 * ry + 1),
                    image_shape=(space.width, space.height),
                )
            )
    return found


def lint_kernels(kernels: Iterable, max_radius: int = 64) -> List[Diagnostic]:
    """Per-kernel diagnostics over a kernel collection."""
    found: List[Diagnostic] = []
    for kernel in kernels:
        found.extend(lint_kernel(kernel, max_radius=max_radius))
    return found


def lint_graph(
    kernels: Sequence,
    external_outputs: Iterable[str] = (),
) -> List[Diagnostic]:
    """Structural diagnostics over the dependence relation.

    Tolerant sibling of :class:`~repro.graph.dag.KernelGraph`
    construction: every structural problem the constructor would raise
    for — and a few it cannot see, like dead kernels — becomes one
    diagnostic, and analysis continues past it.
    """
    found: List[Diagnostic] = []
    kernels = list(kernels)

    seen_names: Set[str] = set()
    for kernel in kernels:
        if kernel.name in seen_names:
            found.append(
                diag(
                    "PIPE001",
                    f"duplicate kernel name {kernel.name!r}",
                    kernel=kernel.name,
                )
            )
        seen_names.add(kernel.name)

    producers: Dict[str, List[str]] = {}
    for kernel in kernels:
        producers.setdefault(kernel.output.name, []).append(kernel.name)
    for image, names in sorted(producers.items()):
        if len(names) > 1:
            found.append(
                diag(
                    "PIPE002",
                    f"image {image!r} is produced by {len(names)} kernels: "
                    f"{names}",
                    image=image,
                    producers=names,
                )
            )

    for kernel in kernels:
        out = kernel.output.name
        reads = set(kernel.reads())
        declared = {a.image.name for a in kernel.accessors}
        if out in reads or out in declared:
            how = "reads" if out in reads else "declares an accessor for"
            found.append(
                diag(
                    "PIPE003",
                    f"kernel {kernel.name!r} {how} its own output {out!r}",
                    kernel=kernel.name,
                    image=out,
                )
            )

    # Dependence edges (self-edges excluded — reported above as PIPE003).
    producer_of = {k.output.name: k.name for k in kernels}
    succs: Dict[str, Set[str]] = {k.name: set() for k in kernels}
    preds: Dict[str, Set[str]] = {k.name: set() for k in kernels}
    consumed: Set[str] = set()
    for kernel in kernels:
        for image in kernel.reads():
            producer = producer_of.get(image)
            if producer is not None:
                consumed.add(image)
                if producer != kernel.name:
                    succs[producer].add(kernel.name)
                    preds[kernel.name].add(producer)

    # Tolerant Kahn: kernels left with positive in-degree sit on a cycle.
    indegree = {name: len(p) for name, p in preds.items()}
    ready = sorted(name for name, deg in indegree.items() if deg == 0)
    order: List[str] = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        for succ in sorted(succs[name]):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort()
    stuck = sorted(set(succs) - set(order))
    if stuck:
        found.append(
            diag(
                "PIPE004",
                f"dependence cycle involving {stuck}",
                kernels=stuck,
            )
        )

    declared_outputs = set(external_outputs)
    for image in sorted(declared_outputs - set(producer_of)):
        found.append(
            diag(
                "PIPE006",
                f"declared output {image!r} is produced by no kernel",
                image=image,
            )
        )

    # Dead kernels: cannot reach any externally observed image.  Sink
    # outputs are external automatically (mirroring KernelGraph), so in
    # a well-formed DAG every kernel is live; dead kernels appear when
    # cycles swallow a subgraph whose outputs never escape.
    sinks = {k.output.name for k in kernels} - consumed
    external = (declared_outputs & set(producer_of)) | sinks
    live: Set[str] = set()
    stack = [producer_of[image] for image in external]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        stack.extend(preds[name] - live)
    for kernel in kernels:
        if kernel.name not in live:
            found.append(
                diag(
                    "PIPE005",
                    f"kernel {kernel.name!r} reaches no pipeline output",
                    kernel=kernel.name,
                )
            )
    return found


def lint_pipeline(pipeline, max_radius: int = 64) -> List[Diagnostic]:
    """Run the per-kernel and structural lints over a whole pipeline.

    Accepts a :class:`~repro.dsl.pipeline.Pipeline` or an already-built
    :class:`~repro.graph.dag.KernelGraph`.
    """
    from repro.graph.dag import KernelGraph

    if isinstance(pipeline, KernelGraph):
        kernels: Sequence = pipeline.kernels()
        externals: Iterable[str] = pipeline.external_outputs
    else:
        kernels = pipeline.kernels
        externals = pipeline.extra_outputs
    return lint_kernels(kernels, max_radius=max_radius) + lint_graph(
        kernels, external_outputs=externals
    )

"""Native-codegen sanitizer: static memory-safety proofs over emitted C.

The native engine (:mod:`repro.backend.native_exec`) lowers each fused
block tape to one C loop nest and — under ``REPRO_VALIDATE=strict`` —
differentially verifies its *output* against the tape interpreter on
first execution.  That check sees values, not memory: an out-of-bounds
read that happens to land on plausible bytes, or an aliasing ``restrict``
violation that miscompiles only at higher optimization levels, can slip
through.  This module closes the gap **before first execution** by
parsing the emitted source and statically proving, for every array
subscript in every body variant and in the driver loops:

* the index is in the canonical row-major form ``Y * width + X``, and
* ``0 <= X <= width - 1`` and ``0 <= Y <= height - 1`` hold for all
  iterations, under the symbolic assumption ``width >= 1, height >= 1``
  for shape-polymorphic plans (runtime geometry formals) or the baked
  numeric extents for specialized plans.

Every buffer the driver is called with is one contiguous
``width x height`` ``float64`` plane (``NativeBlock._execute_native``
re-planes multi-channel images with ``ascontiguousarray``), so the
componentwise proof is exactly the allocation bound.  The proofs run
over a miniature C expression parser and an affine-interval domain
(``a*width + b*height + c`` bounds with min/max forms for the runtime
clamp ternaries), so no compiler or execution is needed — ``repro lint
--native`` works on hosts without a toolchain.

Diagnostics:

* **NAT001** — an index proven *outside* its plane for some iteration.
* **NAT002** — an index that cannot be proven inside (unknown form,
  unprovable bound).  Soundness over completeness: honest emissions are
  all provable, so NAT002 on real output is a codegen regression.
* **NAT003** — ``restrict`` pointer arguments that may alias (the block
  output appearing among its inputs), or a pointer parameter missing
  its ``restrict`` qualifier.
* **NAT004** — the source does not match the expected loop-nest shape
  (missing bodies/driver, a perturbed tile/row loop, a store outside
  the recognized pattern).

Two lowering families are recognized.  The **classic** row-tiled form
(one halo/interior body pair, a tile/row driver) is proven purely in
the affine domain.  The **2D overlapped-tiling** form
(``REPRO_NATIVE_TILE2D``) adds per-tile scratch buffers filled by
per-stage bodies; its driver is verified by *template matching* the
canonical grid/region/fill grammar (the safety argument is a
meta-theorem over the template: clipped regions can never exceed the
compile-time scratch extents), and every scratch subscript inside a
body is checked against the driver's recovered **margin ledger** —
a consumer with halo margins ``(Lc, Rc, Tc, Bc)`` may read a producer
at x-offset ``d`` only when ``Lp >= Lc - d`` and ``Rp >= Rc + d``
(and the y analogue), which is exactly the containment invariant the
emitter's reverse-topological ledger establishes.  Shape-polymorphic
sources carry per-image runtime pitch formals (``st_*``); an input
subscript may use its own pitch token in place of ``width`` because
the runtime binder only passes pitches ``>= width``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, diag

__all__ = [
    "check_native_source",
    "verify_native_blocks",
    "verify_native_plan",
]


# ---------------------------------------------------------------------------
# Affine bounds: a*width + b*height + c under width >= 1, height >= 1
# ---------------------------------------------------------------------------

Aff = Tuple[int, int, int]  # (width coeff, height coeff, constant)

_ZERO: Aff = (0, 0, 0)
_WIDTH: Aff = (1, 0, 0)
_HEIGHT: Aff = (0, 1, 0)


def _aff_const(c: int) -> Aff:
    return (0, 0, c)


def _aff_add(a: Aff, b: Aff) -> Aff:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def _aff_neg(a: Aff) -> Aff:
    return (-a[0], -a[1], -a[2])


def _aff_scale(a: Aff, k: int) -> Aff:
    return (a[0] * k, a[1] * k, a[2] * k)


def _prove_le(a: Aff, b: Aff) -> bool:
    """``a <= b`` for every ``width >= 1, height >= 1``."""
    dw, dh, dc = b[0] - a[0], b[1] - a[1], b[2] - a[2]
    return dw >= 0 and dh >= 0 and (dw + dh + dc) >= 0


@dataclass(frozen=True)
class _Iv:
    """An abstract integer: ``max(los) <= value <= min(his)``.

    Each side is a *set* of affine bounds (so the runtime clamp
    ternaries ``(a < b ? a : b)`` keep both candidates); an empty side
    is unbounded.  A bound is proven by any one member.
    """

    los: Tuple[Aff, ...] = ()
    his: Tuple[Aff, ...] = ()

    def ge_proven(self, bound: Aff) -> bool:
        return any(_prove_le(bound, m) for m in self.los)

    def le_proven(self, bound: Aff) -> bool:
        return any(_prove_le(m, bound) for m in self.his)


def _iv_point(a: Aff) -> _Iv:
    return _Iv((a,), (a,))


def _iv_add(a: _Iv, b: _Iv) -> _Iv:
    return _Iv(
        tuple(_aff_add(x, y) for x in a.los for y in b.los),
        tuple(_aff_add(x, y) for x in a.his for y in b.his),
    )


def _iv_neg(a: _Iv) -> _Iv:
    return _Iv(
        tuple(_aff_neg(m) for m in a.his),
        tuple(_aff_neg(m) for m in a.los),
    )


def _iv_scale(a: _Iv, k: int) -> _Iv:
    if k < 0:
        return _iv_scale(_iv_neg(a), -k)
    return _Iv(
        tuple(_aff_scale(m, k) for m in a.los),
        tuple(_aff_scale(m, k) for m in a.his),
    )


def _iv_join(a: _Iv, b: _Iv) -> _Iv:
    """Either branch of a ternary: keep bounds that cover both sides."""
    los = tuple(
        m
        for m in a.los + b.los
        if any(_prove_le(m, n) for n in a.los)
        and any(_prove_le(m, n) for n in b.los)
    )
    his = tuple(
        m
        for m in a.his + b.his
        if any(_prove_le(n, m) for n in a.his)
        and any(_prove_le(n, m) for n in b.his)
    )
    return _Iv(los, his)


_BOOL_IV = _Iv((_ZERO,), (_aff_const(1),))


def _iv_empty(iv: _Iv) -> bool:
    """Provably no integer satisfies the interval (``hi <= lo - 1``).

    Degenerate flank loops of margin-free blocks (``for (int x = 0;
    x < 0; ++x)``) never execute their store, so a store under a
    provably-empty range is vacuously safe.
    """
    return any(
        _prove_le(hi, _aff_add(lo, _aff_const(-1)))
        for lo in iv.los
        for hi in iv.his
    )


# ---------------------------------------------------------------------------
# A miniature C expression parser (integer index expressions only)
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(\d+)|([A-Za-z_][A-Za-z0-9_]*)"
    r"|(\|\||&&|<=|>=|==|!=|[-+*/%<>?:(),]))"
)


class _ParseError(Exception):
    pass


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise _ParseError(f"unexpected {remainder[:10]!r}")
        tokens.append(match.group(1) or match.group(2) or match.group(3))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser producing tuple ASTs.

    Nodes: ``("num", v)``, ``("id", name)``, ``("call", name, args)``,
    ``("neg", e)``, ``("bin", op, a, b)``, ``("cmp", op, a, b)``,
    ``("log", op, a, b)``, ``("tern", c, t, f)``.  Parentheses are
    transparent, so structural equality ignores grouping the emitter
    inserts.
    """

    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: Optional[str] = None) -> str:
        token = self.peek()
        if token is None or (expected is not None and token != expected):
            raise _ParseError(f"expected {expected!r}, got {token!r}")
        self.pos += 1
        return token

    def parse(self) -> tuple:
        node = self.ternary()
        if self.peek() is not None:
            raise _ParseError(f"trailing {self.peek()!r}")
        return node

    def ternary(self) -> tuple:
        cond = self.logical_or()
        if self.peek() == "?":
            self.take("?")
            if_true = self.ternary()
            self.take(":")
            if_false = self.ternary()
            return ("tern", cond, if_true, if_false)
        return cond

    def logical_or(self) -> tuple:
        node = self.logical_and()
        while self.peek() == "||":
            self.take("||")
            node = ("log", "||", node, self.logical_and())
        return node

    def logical_and(self) -> tuple:
        node = self.comparison()
        while self.peek() == "&&":
            self.take("&&")
            node = ("log", "&&", node, self.comparison())
        return node

    def comparison(self) -> tuple:
        node = self.additive()
        if self.peek() in ("<", "<=", ">", ">=", "==", "!="):
            op = self.take()
            node = ("cmp", op, node, self.additive())
        return node

    def additive(self) -> tuple:
        node = self.multiplicative()
        while self.peek() in ("+", "-"):
            op = self.take()
            node = ("bin", op, node, self.multiplicative())
        return node

    def multiplicative(self) -> tuple:
        node = self.unary()
        while self.peek() in ("*", "/", "%"):
            op = self.take()
            node = ("bin", op, node, self.unary())
        return node

    def unary(self) -> tuple:
        if self.peek() == "-":
            self.take("-")
            return ("neg", self.unary())
        return self.primary()

    def primary(self) -> tuple:
        token = self.peek()
        if token is None:
            raise _ParseError("unexpected end of expression")
        if token == "(":
            self.take("(")
            node = self.ternary()
            self.take(")")
            return node
        if token.isdigit():
            self.take()
            return ("num", int(token))
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            self.take()
            if self.peek() == "(":
                self.take("(")
                args: List[tuple] = []
                if self.peek() != ")":
                    args.append(self.ternary())
                    while self.peek() == ",":
                        self.take(",")
                        args.append(self.ternary())
                self.take(")")
                return ("call", token, tuple(args))
            return ("id", token)
        raise _ParseError(f"unexpected token {token!r}")


def _parse_expr(text: str) -> tuple:
    return _Parser(_tokenize(text)).parse()


def _linear(node: tuple) -> Optional[Tuple[Dict[str, int], int]]:
    """``({var: coeff}, constant)`` for a +/- linear AST, else ``None``."""
    kind = node[0]
    if kind == "num":
        return {}, node[1]
    if kind == "id":
        return {node[1]: 1}, 0
    if kind == "neg":
        inner = _linear(node[1])
        if inner is None:
            return None
        return {k: -v for k, v in inner[0].items()}, -inner[1]
    if kind == "bin" and node[1] in ("+", "-"):
        left = _linear(node[2])
        right = _linear(node[3])
        if left is None or right is None:
            return None
        sign = 1 if node[1] == "+" else -1
        coeffs = dict(left[0])
        for var, coeff in right[0].items():
            coeffs[var] = coeffs.get(var, 0) + sign * coeff
        coeffs = {k: v for k, v in coeffs.items() if v != 0}
        return coeffs, left[1] + sign * right[1]
    return None


def _unit_offset(node: tuple) -> Optional[Tuple[str, int]]:
    """``(var, d)`` when the AST is exactly ``var + d``, else ``None``."""
    lin = _linear(node)
    if lin is None:
        return None
    coeffs, constant = lin
    if len(coeffs) != 1:
        return None
    (var, coeff), = coeffs.items()
    return (var, constant) if coeff == 1 else None


# ---------------------------------------------------------------------------
# Abstract evaluation of index expressions
# ---------------------------------------------------------------------------

#: The boundary resolvers of the emitted preamble: each maps any input
#: index into ``[0, n - 1]``.
_RESOLVER_FNS = ("idx_clamp", "idx_mirror", "idx_repeat")


class _Eval:
    """Evaluates index ASTs to affine intervals.

    ``polymorphic`` decides whether the ``width``/``height`` identifiers
    are the symbolic plane extents; specialized sources carry numeric
    extents instead, and the symbols are unknown.
    """

    def __init__(self, polymorphic: bool):
        self.polymorphic = polymorphic

    def point(self, node: tuple) -> Optional[Aff]:
        """The exact affine value of a node, or ``None``."""
        kind = node[0]
        if kind == "num":
            return _aff_const(node[1])
        if kind == "id":
            if self.polymorphic and node[1] == "width":
                return _WIDTH
            if self.polymorphic and node[1] == "height":
                return _HEIGHT
            return None
        if kind == "neg":
            inner = self.point(node[1])
            return None if inner is None else _aff_neg(inner)
        if kind == "bin" and node[1] in ("+", "-"):
            a, b = self.point(node[2]), self.point(node[3])
            if a is None or b is None:
                return None
            return _aff_add(a, b if node[1] == "+" else _aff_neg(b))
        if kind == "bin" and node[1] == "*":
            a, b = self.point(node[2]), self.point(node[3])
            if a is None or b is None:
                return None
            if a[0] == a[1] == 0:
                return _aff_scale(b, a[2])
            if b[0] == b[1] == 0:
                return _aff_scale(a, b[2])
            return None
        return None

    def interval(self, node: tuple, env: Dict[str, _Iv]) -> Optional[_Iv]:
        kind = node[0]
        if kind == "num":
            return _iv_point(_aff_const(node[1]))
        if kind == "id":
            bound = env.get(node[1])
            if bound is not None:
                return bound
            point = self.point(node)
            return None if point is None else _iv_point(point)
        if kind == "neg":
            inner = self.interval(node[1], env)
            return None if inner is None else _iv_neg(inner)
        if kind == "bin":
            op = node[1]
            a = self.interval(node[2], env)
            b = self.interval(node[3], env)
            if a is None or b is None:
                return None
            if op == "+":
                return _iv_add(a, b)
            if op == "-":
                return _iv_add(a, _iv_neg(b))
            if op == "*":
                ka = self.point(node[2])
                kb = self.point(node[3])
                if ka is not None and ka[0] == ka[1] == 0:
                    return _iv_scale(b, ka[2])
                if kb is not None and kb[0] == kb[1] == 0:
                    return _iv_scale(a, kb[2])
                return None
            return None  # / and % never index in honest emissions
        if kind in ("cmp", "log"):
            return _BOOL_IV
        if kind == "tern":
            return self._ternary(node, env)
        if kind == "call":
            name, args = node[1], node[2]
            if name in _RESOLVER_FNS and len(args) == 2:
                extent = self.point(args[1])
                if extent is None:
                    return None
                return _Iv(
                    (_ZERO,), (_aff_add(extent, _aff_const(-1)),)
                )
            return None
        return None

    def _ternary(self, node: tuple, env: Dict[str, _Iv]) -> Optional[_Iv]:
        _, cond, if_true, if_false = node
        # The CONSTANT-mode guard: (A < 0 || A >= N) ? 0 : A  ->  [0, N-1]
        if (
            cond[0] == "log"
            and cond[1] == "||"
            and cond[2][0] == "cmp"
            and cond[2][1] == "<"
            and cond[2][3] == ("num", 0)
            and cond[3][0] == "cmp"
            and cond[3][1] == ">="
            and cond[2][2] == cond[3][2]
            and if_false == cond[2][2]
            and if_true == ("num", 0)
        ):
            extent = self.point(cond[3][3])
            if extent is not None:
                return _Iv((_ZERO,), (_aff_add(extent, _aff_const(-1)),))
        # Runtime clamps: (a < b ? a : b) == min, (a > b ? a : b) == max.
        if cond[0] == "cmp" and cond[1] in ("<", "<=", ">", ">="):
            lhs, rhs = cond[2], cond[3]
            a = self.interval(lhs, env)
            b = self.interval(rhs, env)
            if a is not None and b is not None:
                picks_min = cond[1] in ("<", "<=")
                if if_true == lhs and if_false == rhs:
                    return self._minmax(a, b, minimum=picks_min)
                if if_true == rhs and if_false == lhs:
                    return self._minmax(a, b, minimum=not picks_min)
        t = self.interval(if_true, env)
        f = self.interval(if_false, env)
        if t is None or f is None:
            return None
        return _iv_join(t, f)

    @staticmethod
    def _minmax(a: _Iv, b: _Iv, minimum: bool) -> _Iv:
        if minimum:
            # min(a, b) <= every upper bound of either side; its lower
            # bounds are those of one side that also bound the other.
            his = a.his + b.his
            los = tuple(
                m
                for m in a.los + b.los
                if any(_prove_le(m, n) for n in a.los)
                and any(_prove_le(m, n) for n in b.los)
            )
            return _Iv(los, his)
        los = a.los + b.los
        his = tuple(
            m
            for m in a.his + b.his
            if any(_prove_le(n, m) for n in a.his)
            and any(_prove_le(n, m) for n in b.his)
        )
        return _Iv(los, his)


# ---------------------------------------------------------------------------
# Source structure
# ---------------------------------------------------------------------------

_FN_HEADER_RE = re.compile(
    r"^(static inline double|static inline float|static double|void) "
    r"(\w+)\((.*)\)$"
)
_INT_TEMP_RE = re.compile(r"^\s*const int (c\d+) = (.+);$")
_SUBSCRIPT_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\[")
_STORE_RE = re.compile(r"^\s*out\[(.+)\] = (\w+)\((.*)\);$")
_FOR_X_RE = re.compile(r"^\s*for \(int x = (.+); x < (.+); \+\+x\)\s*\{?$")
_GUARD_RE = re.compile(r"^\s*if \(y >= (\d+) && y < (.+)\) \{$")
_Y_END_RE = re.compile(
    r"^\s*const int y_end = \(t \+ 1\) \* (\d+) < (.+) "
    r"\? \(t \+ 1\) \* (\d+) : (.+);$"
)
_FOR_Y_RE = re.compile(r"^\s*for \(int y = t \* (\d+); y < y_end; \+\+y\) \{$")
_FOR_T_RE = re.compile(r"^\s*for \(int t = 0; t < n_tiles; \+\+t\) \{$")

# -- the 2D overlapped-tiling driver grammar --------------------------------

_N_TX_RE = re.compile(r"^\s*const int n_tx = \((.+) \+ (\d+)\) / (\d+);$")
_N_TY_RE = re.compile(r"^\s*const int n_ty = \((.+) \+ (\d+)\) / (\d+);$")
_N_TILES_RE = re.compile(r"^\s*const int n_tiles = n_tx \* n_ty;$")
_TILE_X0_RE = re.compile(r"^\s*const int x0 = \(t % n_tx\) \* (\d+);$")
_TILE_Y0_RE = re.compile(r"^\s*const int y0 = \(t / n_tx\) \* (\d+);$")
_TILE_X1_RE = re.compile(
    r"^\s*const int x1 = x0 \+ (\d+) < (.+) \? x0 \+ (\d+) : (.+);$"
)
_TILE_Y1_RE = re.compile(
    r"^\s*const int y1 = y0 \+ (\d+) < (.+) \? y0 \+ (\d+) : (.+);$"
)
_SCR_DECL_RE = re.compile(r"^\s*(?:double|float) scr_(\d+)\[(\d+)\];$")
_SX0_RE = re.compile(
    r"^\s*const int sx0_(\d+) = x0 - (\d+) > 0 \? x0 - (\d+) : 0;$"
)
_SX1_RE = re.compile(
    r"^\s*const int sx1_(\d+) = x1 \+ (\d+) < (.+) \? x1 \+ (\d+) : (.+);$"
)
_SY0_RE = re.compile(
    r"^\s*const int sy0_(\d+) = y0 - (\d+) > 0 \? y0 - (\d+) : 0;$"
)
_SY1_RE = re.compile(
    r"^\s*const int sy1_(\d+) = y1 \+ (\d+) < (.+) \? y1 \+ (\d+) : (.+);$"
)
_FILL_Y_RE = re.compile(
    r"^\s*for \(int y = sy0_(\d+); y < sy1_(\d+); \+\+y\) \{$"
)
_FILL_X_RE = re.compile(
    r"^\s*for \(int x = sx0_(\d+); x < sx1_(\d+); \+\+x\)$"
)
_FILL_STORE_RE = re.compile(
    r"^\s*scr_(\d+)\[\(y - sy0_(\d+)\) \* (\d+) \+ \(x - sx0_(\d+)\)\] = "
    r"(\w+)\((.*)\);$"
)
_FLA_RE = re.compile(
    r"^\s*const int fla_(\d+) = (.+) > sx0_(\d+) \? (.+) : sx0_(\d+);$"
)
_FL_RE = re.compile(
    r"^\s*const int fl_(\d+) = fla_(\d+) < sx1_(\d+) \? fla_(\d+) : sx1_(\d+);$"
)
_FHA_RE = re.compile(
    r"^\s*const int fha_(\d+) = (.+) < sx1_(\d+) \? (.+) : sx1_(\d+);$"
)
_FH_RE = re.compile(
    r"^\s*const int fh_(\d+) = fha_(\d+) > fl_(\d+) \? fha_(\d+) : fl_(\d+);$"
)
_FILL_SEG_RE = re.compile(r"^\s*for \(int x = (\w+); x < (\w+); \+\+x\)$")
_FILL_ELSE_RE = re.compile(r"^\s*\} else \{$")
_ILA_RE = re.compile(r"^\s*const int ila = (.+) > x0 \? (.+) : x0;$")
_IL_RE = re.compile(r"^\s*const int il = ila < x1 \? ila : x1;$")
_IHA_RE = re.compile(r"^\s*const int iha = (.+) < x1 \? (.+) : x1;$")
_IH_RE = re.compile(r"^\s*const int ih = iha > il \? iha : il;$")
_DEST_Y_RE = re.compile(r"^\s*for \(int y = y0; y < y1; \+\+y\) \{$")
_CLOSE_RE = re.compile(r"^\s*\}$")
_DRIVER_DECL_RE = re.compile(r"^\s*const int (\w+) = (.+);$")


def _extract_functions(source: str) -> Dict[str, Tuple[str, List[str]]]:
    """``name -> (arg text, body lines)`` for every function in the source."""
    lines = source.split("\n")
    functions: Dict[str, Tuple[str, List[str]]] = {}
    index = 0
    while index < len(lines):
        match = _FN_HEADER_RE.match(lines[index])
        if match is None or index + 1 >= len(lines) or lines[index + 1] != "{":
            index += 1
            continue
        name, args = match.group(2), match.group(3)
        body: List[str] = []
        depth = 1
        index += 2
        while index < len(lines) and depth > 0:
            line = lines[index]
            depth += line.count("{") - line.count("}")
            if depth > 0:
                body.append(line)
            index += 1
        functions[name] = (args, body)
    return functions


def _subscripts(line: str) -> List[Tuple[str, str]]:
    """``(buffer, index text)`` pairs for each subscript on a line."""
    found: List[Tuple[str, str]] = []
    for match in _SUBSCRIPT_RE.finditer(line):
        depth = 1
        start = match.end()
        pos = start
        while pos < len(line) and depth > 0:
            if line[pos] == "[":
                depth += 1
            elif line[pos] == "]":
                depth -= 1
            pos += 1
        if depth == 0:
            found.append((match.group(1), line[start : pos - 1]))
    return found


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ScratchCtx:
    """What a body is allowed to read from per-tile scratch.

    ``consumer`` is the (L, R, T, B) halo margin of the body's own
    evaluation region (zero for the destination bodies); ``producers``
    maps stage index to its driver-declared ``(L, R, T, B, pitch)``;
    ``raw`` permits unresolved coordinates (the interior body only).
    """

    consumer: Tuple[int, int, int, int]
    producers: Dict[int, Tuple[int, int, int, int, int]]
    raw: bool


class _Tile2DShapeError(Exception):
    """Internal bail-out: the tile2d driver deviated from the template."""


class _Checker:
    def __init__(
        self,
        source: str,
        fn_name: str,
        width: int,
        height: int,
        polymorphic: bool,
        images: Sequence[str],
        output_name: Optional[str],
        kernel: Optional[str],
    ):
        self.source = source
        self.fn_name = fn_name
        self.polymorphic = polymorphic
        self.images = tuple(images)
        self.output_name = output_name
        self.kernel = kernel
        self.evaluator = _Eval(polymorphic)
        self.width_aff = _WIDTH if polymorphic else _aff_const(width)
        self.height_aff = _HEIGHT if polymorphic else _aff_const(height)
        self.width_token = ("id", "width") if polymorphic else ("num", width)
        self.diagnostics: List[Diagnostic] = []

    def emit(self, code: str, message: str, path: str, **details) -> None:
        self.diagnostics.append(
            diag(code, message, kernel=self.kernel, path=path, **details)
        )

    # -- pointer discipline ----------------------------------------------

    def check_pointers(self, functions) -> None:
        if self.output_name is not None and self.output_name in self.images:
            self.emit(
                "NAT003",
                f"block output {self.output_name!r} is also an input "
                "plane: the restrict-qualified 'out' argument would "
                "alias an input pointer",
                self.fn_name,
                output=self.output_name,
            )
        for name, (args, _body) in functions.items():
            for arg in args.split(","):
                arg = arg.strip()
                if "*" in arg and not re.search(r"\brestrict\b", arg):
                    self.emit(
                        "NAT003",
                        f"pointer argument {arg!r} of {name!r} is not "
                        "restrict-qualified; the no-alias contract the "
                        "optimizer relies on is undeclared",
                        name,
                        argument=arg,
                    )

    # -- index proofs ------------------------------------------------------

    def _pitch_tokens(self, buffer: Optional[str]) -> Tuple[tuple, ...]:
        """Row-pitch tokens acceptable in ``Y * pitch + X`` for a buffer.

        Every buffer accepts the plane width.  Shape-polymorphic inputs
        additionally accept their own runtime stride formal
        (``in_foo`` pairs with ``st_foo``): the binder only ever passes
        a pitch ``>= width``, so proving ``X <= width - 1`` and
        ``Y <= height - 1`` componentwise still bounds the subscript by
        the bound buffer's allocation.
        """
        tokens = (self.width_token,)
        if self.polymorphic and buffer is not None and buffer.startswith("in_"):
            tokens += (("id", "st_" + buffer[3:]),)
        return tokens

    def check_index(
        self,
        text: str,
        env: Dict[str, _Iv],
        path: str,
        buffer: Optional[str] = None,
    ) -> None:
        try:
            ast = _parse_expr(text)
        except _ParseError as err:
            self.emit(
                "NAT002",
                f"unparseable index expression {text!r} ({err})",
                path,
                index=text,
            )
            return
        if not (
            ast[0] == "bin"
            and ast[1] == "+"
            and ast[2][0] == "bin"
            and ast[2][1] == "*"
            and ast[2][3] in self._pitch_tokens(buffer)
        ):
            self.emit(
                "NAT002",
                f"index {text!r} is not in row-major "
                "'Y * width + X' form; its plane bound cannot be "
                "checked componentwise",
                path,
                index=text,
            )
            return
        checks = (
            ("x", ast[3], self.width_aff),
            ("y", ast[2][2], self.height_aff),
        )
        for axis, node, extent in checks:
            interval = self.evaluator.interval(node, env)
            limit = _aff_add(extent, _aff_const(-1))
            if interval is None:
                self.emit(
                    "NAT002",
                    f"{axis}-component of index {text!r} has no "
                    "provable bounds",
                    path,
                    index=text,
                    axis=axis,
                )
                continue
            below = any(_prove_le(m, _aff_const(-1)) for m in interval.his)
            above = any(_prove_le(extent, m) for m in interval.los)
            if below or above:
                self.emit(
                    "NAT001",
                    f"{axis}-component of index {text!r} is proven "
                    f"{'negative' if below else 'past the plane extent'}",
                    path,
                    index=text,
                    axis=axis,
                )
                continue
            if not interval.ge_proven(_ZERO):
                self.emit(
                    "NAT002",
                    f"{axis}-component of index {text!r} cannot be "
                    "proven >= 0",
                    path,
                    index=text,
                    axis=axis,
                )
            if not interval.le_proven(limit):
                self.emit(
                    "NAT002",
                    f"{axis}-component of index {text!r} cannot be "
                    f"proven <= {axis}-extent - 1",
                    path,
                    index=text,
                    axis=axis,
                )

    def check_body(
        self,
        name: str,
        lines: List[str],
        x_iv: _Iv,
        y_iv: _Iv,
        scratch: Optional["_ScratchCtx"] = None,
    ) -> None:
        env: Dict[str, _Iv] = {"x": x_iv, "y": y_iv}
        symbols: Dict[str, tuple] = {}
        for number, line in enumerate(lines):
            temp = _INT_TEMP_RE.match(line)
            if temp is not None:
                try:
                    ast = _parse_expr(temp.group(2))
                except _ParseError:
                    ast = None
                if ast is not None:
                    symbols[temp.group(1)] = ast
                value = (
                    self.evaluator.interval(ast, env)
                    if ast is not None
                    else None
                )
                env[temp.group(1)] = value if value is not None else _Iv()
            for buffer, index_text in _subscripts(line):
                where = f"{name}:{number + 1}"
                if buffer.startswith("scr_"):
                    self.check_scratch_index(
                        buffer, index_text, symbols, env, scratch, where
                    )
                else:
                    self.check_index(index_text, env, where, buffer=buffer)

    def check_scratch_index(
        self,
        buffer: str,
        text: str,
        symbols: Dict[str, tuple],
        env: Dict[str, _Iv],
        scratch: Optional["_ScratchCtx"],
        path: str,
    ) -> None:
        """Prove one scratch-buffer read against the margin ledger.

        A read of producer ``p`` from a consumer body with margins
        ``(Lc, Rc, Tc, Bc)`` is in-region exactly when the producer's
        margins absorb the consumer's evaluation region shifted by the
        read offset — ``Lp >= Lc - d`` and ``Rp >= Rc + d`` on x (the
        y analogue on top/bottom).  Coordinates must arrive clamped
        (``idx_clamp``) except in the interior body, where the raw
        offset is additionally proven in-plane.
        """
        def fail(code: str, why: str) -> None:
            self.emit(
                code,
                f"scratch read {buffer}[{text}] {why}",
                path,
                index=text,
                buffer=buffer,
            )

        if scratch is None:
            fail("NAT002", "appears outside any tile2d scratch context")
            return
        try:
            producer = int(buffer[4:])
        except ValueError:
            fail("NAT002", "has a non-numeric stage suffix")
            return
        region = scratch.producers.get(producer)
        if region is None:
            fail("NAT002", "names a stage the driver declares no scratch for")
            return
        lp, rp, tp, bp, pitch = region
        lc, rc, tc, bc = scratch.consumer
        try:
            ast = _parse_expr(text)
        except _ParseError as err:
            fail("NAT002", f"is unparseable ({err})")
            return
        if not (
            ast[0] == "bin"
            and ast[1] == "+"
            and ast[2][0] == "bin"
            and ast[2][1] == "*"
            and ast[2][3] == ("num", pitch)
            and ast[2][2][0] == "bin"
            and ast[2][2][1] == "-"
            and ast[2][2][3] == ("id", f"sy0_{producer}")
            and ast[3][0] == "bin"
            and ast[3][1] == "-"
            and ast[3][3] == ("id", f"sx0_{producer}")
        ):
            fail(
                "NAT002",
                "is not in the canonical "
                f"'(Y - sy0_{producer}) * {pitch} + (X - sx0_{producer})' "
                "form",
            )
            return
        components = (
            ("x", ast[3][2], "x", self.width_aff, lp - lc, rp - rc),
            ("y", ast[2][2][2], "y", self.height_aff, tp - tc, bp - bc),
        )
        for axis, node, var, extent, lo_slack, hi_slack in components:
            if node[0] == "id" and node[1] in symbols:
                node = symbols[node[1]]
            clamped = (
                node[0] == "call"
                and node[1] == "idx_clamp"
                and len(node[2]) == 2
            )
            if clamped:
                if self.evaluator.point(node[2][1]) != extent:
                    fail(
                        "NAT002",
                        f"clamps its {axis}-coordinate against something "
                        "other than the plane extent",
                    )
                    continue
                inner = node[2][0]
            elif node[0] == "call":
                fail(
                    "NAT002",
                    f"resolves its {axis}-coordinate through "
                    f"{node[1]!r}; only idx_clamp keeps the ledger "
                    "containment argument",
                )
                continue
            else:
                inner = node
            offset = _unit_offset(inner)
            if offset is None or offset[0] != var:
                fail(
                    "NAT002",
                    f"{axis}-coordinate is not a unit offset of {var!r}",
                )
                continue
            d = offset[1]
            # Ledger containment: Lp >= Lc - d and Rp >= Rc + d (x),
            # Tp >= Tc - e and Bp >= Bc + e (y).
            if lo_slack < -d or hi_slack < d:
                fail(
                    "NAT001",
                    f"{axis}-offset {d:+d} exceeds the producer's halo "
                    f"margin over the consumer's evaluation region",
                )
                continue
            if not clamped and d != 0:
                # An un-shifted base coordinate (d == 0) is the loop
                # variable itself — inside the consumer's clipped
                # region by construction, so only the ledger check
                # above applies.  Shifted raw reads are an interior-
                # body privilege and must also be proven in-plane.
                if not scratch.raw:
                    fail(
                        "NAT002",
                        f"reads an unresolved {axis}-coordinate outside "
                        "the interior body",
                    )
                    continue
                interval = self.evaluator.interval(inner, env)
                limit = _aff_add(extent, _aff_const(-1))
                if interval is None or not (
                    interval.ge_proven(_ZERO)
                    and interval.le_proven(limit)
                ):
                    fail(
                        "NAT002",
                        f"raw {axis}-coordinate cannot be proven "
                        "in-plane for the interior iteration space",
                    )

    # -- driver structure --------------------------------------------------

    def check_driver(self, body: List[str], has_interior: bool) -> None:
        path = self.fn_name
        tile: Optional[int] = None
        height_token = "height" if self.polymorphic else None

        def is_height_token(text: str) -> bool:
            text = text.strip()
            point = None
            try:
                point = self.evaluator.point(_parse_expr(text))
            except _ParseError:
                return False
            return point == self.height_aff

        saw_t = saw_y = False
        for line in body:
            if _FOR_T_RE.match(line):
                saw_t = True
            match = _Y_END_RE.match(line)
            if match is not None:
                if (
                    match.group(1) == match.group(3)
                    and is_height_token(match.group(2))
                    and match.group(2) == match.group(4)
                ):
                    tile = int(match.group(1))
                else:
                    self.emit(
                        "NAT004",
                        "tile bound does not clamp y_end to the plane "
                        f"height: {line.strip()!r}",
                        path,
                        line=line.strip(),
                    )
            match = _FOR_Y_RE.match(line)
            if match is not None:
                saw_y = True
                if tile is None or int(match.group(1)) != tile:
                    self.emit(
                        "NAT004",
                        "row loop tile stride disagrees with the "
                        f"clamped y_end tile: {line.strip()!r}",
                        path,
                        line=line.strip(),
                    )
        if not (saw_t and saw_y and tile is not None):
            self.emit(
                "NAT004",
                "driver is missing the expected tile/row loop nest",
                path,
            )
            return

        # The clamped tile loop proves y in [0, height - 1]; the guard
        # (when present) narrows it for the branch it encloses.
        full_x = _Iv((_ZERO,), (_aff_add(self.width_aff, _aff_const(-1)),))
        full_y = _Iv((_ZERO,), (_aff_add(self.height_aff, _aff_const(-1)),))
        y_iv = full_y
        interior_env: Optional[Tuple[_Iv, _Iv]] = None
        stores = 0
        pending_x: Optional[_Iv] = None
        for number, line in enumerate(body):
            guard = _GUARD_RE.match(line)
            if guard is not None:
                try:
                    upper = self.evaluator.point(_parse_expr(guard.group(2)))
                except _ParseError:
                    upper = None
                if upper is None:
                    self.emit(
                        "NAT004",
                        f"unrecognized interior guard bound "
                        f"{guard.group(2)!r}",
                        path,
                        line=line.strip(),
                    )
                    upper = _aff_add(self.height_aff, _aff_const(0))
                y_iv = _Iv(
                    (_aff_const(int(guard.group(1))),),
                    full_y.his + (_aff_add(upper, _aff_const(-1)),),
                )
                continue
            if "} else {" in line:
                y_iv = full_y
                continue
            for_x = _FOR_X_RE.match(line)
            if for_x is not None:
                try:
                    init = self.evaluator.interval(
                        _parse_expr(for_x.group(1)), {}
                    )
                    bound = self.evaluator.interval(
                        _parse_expr(for_x.group(2)), {}
                    )
                except _ParseError:
                    init = bound = None
                if init is None or bound is None:
                    self.emit(
                        "NAT004",
                        f"unrecognized x-loop bounds: {line.strip()!r}",
                        path,
                        line=line.strip(),
                    )
                    pending_x = full_x
                else:
                    pending_x = _Iv(
                        init.los,
                        tuple(
                            _aff_add(m, _aff_const(-1)) for m in bound.his
                        ),
                    )
                continue
            store = _STORE_RE.match(line)
            if store is not None:
                stores += 1
                if pending_x is None:
                    self.emit(
                        "NAT004",
                        "store outside any x loop: " f"{line.strip()!r}",
                        path,
                        line=line.strip(),
                    )
                    x_iv = full_x
                else:
                    x_iv = pending_x
                if _iv_empty(x_iv) or _iv_empty(y_iv):
                    continue  # loop provably never executes this store
                env = {"x": x_iv, "y": y_iv}
                self.check_index(
                    store.group(1), env, f"{path}:{number + 1}"
                )
                called = store.group(2)
                if called == f"{self.fn_name}_interior":
                    interior_env = (x_iv, y_iv)
                elif called != f"{self.fn_name}_halo":
                    self.emit(
                        "NAT004",
                        f"store calls unknown body {called!r}",
                        path,
                        line=line.strip(),
                    )
                continue
            if line.strip().startswith("}"):
                pending_x = None
        if stores == 0:
            self.emit("NAT004", "driver stores no output pixels", path)
        if has_interior and interior_env is None:
            self.emit(
                "NAT004",
                "an interior body is emitted but the driver never "
                "calls it",
                path,
            )
        self._interior_env = interior_env
        self._full = (full_x, full_y)

    # -- 2D overlapped-tiling driver ---------------------------------------

    def _point_of(self, text: str) -> Optional[Aff]:
        try:
            return self.evaluator.point(_parse_expr(text))
        except _ParseError:
            return None

    def check_tile2d_driver(self, body: List[str], has_interior: bool):
        """Template-verify the tile2d driver; recover the margin ledger.

        Returns ``(producers, interior_env, stage_envs)`` on success —
        ``producers`` maps stage index to ``(L, R, T, B, pitch)``,
        ``interior_env`` is the proven ``(x_iv, y_iv)`` of the interior
        body's call sites (``None`` when no interior body is called),
        and ``stage_envs`` maps each split-fill stage to the proven
        ``(x_iv, y_iv)`` of its clamp-free ``_s{k}i`` call sites.
        Emits NAT004 and raises :class:`_Tile2DShapeError` on any
        structural deviation: the scratch-safety argument is a
        meta-theorem over this exact grammar, so an unrecognized driver
        cannot be proven safe.
        """
        path = self.fn_name
        pos = 0

        def skip() -> Optional[str]:
            nonlocal pos
            while pos < len(body):
                stripped = body[pos].strip()
                if (
                    stripped == ""
                    or stripped.startswith("#")
                    or stripped == "(void)threads;"
                ):
                    pos += 1
                    continue
                return body[pos]
            return None

        def take(regex: "re.Pattern[str]", what: str) -> "re.Match[str]":
            nonlocal pos
            line = skip()
            match = regex.match(line) if line is not None else None
            if match is None:
                got = line.strip() if line is not None else "end of driver"
                self.emit(
                    "NAT004",
                    f"tile2d driver: expected {what}, got {got!r}",
                    path,
                    line=got,
                )
                raise _Tile2DShapeError
            pos += 1
            return match

        def malformed(why: str, line: str = "") -> None:
            self.emit(
                "NAT004",
                f"tile2d driver: {why}",
                path,
                line=line.strip(),
            )
            raise _Tile2DShapeError

        # Tile grid: n_tx = ceil(width / tw), origin/clip decls.  The
        # grid template proves x0 in [0, width - 1] and x1 in [0, width]
        # ((n_tx - 1) * tw <= width - 1 whenever width >= 1).
        match = take(_N_TX_RE, "the n_tx grid decl")
        tile_w = int(match.group(3))
        if (
            self._point_of(match.group(1)) != self.width_aff
            or int(match.group(2)) != tile_w - 1
        ):
            malformed(
                "n_tx does not divide the plane width into ceil(W/tw) "
                "tiles", match.group(0),
            )
        match = take(_N_TY_RE, "the n_ty grid decl")
        tile_h = int(match.group(3))
        if (
            self._point_of(match.group(1)) != self.height_aff
            or int(match.group(2)) != tile_h - 1
        ):
            malformed(
                "n_ty does not divide the plane height into ceil(H/th) "
                "tiles", match.group(0),
            )
        take(_N_TILES_RE, "the n_tiles decl")
        take(_FOR_T_RE, "the tile loop")
        if int(take(_TILE_X0_RE, "the x0 decl").group(1)) != tile_w:
            malformed("x0 stride disagrees with the n_tx tile width")
        if int(take(_TILE_Y0_RE, "the y0 decl").group(1)) != tile_h:
            malformed("y0 stride disagrees with the n_ty tile height")
        match = take(_TILE_X1_RE, "the x1 clip decl")
        if not (
            int(match.group(1)) == int(match.group(3)) == tile_w
            and match.group(2) == match.group(4)
            and self._point_of(match.group(2)) == self.width_aff
        ):
            malformed("x1 is not clamped to the plane width", match.group(0))
        match = take(_TILE_Y1_RE, "the y1 clip decl")
        if not (
            int(match.group(1)) == int(match.group(3)) == tile_h
            and match.group(2) == match.group(4)
            and self._point_of(match.group(2)) == self.height_aff
        ):
            malformed("y1 is not clamped to the plane height", match.group(0))

        width_limit = _aff_add(self.width_aff, _aff_const(-1))
        height_limit = _aff_add(self.height_aff, _aff_const(-1))
        env: Dict[str, _Iv] = {
            "x0": _Iv((_ZERO,), (width_limit,)),
            "y0": _Iv((_ZERO,), (height_limit,)),
            "x1": _Iv((_ZERO,), (self.width_aff,)),
            "y1": _Iv((_ZERO,), (self.height_aff,)),
        }

        # Scratch regions: one decl block per stage, clipped to the
        # plane.  The clip template bounds each region by
        # (th + T + B) x (tw + L + R), which the declared array extent
        # must cover (NAT001 otherwise: the fill loop would overrun a
        # stack buffer).
        producers: Dict[int, Tuple[int, int, int, int, int]] = {}
        while True:
            line = skip()
            if line is None or _SCR_DECL_RE.match(line) is None:
                break
            match = take(_SCR_DECL_RE, "a scratch decl")
            stage, declared = int(match.group(1)), int(match.group(2))
            if stage in producers:
                malformed(f"scr_{stage} is declared twice", match.group(0))
            match = take(_SX0_RE, f"the sx0_{stage} decl")
            if int(match.group(1)) != stage or match.group(2) != match.group(3):
                malformed("mismatched sx0 decl", match.group(0))
            left = int(match.group(2))
            match = take(_SX1_RE, f"the sx1_{stage} decl")
            if not (
                int(match.group(1)) == stage
                and match.group(2) == match.group(4)
                and int(match.group(2)) == int(match.group(4))
                and match.group(3) == match.group(5)
                and self._point_of(match.group(3)) == self.width_aff
            ):
                malformed("mismatched sx1 decl", match.group(0))
            right = int(match.group(2))
            match = take(_SY0_RE, f"the sy0_{stage} decl")
            if int(match.group(1)) != stage or match.group(2) != match.group(3):
                malformed("mismatched sy0 decl", match.group(0))
            top = int(match.group(2))
            match = take(_SY1_RE, f"the sy1_{stage} decl")
            if not (
                int(match.group(1)) == stage
                and match.group(2) == match.group(4)
                and match.group(3) == match.group(5)
                and self._point_of(match.group(3)) == self.height_aff
            ):
                malformed("mismatched sy1 decl", match.group(0))
            bottom = int(match.group(2))
            pitch = tile_w + left + right
            rows = tile_h + top + bottom
            if declared != rows * pitch:
                self.emit(
                    "NAT001",
                    f"scratch buffer scr_{stage} declares {declared} "
                    f"elements but its clipped fill region needs up to "
                    f"{rows} x {pitch} = {rows * pitch}",
                    path,
                    buffer=f"scr_{stage}",
                )
            producers[stage] = (left, right, top, bottom, pitch)
        if not producers:
            malformed("no scratch stage declarations")
        if sorted(producers) != list(range(len(producers))):
            malformed("scratch stages are not contiguously numbered")

        # Fill loops: the canonical region sweep per stage, in order.
        # Safety is by template: x - sx0_k < sx1_k - sx0_k <= pitch and
        # the row analogue, both consequences of the clip decls above.
        # A stage with a clamp-free interior variant splits its sweep
        # the way the destination loop does: the fl/fh clamps and the
        # row guard confine the raw-read body (_s{k}i) to the proven
        # in-plane band, recorded in ``stage_envs``.
        stage_envs: Dict[int, Tuple[_Iv, _Iv]] = {}

        def fill_store(stage: int, suffix: str) -> None:
            match = take(_FILL_STORE_RE, f"the scr_{stage} fill store")
            if not (
                int(match.group(1)) == int(match.group(2))
                == int(match.group(4)) == stage
                and int(match.group(3)) == producers[stage][4]
                and match.group(5) == f"{self.fn_name}_s{stage}{suffix}"
            ):
                malformed(
                    "fill store does not write the canonical "
                    "region-relative index from its own stage body",
                    match.group(0),
                )

        for stage in range(len(producers)):
            line = skip()
            if line is not None and _FLA_RE.match(line) is not None:
                match = take(_FLA_RE, f"the fla_{stage} decl")
                fxlo = self._point_of(match.group(2))
                if (
                    int(match.group(1)) != stage
                    or int(match.group(3)) != stage
                    or int(match.group(5)) != stage
                    or match.group(2) != match.group(4)
                    or fxlo is None
                ):
                    malformed("mismatched fla decl", match.group(0))
                match = take(_FL_RE, f"the fl_{stage} decl")
                if any(int(g) != stage for g in match.groups()):
                    malformed("mismatched fl decl", match.group(0))
                match = take(_FHA_RE, f"the fha_{stage} decl")
                fxhi = self._point_of(match.group(2))
                if (
                    int(match.group(1)) != stage
                    or int(match.group(3)) != stage
                    or int(match.group(5)) != stage
                    or match.group(2) != match.group(4)
                    or fxhi is None
                ):
                    malformed("mismatched fha decl", match.group(0))
                match = take(_FH_RE, f"the fh_{stage} decl")
                if any(int(g) != stage for g in match.groups()):
                    malformed("mismatched fh decl", match.group(0))
                match = take(_FILL_Y_RE, f"the scr_{stage} fill row loop")
                if int(match.group(1)) != stage or int(match.group(2)) != stage:
                    malformed("fill row loop sweeps the wrong region",
                              match.group(0))
                guard = take(_GUARD_RE, f"the scr_{stage} fill row guard")
                fylo = _aff_const(int(guard.group(1)))
                fyhi = self._point_of(guard.group(2))
                if fyhi is None:
                    malformed("unrecognized fill guard bound", guard.group(0))
                segments = (
                    (f"sx0_{stage}", f"fl_{stage}", ""),
                    (f"fl_{stage}", f"fh_{stage}", "i"),
                    (f"fh_{stage}", f"sx1_{stage}", ""),
                )
                for lo, hi, suffix in segments:
                    match = take(
                        _FILL_SEG_RE, f"a scr_{stage} fill column loop"
                    )
                    if match.group(1) != lo or match.group(2) != hi:
                        malformed("fill segment sweeps the wrong span",
                                  match.group(0))
                    fill_store(stage, suffix)
                take(_FILL_ELSE_RE, "the fill else branch")
                match = take(_FILL_X_RE, f"the scr_{stage} fill column loop")
                if int(match.group(1)) != stage or int(match.group(2)) != stage:
                    malformed("fill column loop sweeps the wrong region",
                              match.group(0))
                fill_store(stage, "")
                take(_CLOSE_RE, "the fill guard close")
                take(_CLOSE_RE, "the fill loop close")
                # A nonempty [fl, fh) forces fl = fla = max(fxlo, sx0)
                # and fh = fha = min(fxhi, sx1), so the interior body
                # runs only for x in [fxlo, fxhi) and, by the guard,
                # y in [fylo, fyhi) — the band where raw reads must be
                # proven in-plane.
                stage_envs[stage] = (
                    _Iv(
                        (fxlo,),
                        (_aff_add(fxhi, _aff_const(-1)), width_limit),
                    ),
                    _Iv(
                        (fylo,),
                        (_aff_add(fyhi, _aff_const(-1)), height_limit),
                    ),
                )
            else:
                match = take(_FILL_Y_RE, f"the scr_{stage} fill row loop")
                if int(match.group(1)) != stage or int(match.group(2)) != stage:
                    malformed("fill row loop sweeps the wrong region",
                              match.group(0))
                match = take(_FILL_X_RE, f"the scr_{stage} fill column loop")
                if int(match.group(1)) != stage or int(match.group(2)) != stage:
                    malformed("fill column loop sweeps the wrong region",
                              match.group(0))
                fill_store(stage, "")
                take(_CLOSE_RE, "the fill loop close")

        # Interior split decls (when an interior body exists).  The
        # il/ih clamps guarantee the interior x loop runs only inside
        # [xlo, min(xhi, x1)): a nonempty [il, ih) forces il = ila and
        # ih = iha (otherwise il = ih = x1).
        interior_x: Optional[_Iv] = None
        line = skip()
        if line is not None and _ILA_RE.match(line) is not None:
            match = take(_ILA_RE, "the ila decl")
            xlo = self._point_of(match.group(1))
            if match.group(1) != match.group(2) or xlo is None:
                malformed("mismatched ila decl", match.group(0))
            take(_IL_RE, "the il decl")
            match = take(_IHA_RE, "the iha decl")
            xhi = self._point_of(match.group(1))
            if match.group(1) != match.group(2) or xhi is None:
                malformed("mismatched iha decl", match.group(0))
            take(_IH_RE, "the ih decl")
            interior_x = _Iv(
                (xlo,), (_aff_add(xhi, _aff_const(-1)), width_limit)
            )
            for name in ("ila", "il", "iha", "ih"):
                env[name] = _Iv((_ZERO,), (self.width_aff,))
        take(_DEST_Y_RE, "the destination row loop")

        # Destination loops: out[] stores through the halo/interior
        # bodies, x ranges are tile-clipped identifiers from env.
        full_y = _Iv((_ZERO,), (height_limit,))
        y_iv = full_y
        interior_env = None
        stores = 0
        pending_x: Optional[_Iv] = None
        while pos < len(body):
            line = body[pos]
            pos += 1
            stripped = line.strip()
            if stripped == "" or stripped.startswith("#"):
                continue
            guard = _GUARD_RE.match(line)
            if guard is not None:
                upper = self._point_of(guard.group(2))
                if upper is None:
                    self.emit(
                        "NAT004",
                        "unrecognized interior guard bound "
                        f"{guard.group(2)!r}",
                        path,
                        line=stripped,
                    )
                    upper = self.height_aff
                y_iv = _Iv(
                    (_aff_const(int(guard.group(1))),),
                    full_y.his + (_aff_add(upper, _aff_const(-1)),),
                )
                continue
            if "} else {" in line:
                y_iv = full_y
                continue
            for_x = _FOR_X_RE.match(line)
            if for_x is not None:
                try:
                    init = self.evaluator.interval(
                        _parse_expr(for_x.group(1)), env
                    )
                    bound = self.evaluator.interval(
                        _parse_expr(for_x.group(2)), env
                    )
                except _ParseError:
                    init = bound = None
                if init is None or bound is None:
                    self.emit(
                        "NAT004",
                        f"unrecognized x-loop bounds: {stripped!r}",
                        path,
                        line=stripped,
                    )
                    pending_x = _Iv((_ZERO,), (width_limit,))
                else:
                    pending_x = _Iv(
                        init.los,
                        tuple(
                            _aff_add(m, _aff_const(-1)) for m in bound.his
                        ),
                    )
                continue
            store = _STORE_RE.match(line)
            if store is not None:
                stores += 1
                if pending_x is None:
                    self.emit(
                        "NAT004",
                        f"store outside any x loop: {stripped!r}",
                        path,
                        line=stripped,
                    )
                    x_iv = _Iv((_ZERO,), (width_limit,))
                else:
                    x_iv = pending_x
                if _iv_empty(x_iv) or _iv_empty(y_iv):
                    continue
                self.check_index(
                    store.group(1),
                    {"x": x_iv, "y": y_iv},
                    f"{path}:{pos}",
                    buffer="out",
                )
                called = store.group(2)
                if called == f"{self.fn_name}_interior":
                    interior_env = (
                        interior_x if interior_x is not None else x_iv,
                        y_iv,
                    )
                elif called != f"{self.fn_name}_halo":
                    self.emit(
                        "NAT004",
                        f"store calls unknown body {called!r}",
                        path,
                        line=stripped,
                    )
                continue
            if stripped.startswith("}"):
                pending_x = None
                continue
            if "scr_" in line or "] = " in line:
                self.emit(
                    "NAT004",
                    "unrecognized write in the destination loop: "
                    f"{stripped!r}",
                    path,
                    line=stripped,
                )
        if stores == 0:
            self.emit("NAT004", "driver stores no output pixels", path)
        if has_interior and interior_env is None:
            self.emit(
                "NAT004",
                "an interior body is emitted but the driver never "
                "calls it",
                path,
            )
        return producers, interior_env, stage_envs

    def run_tile2d(self, functions, driver_body: List[str]):
        halo = functions[f"{self.fn_name}_halo"]
        interior = functions.get(f"{self.fn_name}_interior")
        try:
            producers, interior_env, stage_envs = self.check_tile2d_driver(
                driver_body, has_interior=interior is not None
            )
        except _Tile2DShapeError:
            return self.diagnostics
        full_x = _Iv((_ZERO,), (_aff_add(self.width_aff, _aff_const(-1)),))
        full_y = _Iv((_ZERO,), (_aff_add(self.height_aff, _aff_const(-1)),))
        for stage in sorted(producers):
            fn = functions.get(f"{self.fn_name}_s{stage}")
            if fn is None:
                self.emit(
                    "NAT004",
                    f"scratch buffer scr_{stage} has no stage body "
                    f"{self.fn_name}_s{stage}",
                    self.fn_name,
                )
                continue
            self.check_body(
                f"{self.fn_name}_s{stage}",
                fn[1],
                full_x,
                full_y,
                scratch=_ScratchCtx(
                    consumer=producers[stage][:4],
                    producers=producers,
                    raw=False,
                ),
            )
            ifn = functions.get(f"{self.fn_name}_s{stage}i")
            envs = stage_envs.get(stage)
            if envs is not None and ifn is None:
                self.emit(
                    "NAT004",
                    f"the split fill calls {self.fn_name}_s{stage}i but "
                    "no such stage body exists",
                    self.fn_name,
                )
            elif ifn is not None and envs is None:
                self.emit(
                    "NAT004",
                    f"stage interior body {self.fn_name}_s{stage}i is "
                    "emitted but the driver never calls it",
                    self.fn_name,
                )
            elif ifn is not None:
                self.check_body(
                    f"{self.fn_name}_s{stage}i",
                    ifn[1],
                    envs[0],
                    envs[1],
                    scratch=_ScratchCtx(
                        consumer=producers[stage][:4],
                        producers=producers,
                        raw=True,
                    ),
                )
        stage_re = re.compile(re.escape(self.fn_name) + r"_s(\d+)i?")
        for name in functions:
            match = stage_re.fullmatch(name)
            if match is not None and int(match.group(1)) not in producers:
                self.emit(
                    "NAT004",
                    f"stage body {name!r} has no scratch buffer in the "
                    "driver",
                    self.fn_name,
                )
        dest_ctx = _ScratchCtx(
            consumer=(0, 0, 0, 0), producers=producers, raw=False
        )
        self.check_body(
            f"{self.fn_name}_halo", halo[1], full_x, full_y,
            scratch=dest_ctx,
        )
        if interior is not None:
            if interior_env is not None:
                x_iv, y_iv = interior_env
            else:
                x_iv, y_iv = full_x, full_y
            self.check_body(
                f"{self.fn_name}_interior",
                interior[1],
                x_iv,
                y_iv,
                scratch=_ScratchCtx(
                    consumer=(0, 0, 0, 0), producers=producers, raw=True
                ),
            )
        return self.diagnostics

    # -- entry -------------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        functions = _extract_functions(self.source)
        halo = functions.get(f"{self.fn_name}_halo")
        interior = functions.get(f"{self.fn_name}_interior")
        driver = functions.get(self.fn_name)
        if halo is None or driver is None:
            self.emit(
                "NAT004",
                f"source lacks the expected {self.fn_name!r} "
                "halo/driver functions",
                self.fn_name,
            )
            return self.diagnostics
        self.check_pointers(functions)
        if any(_N_TX_RE.match(line) for line in driver[1]):
            return self.run_tile2d(functions, driver[1])
        self._interior_env = None
        # Defaults in case the driver is too malformed to parse (it then
        # reports NAT004 and returns early): check both bodies over the
        # full plane, the widest sound assumption.
        self._full = (
            _Iv((_ZERO,), (_aff_add(self.width_aff, _aff_const(-1)),)),
            _Iv((_ZERO,), (_aff_add(self.height_aff, _aff_const(-1)),)),
        )
        self.check_driver(driver[1], has_interior=interior is not None)
        full_x, full_y = self._full
        # The halo body must be safe for every pixel of the plane: it
        # runs in the flanks, the non-interior rows, and — polymorphic —
        # wherever the runtime geometry shrinks the interior away.
        self.check_body(f"{self.fn_name}_halo", halo[1], full_x, full_y)
        if interior is not None:
            if self._interior_env is not None:
                x_iv, y_iv = self._interior_env
            else:
                x_iv, y_iv = full_x, full_y
            self.check_body(
                f"{self.fn_name}_interior", interior[1], x_iv, y_iv
            )
        return self.diagnostics


def check_native_source(
    source: str,
    fn_name: str,
    *,
    width: int,
    height: int,
    polymorphic: bool = False,
    images: Sequence[str] = (),
    output_name: Optional[str] = None,
    kernel: Optional[str] = None,
) -> List[Diagnostic]:
    """Statically check one lowered block's C source (NAT001–NAT004).

    ``source`` may be the block's standalone source or a concatenation
    containing it; only the ``fn_name`` family of functions is checked.
    ``width``/``height`` are the plan geometry (ignored for the bound
    proofs when ``polymorphic``, where the symbolic extents rule).
    """
    checker = _Checker(
        source,
        fn_name,
        width,
        height,
        polymorphic,
        images,
        output_name,
        kernel or fn_name,
    )
    return checker.run()


def verify_native_blocks(blocks) -> List[Diagnostic]:
    """Check every compiled ``NativeBlock`` in ``blocks``.

    ``blocks`` is an iterable of objects with ``spec`` / ``plan`` /
    ``output_name`` attributes (tape-fallback entries, which have no
    emitted C, should be filtered out by the caller).
    """
    diagnostics: List[Diagnostic] = []
    for block in blocks:
        spec = block.spec
        diagnostics.extend(
            check_native_source(
                spec.source,
                spec.fn_name,
                width=spec.width,
                height=spec.height,
                polymorphic=spec.polymorphic,
                images=spec.images,
                output_name=block.output_name,
                kernel=block.output_name,
            )
        )
    return diagnostics


def verify_native_plan(plan) -> List[Diagnostic]:
    """Check a ``NativePartitionPlan`` or ``NativeBlockPlan``.

    Tape-fallback blocks carry no native code and are skipped; a fully
    fallen-back plan therefore verifies vacuously (the tape interpreter
    indexes through NumPy, whose bounds are checked dynamically).
    """
    blocks = getattr(plan, "blocks", None)
    if blocks is not None:  # partition plan
        return verify_native_blocks(
            native for _plan, native in blocks if native is not None
        )
    native = getattr(plan, "native", None)
    return verify_native_blocks([native] if native is not None else [])

"""Native-codegen sanitizer: static memory-safety proofs over emitted C.

The native engine (:mod:`repro.backend.native_exec`) lowers each fused
block tape to one C loop nest and — under ``REPRO_VALIDATE=strict`` —
differentially verifies its *output* against the tape interpreter on
first execution.  That check sees values, not memory: an out-of-bounds
read that happens to land on plausible bytes, or an aliasing ``restrict``
violation that miscompiles only at higher optimization levels, can slip
through.  This module closes the gap **before first execution** by
parsing the emitted source and statically proving, for every array
subscript in every body variant and in the driver loops:

* the index is in the canonical row-major form ``Y * width + X``, and
* ``0 <= X <= width - 1`` and ``0 <= Y <= height - 1`` hold for all
  iterations, under the symbolic assumption ``width >= 1, height >= 1``
  for shape-polymorphic plans (runtime geometry formals) or the baked
  numeric extents for specialized plans.

Every buffer the driver is called with is one contiguous
``width x height`` ``float64`` plane (``NativeBlock._execute_native``
re-planes multi-channel images with ``ascontiguousarray``), so the
componentwise proof is exactly the allocation bound.  The proofs run
over a miniature C expression parser and an affine-interval domain
(``a*width + b*height + c`` bounds with min/max forms for the runtime
clamp ternaries), so no compiler or execution is needed — ``repro lint
--native`` works on hosts without a toolchain.

Diagnostics:

* **NAT001** — an index proven *outside* its plane for some iteration.
* **NAT002** — an index that cannot be proven inside (unknown form,
  unprovable bound).  Soundness over completeness: honest emissions are
  all provable, so NAT002 on real output is a codegen regression.
* **NAT003** — ``restrict`` pointer arguments that may alias (the block
  output appearing among its inputs), or a pointer parameter missing
  its ``restrict`` qualifier.
* **NAT004** — the source does not match the expected loop-nest shape
  (missing bodies/driver, a perturbed tile/row loop, a store outside
  the recognized pattern).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, diag

__all__ = [
    "check_native_source",
    "verify_native_blocks",
    "verify_native_plan",
]


# ---------------------------------------------------------------------------
# Affine bounds: a*width + b*height + c under width >= 1, height >= 1
# ---------------------------------------------------------------------------

Aff = Tuple[int, int, int]  # (width coeff, height coeff, constant)

_ZERO: Aff = (0, 0, 0)
_WIDTH: Aff = (1, 0, 0)
_HEIGHT: Aff = (0, 1, 0)


def _aff_const(c: int) -> Aff:
    return (0, 0, c)


def _aff_add(a: Aff, b: Aff) -> Aff:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def _aff_neg(a: Aff) -> Aff:
    return (-a[0], -a[1], -a[2])


def _aff_scale(a: Aff, k: int) -> Aff:
    return (a[0] * k, a[1] * k, a[2] * k)


def _prove_le(a: Aff, b: Aff) -> bool:
    """``a <= b`` for every ``width >= 1, height >= 1``."""
    dw, dh, dc = b[0] - a[0], b[1] - a[1], b[2] - a[2]
    return dw >= 0 and dh >= 0 and (dw + dh + dc) >= 0


@dataclass(frozen=True)
class _Iv:
    """An abstract integer: ``max(los) <= value <= min(his)``.

    Each side is a *set* of affine bounds (so the runtime clamp
    ternaries ``(a < b ? a : b)`` keep both candidates); an empty side
    is unbounded.  A bound is proven by any one member.
    """

    los: Tuple[Aff, ...] = ()
    his: Tuple[Aff, ...] = ()

    def ge_proven(self, bound: Aff) -> bool:
        return any(_prove_le(bound, m) for m in self.los)

    def le_proven(self, bound: Aff) -> bool:
        return any(_prove_le(m, bound) for m in self.his)


def _iv_point(a: Aff) -> _Iv:
    return _Iv((a,), (a,))


def _iv_add(a: _Iv, b: _Iv) -> _Iv:
    return _Iv(
        tuple(_aff_add(x, y) for x in a.los for y in b.los),
        tuple(_aff_add(x, y) for x in a.his for y in b.his),
    )


def _iv_neg(a: _Iv) -> _Iv:
    return _Iv(
        tuple(_aff_neg(m) for m in a.his),
        tuple(_aff_neg(m) for m in a.los),
    )


def _iv_scale(a: _Iv, k: int) -> _Iv:
    if k < 0:
        return _iv_scale(_iv_neg(a), -k)
    return _Iv(
        tuple(_aff_scale(m, k) for m in a.los),
        tuple(_aff_scale(m, k) for m in a.his),
    )


def _iv_join(a: _Iv, b: _Iv) -> _Iv:
    """Either branch of a ternary: keep bounds that cover both sides."""
    los = tuple(
        m
        for m in a.los + b.los
        if any(_prove_le(m, n) for n in a.los)
        and any(_prove_le(m, n) for n in b.los)
    )
    his = tuple(
        m
        for m in a.his + b.his
        if any(_prove_le(n, m) for n in a.his)
        and any(_prove_le(n, m) for n in b.his)
    )
    return _Iv(los, his)


_BOOL_IV = _Iv((_ZERO,), (_aff_const(1),))


def _iv_empty(iv: _Iv) -> bool:
    """Provably no integer satisfies the interval (``hi <= lo - 1``).

    Degenerate flank loops of margin-free blocks (``for (int x = 0;
    x < 0; ++x)``) never execute their store, so a store under a
    provably-empty range is vacuously safe.
    """
    return any(
        _prove_le(hi, _aff_add(lo, _aff_const(-1)))
        for lo in iv.los
        for hi in iv.his
    )


# ---------------------------------------------------------------------------
# A miniature C expression parser (integer index expressions only)
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(\d+)|([A-Za-z_][A-Za-z0-9_]*)"
    r"|(\|\||&&|<=|>=|==|!=|[-+*/%<>?:(),]))"
)


class _ParseError(Exception):
    pass


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise _ParseError(f"unexpected {remainder[:10]!r}")
        tokens.append(match.group(1) or match.group(2) or match.group(3))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser producing tuple ASTs.

    Nodes: ``("num", v)``, ``("id", name)``, ``("call", name, args)``,
    ``("neg", e)``, ``("bin", op, a, b)``, ``("cmp", op, a, b)``,
    ``("log", op, a, b)``, ``("tern", c, t, f)``.  Parentheses are
    transparent, so structural equality ignores grouping the emitter
    inserts.
    """

    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: Optional[str] = None) -> str:
        token = self.peek()
        if token is None or (expected is not None and token != expected):
            raise _ParseError(f"expected {expected!r}, got {token!r}")
        self.pos += 1
        return token

    def parse(self) -> tuple:
        node = self.ternary()
        if self.peek() is not None:
            raise _ParseError(f"trailing {self.peek()!r}")
        return node

    def ternary(self) -> tuple:
        cond = self.logical_or()
        if self.peek() == "?":
            self.take("?")
            if_true = self.ternary()
            self.take(":")
            if_false = self.ternary()
            return ("tern", cond, if_true, if_false)
        return cond

    def logical_or(self) -> tuple:
        node = self.logical_and()
        while self.peek() == "||":
            self.take("||")
            node = ("log", "||", node, self.logical_and())
        return node

    def logical_and(self) -> tuple:
        node = self.comparison()
        while self.peek() == "&&":
            self.take("&&")
            node = ("log", "&&", node, self.comparison())
        return node

    def comparison(self) -> tuple:
        node = self.additive()
        if self.peek() in ("<", "<=", ">", ">=", "==", "!="):
            op = self.take()
            node = ("cmp", op, node, self.additive())
        return node

    def additive(self) -> tuple:
        node = self.multiplicative()
        while self.peek() in ("+", "-"):
            op = self.take()
            node = ("bin", op, node, self.multiplicative())
        return node

    def multiplicative(self) -> tuple:
        node = self.unary()
        while self.peek() in ("*", "/", "%"):
            op = self.take()
            node = ("bin", op, node, self.unary())
        return node

    def unary(self) -> tuple:
        if self.peek() == "-":
            self.take("-")
            return ("neg", self.unary())
        return self.primary()

    def primary(self) -> tuple:
        token = self.peek()
        if token is None:
            raise _ParseError("unexpected end of expression")
        if token == "(":
            self.take("(")
            node = self.ternary()
            self.take(")")
            return node
        if token.isdigit():
            self.take()
            return ("num", int(token))
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            self.take()
            if self.peek() == "(":
                self.take("(")
                args: List[tuple] = []
                if self.peek() != ")":
                    args.append(self.ternary())
                    while self.peek() == ",":
                        self.take(",")
                        args.append(self.ternary())
                self.take(")")
                return ("call", token, tuple(args))
            return ("id", token)
        raise _ParseError(f"unexpected token {token!r}")


def _parse_expr(text: str) -> tuple:
    return _Parser(_tokenize(text)).parse()


# ---------------------------------------------------------------------------
# Abstract evaluation of index expressions
# ---------------------------------------------------------------------------

#: The boundary resolvers of the emitted preamble: each maps any input
#: index into ``[0, n - 1]``.
_RESOLVER_FNS = ("idx_clamp", "idx_mirror", "idx_repeat")


class _Eval:
    """Evaluates index ASTs to affine intervals.

    ``polymorphic`` decides whether the ``width``/``height`` identifiers
    are the symbolic plane extents; specialized sources carry numeric
    extents instead, and the symbols are unknown.
    """

    def __init__(self, polymorphic: bool):
        self.polymorphic = polymorphic

    def point(self, node: tuple) -> Optional[Aff]:
        """The exact affine value of a node, or ``None``."""
        kind = node[0]
        if kind == "num":
            return _aff_const(node[1])
        if kind == "id":
            if self.polymorphic and node[1] == "width":
                return _WIDTH
            if self.polymorphic and node[1] == "height":
                return _HEIGHT
            return None
        if kind == "neg":
            inner = self.point(node[1])
            return None if inner is None else _aff_neg(inner)
        if kind == "bin" and node[1] in ("+", "-"):
            a, b = self.point(node[2]), self.point(node[3])
            if a is None or b is None:
                return None
            return _aff_add(a, b if node[1] == "+" else _aff_neg(b))
        if kind == "bin" and node[1] == "*":
            a, b = self.point(node[2]), self.point(node[3])
            if a is None or b is None:
                return None
            if a[0] == a[1] == 0:
                return _aff_scale(b, a[2])
            if b[0] == b[1] == 0:
                return _aff_scale(a, b[2])
            return None
        return None

    def interval(self, node: tuple, env: Dict[str, _Iv]) -> Optional[_Iv]:
        kind = node[0]
        if kind == "num":
            return _iv_point(_aff_const(node[1]))
        if kind == "id":
            bound = env.get(node[1])
            if bound is not None:
                return bound
            point = self.point(node)
            return None if point is None else _iv_point(point)
        if kind == "neg":
            inner = self.interval(node[1], env)
            return None if inner is None else _iv_neg(inner)
        if kind == "bin":
            op = node[1]
            a = self.interval(node[2], env)
            b = self.interval(node[3], env)
            if a is None or b is None:
                return None
            if op == "+":
                return _iv_add(a, b)
            if op == "-":
                return _iv_add(a, _iv_neg(b))
            if op == "*":
                ka = self.point(node[2])
                kb = self.point(node[3])
                if ka is not None and ka[0] == ka[1] == 0:
                    return _iv_scale(b, ka[2])
                if kb is not None and kb[0] == kb[1] == 0:
                    return _iv_scale(a, kb[2])
                return None
            return None  # / and % never index in honest emissions
        if kind in ("cmp", "log"):
            return _BOOL_IV
        if kind == "tern":
            return self._ternary(node, env)
        if kind == "call":
            name, args = node[1], node[2]
            if name in _RESOLVER_FNS and len(args) == 2:
                extent = self.point(args[1])
                if extent is None:
                    return None
                return _Iv(
                    (_ZERO,), (_aff_add(extent, _aff_const(-1)),)
                )
            return None
        return None

    def _ternary(self, node: tuple, env: Dict[str, _Iv]) -> Optional[_Iv]:
        _, cond, if_true, if_false = node
        # The CONSTANT-mode guard: (A < 0 || A >= N) ? 0 : A  ->  [0, N-1]
        if (
            cond[0] == "log"
            and cond[1] == "||"
            and cond[2][0] == "cmp"
            and cond[2][1] == "<"
            and cond[2][3] == ("num", 0)
            and cond[3][0] == "cmp"
            and cond[3][1] == ">="
            and cond[2][2] == cond[3][2]
            and if_false == cond[2][2]
            and if_true == ("num", 0)
        ):
            extent = self.point(cond[3][3])
            if extent is not None:
                return _Iv((_ZERO,), (_aff_add(extent, _aff_const(-1)),))
        # Runtime clamps: (a < b ? a : b) == min, (a > b ? a : b) == max.
        if cond[0] == "cmp" and cond[1] in ("<", "<=", ">", ">="):
            lhs, rhs = cond[2], cond[3]
            a = self.interval(lhs, env)
            b = self.interval(rhs, env)
            if a is not None and b is not None:
                picks_min = cond[1] in ("<", "<=")
                if if_true == lhs and if_false == rhs:
                    return self._minmax(a, b, minimum=picks_min)
                if if_true == rhs and if_false == lhs:
                    return self._minmax(a, b, minimum=not picks_min)
        t = self.interval(if_true, env)
        f = self.interval(if_false, env)
        if t is None or f is None:
            return None
        return _iv_join(t, f)

    @staticmethod
    def _minmax(a: _Iv, b: _Iv, minimum: bool) -> _Iv:
        if minimum:
            # min(a, b) <= every upper bound of either side; its lower
            # bounds are those of one side that also bound the other.
            his = a.his + b.his
            los = tuple(
                m
                for m in a.los + b.los
                if any(_prove_le(m, n) for n in a.los)
                and any(_prove_le(m, n) for n in b.los)
            )
            return _Iv(los, his)
        los = a.los + b.los
        his = tuple(
            m
            for m in a.his + b.his
            if any(_prove_le(n, m) for n in a.his)
            and any(_prove_le(n, m) for n in b.his)
        )
        return _Iv(los, his)


# ---------------------------------------------------------------------------
# Source structure
# ---------------------------------------------------------------------------

_FN_HEADER_RE = re.compile(r"^(static double|void) (\w+)\((.*)\)$")
_INT_TEMP_RE = re.compile(r"^\s*const int (c\d+) = (.+);$")
_SUBSCRIPT_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\[")
_STORE_RE = re.compile(r"^\s*out\[(.+)\] = (\w+)\((.*)\);$")
_FOR_X_RE = re.compile(r"^\s*for \(int x = (.+); x < (.+); \+\+x\)\s*\{?$")
_GUARD_RE = re.compile(r"^\s*if \(y >= (\d+) && y < (.+)\) \{$")
_Y_END_RE = re.compile(
    r"^\s*const int y_end = \(t \+ 1\) \* (\d+) < (.+) "
    r"\? \(t \+ 1\) \* (\d+) : (.+);$"
)
_FOR_Y_RE = re.compile(r"^\s*for \(int y = t \* (\d+); y < y_end; \+\+y\) \{$")
_FOR_T_RE = re.compile(r"^\s*for \(int t = 0; t < n_tiles; \+\+t\) \{$")


def _extract_functions(source: str) -> Dict[str, Tuple[str, List[str]]]:
    """``name -> (arg text, body lines)`` for every function in the source."""
    lines = source.split("\n")
    functions: Dict[str, Tuple[str, List[str]]] = {}
    index = 0
    while index < len(lines):
        match = _FN_HEADER_RE.match(lines[index])
        if match is None or index + 1 >= len(lines) or lines[index + 1] != "{":
            index += 1
            continue
        name, args = match.group(2), match.group(3)
        body: List[str] = []
        depth = 1
        index += 2
        while index < len(lines) and depth > 0:
            line = lines[index]
            depth += line.count("{") - line.count("}")
            if depth > 0:
                body.append(line)
            index += 1
        functions[name] = (args, body)
    return functions


def _subscripts(line: str) -> List[Tuple[str, str]]:
    """``(buffer, index text)`` pairs for each subscript on a line."""
    found: List[Tuple[str, str]] = []
    for match in _SUBSCRIPT_RE.finditer(line):
        depth = 1
        start = match.end()
        pos = start
        while pos < len(line) and depth > 0:
            if line[pos] == "[":
                depth += 1
            elif line[pos] == "]":
                depth -= 1
            pos += 1
        if depth == 0:
            found.append((match.group(1), line[start : pos - 1]))
    return found


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


class _Checker:
    def __init__(
        self,
        source: str,
        fn_name: str,
        width: int,
        height: int,
        polymorphic: bool,
        images: Sequence[str],
        output_name: Optional[str],
        kernel: Optional[str],
    ):
        self.source = source
        self.fn_name = fn_name
        self.polymorphic = polymorphic
        self.images = tuple(images)
        self.output_name = output_name
        self.kernel = kernel
        self.evaluator = _Eval(polymorphic)
        self.width_aff = _WIDTH if polymorphic else _aff_const(width)
        self.height_aff = _HEIGHT if polymorphic else _aff_const(height)
        self.width_token = ("id", "width") if polymorphic else ("num", width)
        self.diagnostics: List[Diagnostic] = []

    def emit(self, code: str, message: str, path: str, **details) -> None:
        self.diagnostics.append(
            diag(code, message, kernel=self.kernel, path=path, **details)
        )

    # -- pointer discipline ----------------------------------------------

    def check_pointers(self, functions) -> None:
        if self.output_name is not None and self.output_name in self.images:
            self.emit(
                "NAT003",
                f"block output {self.output_name!r} is also an input "
                "plane: the restrict-qualified 'out' argument would "
                "alias an input pointer",
                self.fn_name,
                output=self.output_name,
            )
        for name, (args, _body) in functions.items():
            for arg in args.split(","):
                arg = arg.strip()
                if "*" in arg and not re.search(r"\brestrict\b", arg):
                    self.emit(
                        "NAT003",
                        f"pointer argument {arg!r} of {name!r} is not "
                        "restrict-qualified; the no-alias contract the "
                        "optimizer relies on is undeclared",
                        name,
                        argument=arg,
                    )

    # -- index proofs ------------------------------------------------------

    def check_index(self, text: str, env: Dict[str, _Iv], path: str) -> None:
        try:
            ast = _parse_expr(text)
        except _ParseError as err:
            self.emit(
                "NAT002",
                f"unparseable index expression {text!r} ({err})",
                path,
                index=text,
            )
            return
        if not (
            ast[0] == "bin"
            and ast[1] == "+"
            and ast[2][0] == "bin"
            and ast[2][1] == "*"
            and ast[2][3] == self.width_token
        ):
            self.emit(
                "NAT002",
                f"index {text!r} is not in row-major "
                "'Y * width + X' form; its plane bound cannot be "
                "checked componentwise",
                path,
                index=text,
            )
            return
        checks = (
            ("x", ast[3], self.width_aff),
            ("y", ast[2][2], self.height_aff),
        )
        for axis, node, extent in checks:
            interval = self.evaluator.interval(node, env)
            limit = _aff_add(extent, _aff_const(-1))
            if interval is None:
                self.emit(
                    "NAT002",
                    f"{axis}-component of index {text!r} has no "
                    "provable bounds",
                    path,
                    index=text,
                    axis=axis,
                )
                continue
            below = any(_prove_le(m, _aff_const(-1)) for m in interval.his)
            above = any(_prove_le(extent, m) for m in interval.los)
            if below or above:
                self.emit(
                    "NAT001",
                    f"{axis}-component of index {text!r} is proven "
                    f"{'negative' if below else 'past the plane extent'}",
                    path,
                    index=text,
                    axis=axis,
                )
                continue
            if not interval.ge_proven(_ZERO):
                self.emit(
                    "NAT002",
                    f"{axis}-component of index {text!r} cannot be "
                    "proven >= 0",
                    path,
                    index=text,
                    axis=axis,
                )
            if not interval.le_proven(limit):
                self.emit(
                    "NAT002",
                    f"{axis}-component of index {text!r} cannot be "
                    f"proven <= {axis}-extent - 1",
                    path,
                    index=text,
                    axis=axis,
                )

    def check_body(
        self, name: str, lines: List[str], x_iv: _Iv, y_iv: _Iv
    ) -> None:
        env: Dict[str, _Iv] = {"x": x_iv, "y": y_iv}
        for number, line in enumerate(lines):
            temp = _INT_TEMP_RE.match(line)
            if temp is not None:
                try:
                    value = self.evaluator.interval(
                        _parse_expr(temp.group(2)), env
                    )
                except _ParseError:
                    value = None
                env[temp.group(1)] = value if value is not None else _Iv()
            for buffer, index_text in _subscripts(line):
                self.check_index(index_text, env, f"{name}:{number + 1}")

    # -- driver structure --------------------------------------------------

    def check_driver(self, body: List[str], has_interior: bool) -> None:
        path = self.fn_name
        tile: Optional[int] = None
        height_token = "height" if self.polymorphic else None

        def is_height_token(text: str) -> bool:
            text = text.strip()
            point = None
            try:
                point = self.evaluator.point(_parse_expr(text))
            except _ParseError:
                return False
            return point == self.height_aff

        saw_t = saw_y = False
        for line in body:
            if _FOR_T_RE.match(line):
                saw_t = True
            match = _Y_END_RE.match(line)
            if match is not None:
                if (
                    match.group(1) == match.group(3)
                    and is_height_token(match.group(2))
                    and match.group(2) == match.group(4)
                ):
                    tile = int(match.group(1))
                else:
                    self.emit(
                        "NAT004",
                        "tile bound does not clamp y_end to the plane "
                        f"height: {line.strip()!r}",
                        path,
                        line=line.strip(),
                    )
            match = _FOR_Y_RE.match(line)
            if match is not None:
                saw_y = True
                if tile is None or int(match.group(1)) != tile:
                    self.emit(
                        "NAT004",
                        "row loop tile stride disagrees with the "
                        f"clamped y_end tile: {line.strip()!r}",
                        path,
                        line=line.strip(),
                    )
        if not (saw_t and saw_y and tile is not None):
            self.emit(
                "NAT004",
                "driver is missing the expected tile/row loop nest",
                path,
            )
            return

        # The clamped tile loop proves y in [0, height - 1]; the guard
        # (when present) narrows it for the branch it encloses.
        full_x = _Iv((_ZERO,), (_aff_add(self.width_aff, _aff_const(-1)),))
        full_y = _Iv((_ZERO,), (_aff_add(self.height_aff, _aff_const(-1)),))
        y_iv = full_y
        interior_env: Optional[Tuple[_Iv, _Iv]] = None
        stores = 0
        pending_x: Optional[_Iv] = None
        for number, line in enumerate(body):
            guard = _GUARD_RE.match(line)
            if guard is not None:
                try:
                    upper = self.evaluator.point(_parse_expr(guard.group(2)))
                except _ParseError:
                    upper = None
                if upper is None:
                    self.emit(
                        "NAT004",
                        f"unrecognized interior guard bound "
                        f"{guard.group(2)!r}",
                        path,
                        line=line.strip(),
                    )
                    upper = _aff_add(self.height_aff, _aff_const(0))
                y_iv = _Iv(
                    (_aff_const(int(guard.group(1))),),
                    full_y.his + (_aff_add(upper, _aff_const(-1)),),
                )
                continue
            if "} else {" in line:
                y_iv = full_y
                continue
            for_x = _FOR_X_RE.match(line)
            if for_x is not None:
                try:
                    init = self.evaluator.interval(
                        _parse_expr(for_x.group(1)), {}
                    )
                    bound = self.evaluator.interval(
                        _parse_expr(for_x.group(2)), {}
                    )
                except _ParseError:
                    init = bound = None
                if init is None or bound is None:
                    self.emit(
                        "NAT004",
                        f"unrecognized x-loop bounds: {line.strip()!r}",
                        path,
                        line=line.strip(),
                    )
                    pending_x = full_x
                else:
                    pending_x = _Iv(
                        init.los,
                        tuple(
                            _aff_add(m, _aff_const(-1)) for m in bound.his
                        ),
                    )
                continue
            store = _STORE_RE.match(line)
            if store is not None:
                stores += 1
                if pending_x is None:
                    self.emit(
                        "NAT004",
                        "store outside any x loop: " f"{line.strip()!r}",
                        path,
                        line=line.strip(),
                    )
                    x_iv = full_x
                else:
                    x_iv = pending_x
                if _iv_empty(x_iv) or _iv_empty(y_iv):
                    continue  # loop provably never executes this store
                env = {"x": x_iv, "y": y_iv}
                self.check_index(
                    store.group(1), env, f"{path}:{number + 1}"
                )
                called = store.group(2)
                if called == f"{self.fn_name}_interior":
                    interior_env = (x_iv, y_iv)
                elif called != f"{self.fn_name}_halo":
                    self.emit(
                        "NAT004",
                        f"store calls unknown body {called!r}",
                        path,
                        line=line.strip(),
                    )
                continue
            if line.strip().startswith("}"):
                pending_x = None
        if stores == 0:
            self.emit("NAT004", "driver stores no output pixels", path)
        if has_interior and interior_env is None:
            self.emit(
                "NAT004",
                "an interior body is emitted but the driver never "
                "calls it",
                path,
            )
        self._interior_env = interior_env
        self._full = (full_x, full_y)

    # -- entry -------------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        functions = _extract_functions(self.source)
        halo = functions.get(f"{self.fn_name}_halo")
        interior = functions.get(f"{self.fn_name}_interior")
        driver = functions.get(self.fn_name)
        if halo is None or driver is None:
            self.emit(
                "NAT004",
                f"source lacks the expected {self.fn_name!r} "
                "halo/driver functions",
                self.fn_name,
            )
            return self.diagnostics
        self.check_pointers(functions)
        self._interior_env = None
        # Defaults in case the driver is too malformed to parse (it then
        # reports NAT004 and returns early): check both bodies over the
        # full plane, the widest sound assumption.
        self._full = (
            _Iv((_ZERO,), (_aff_add(self.width_aff, _aff_const(-1)),)),
            _Iv((_ZERO,), (_aff_add(self.height_aff, _aff_const(-1)),)),
        )
        self.check_driver(driver[1], has_interior=interior is not None)
        full_x, full_y = self._full
        # The halo body must be safe for every pixel of the plane: it
        # runs in the flanks, the non-interior rows, and — polymorphic —
        # wherever the runtime geometry shrinks the interior away.
        self.check_body(f"{self.fn_name}_halo", halo[1], full_x, full_y)
        if interior is not None:
            if self._interior_env is not None:
                x_iv, y_iv = self._interior_env
            else:
                x_iv, y_iv = full_x, full_y
            self.check_body(
                f"{self.fn_name}_interior", interior[1], x_iv, y_iv
            )
        return self.diagnostics


def check_native_source(
    source: str,
    fn_name: str,
    *,
    width: int,
    height: int,
    polymorphic: bool = False,
    images: Sequence[str] = (),
    output_name: Optional[str] = None,
    kernel: Optional[str] = None,
) -> List[Diagnostic]:
    """Statically check one lowered block's C source (NAT001–NAT004).

    ``source`` may be the block's standalone source or a concatenation
    containing it; only the ``fn_name`` family of functions is checked.
    ``width``/``height`` are the plan geometry (ignored for the bound
    proofs when ``polymorphic``, where the symbolic extents rule).
    """
    checker = _Checker(
        source,
        fn_name,
        width,
        height,
        polymorphic,
        images,
        output_name,
        kernel or fn_name,
    )
    return checker.run()


def verify_native_blocks(blocks) -> List[Diagnostic]:
    """Check every compiled ``NativeBlock`` in ``blocks``.

    ``blocks`` is an iterable of objects with ``spec`` / ``plan`` /
    ``output_name`` attributes (tape-fallback entries, which have no
    emitted C, should be filtered out by the caller).
    """
    diagnostics: List[Diagnostic] = []
    for block in blocks:
        spec = block.spec
        diagnostics.extend(
            check_native_source(
                spec.source,
                spec.fn_name,
                width=spec.width,
                height=spec.height,
                polymorphic=spec.polymorphic,
                images=spec.images,
                output_name=block.output_name,
                kernel=block.output_name,
            )
        )
    return diagnostics


def verify_native_plan(plan) -> List[Diagnostic]:
    """Check a ``NativePartitionPlan`` or ``NativeBlockPlan``.

    Tape-fallback blocks carry no native code and are skipped; a fully
    fallen-back plan therefore verifies vacuously (the tape interpreter
    indexes through NumPy, whose bounds are checked dynamically).
    """
    blocks = getattr(plan, "blocks", None)
    if blocks is not None:  # partition plan
        return verify_native_blocks(
            native for _plan, native in blocks if native is not None
        )
    native = getattr(plan, "native", None)
    return verify_native_blocks([native] if native is not None else [])

"""Builder helpers for IR expressions.

These are thin, explicit constructors around the node classes so kernel
bodies read like ordinary math::

    from repro.ir import ops
    body = ops.sqrt(gx * gx + gy * gy)
"""

from __future__ import annotations

from repro.ir.expr import BinOp, Call, Cmp, Const, Expr, Select, UnOp, _wrap


def minimum(a: Expr | float, b: Expr | float) -> BinOp:
    """Elementwise minimum (ALU)."""
    return BinOp("min", _wrap(a), _wrap(b))


def maximum(a: Expr | float, b: Expr | float) -> BinOp:
    """Elementwise maximum (ALU)."""
    return BinOp("max", _wrap(a), _wrap(b))


def clamp(x: Expr | float, lo: Expr | float, hi: Expr | float) -> BinOp:
    """Clamp ``x`` into ``[lo, hi]`` (two ALU operations)."""
    return minimum(maximum(x, lo), hi)


def absolute(x: Expr | float) -> UnOp:
    """Absolute value (ALU)."""
    return UnOp("abs", _wrap(x))


def select(cond: Expr, if_true: Expr | float, if_false: Expr | float) -> Select:
    """Ternary select (ALU)."""
    return Select(cond, _wrap(if_true), _wrap(if_false))


def _unary_sfu(fn: str):
    def build(x: Expr | float) -> Call:
        return Call(fn, (_wrap(x),))

    build.__name__ = fn
    build.__doc__ = f"{fn}(x) on the special function units (SFU)."
    return build


exp = _unary_sfu("exp")
log = _unary_sfu("log")
sqrt = _unary_sfu("sqrt")
rsqrt = _unary_sfu("rsqrt")
sin = _unary_sfu("sin")
cos = _unary_sfu("cos")
tan = _unary_sfu("tan")
tanh = _unary_sfu("tanh")


def pow_(base: Expr | float, exponent: Expr | float) -> Call:
    """``base ** exponent`` on the SFUs."""
    return Call("pow", (_wrap(base), _wrap(exponent)))


def atan2(y: Expr | float, x: Expr | float) -> Call:
    """Two-argument arctangent on the SFUs."""
    return Call("atan2", (_wrap(y), _wrap(x)))


def eq(a: Expr | float, b: Expr | float) -> Cmp:
    """IR-level equality comparison (does not shadow dataclass ``__eq__``)."""
    return Cmp("eq", _wrap(a), _wrap(b))


def ne(a: Expr | float, b: Expr | float) -> Cmp:
    """IR-level inequality comparison."""
    return Cmp("ne", _wrap(a), _wrap(b))


def const(value: float) -> Const:
    """Explicit constant constructor."""
    return Const(value)

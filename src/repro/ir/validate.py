"""IR well-formedness checks.

Kernel construction validates its body once; backends may then assume a
well-formed tree.  Checks are structural only — type checking is not
needed because the execution model is scalar floating point (matching
the single-precision GPU kernels of the paper).
"""

from __future__ import annotations

import math

from repro.ir.expr import Const, Expr, InputAt, NODE_TYPES
from repro.ir.traversal import walk


class ValidationError(ValueError):
    """Raised when an expression tree is malformed."""


def validate(expr: Expr, max_radius: int = 64) -> None:
    """Validate an expression tree.

    Raises :class:`ValidationError` on the first problem found.
    ``max_radius`` bounds read offsets; a kernel reading further than
    this is almost certainly a construction bug (masks in the target
    domain are small).
    """
    for node in walk(expr):
        if not isinstance(node, NODE_TYPES):
            raise ValidationError(f"unknown node type: {type(node).__name__}")
        if isinstance(node, Const):
            if not isinstance(node.value, (int, float)):
                raise ValidationError(
                    f"constant must be numeric, got {type(node.value).__name__}"
                )
            if isinstance(node.value, float) and not math.isfinite(node.value):
                raise ValidationError(f"constant must be finite, got {node.value}")
        if isinstance(node, InputAt):
            if not isinstance(node.dx, int) or not isinstance(node.dy, int):
                raise ValidationError(
                    f"read offsets must be integers: {node.image}"
                    f"({node.dx!r}, {node.dy!r})"
                )
            if abs(node.dx) > max_radius or abs(node.dy) > max_radius:
                raise ValidationError(
                    f"read offset ({node.dx}, {node.dy}) of {node.image!r} "
                    f"exceeds the maximum radius {max_radius}"
                )
            if not node.image:
                raise ValidationError("image name must be non-empty")

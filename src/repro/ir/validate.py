"""IR well-formedness checks.

Kernel construction validates its body once; backends may then assume a
well-formed tree.  Checks are structural only — type checking is not
needed because the execution model is scalar floating point (matching
the single-precision GPU kernels of the paper).

Two entry points share one collect-all pass:

* :func:`collect_expr_diagnostics` walks the whole tree and returns
  every problem as a :class:`~repro.analysis.diagnostics.Diagnostic`
  (stable code, severity, expression path) — the pipeline lint of
  :mod:`repro.analysis.passes` builds on it;
* :func:`validate` keeps the historical raise-on-first-error contract
  (:class:`ValidationError`) but is reimplemented on the collect-all
  pass, so both report identical findings.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, diag
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    InputAt,
    NODE_TYPES,
    Select,
    UnOp,
)


class ValidationError(ValueError):
    """Raised when an expression tree is malformed."""


def named_children(expr: Expr) -> Tuple[Tuple[str, Expr], ...]:
    """Direct sub-expressions with their field names (for paths)."""
    if isinstance(expr, (BinOp, Cmp)):
        return (("lhs", expr.lhs), ("rhs", expr.rhs))
    if isinstance(expr, UnOp):
        return (("operand", expr.operand),)
    if isinstance(expr, Cast):
        return (("operand", expr.operand),)
    if isinstance(expr, Select):
        return (
            ("cond", expr.cond),
            ("if_true", expr.if_true),
            ("if_false", expr.if_false),
        )
    if isinstance(expr, Call):
        return tuple((f"args[{i}]", a) for i, a in enumerate(expr.args))
    return ()


def _walk_with_paths(expr: Expr) -> Iterator[Tuple[str, Expr]]:
    """Pre-order ``(path, node)`` pairs; iterative, unknown-node safe.

    Unknown node types are yielded but not descended into — the
    collector reports them instead of crashing the traversal.
    """
    stack: List[Tuple[str, Expr]] = [("body", expr)]
    while stack:
        path, node = stack.pop()
        yield path, node
        if isinstance(node, NODE_TYPES):
            for name, child in reversed(named_children(node)):
                stack.append((f"{path}.{name}", child))


def collect_expr_diagnostics(
    expr: Expr,
    max_radius: int = 64,
    kernel: Optional[str] = None,
) -> List[Diagnostic]:
    """Every well-formedness problem of one expression tree.

    ``max_radius`` bounds read offsets; a kernel reading further than
    this is almost certainly a construction bug (masks in the target
    domain are small).  ``kernel`` labels the diagnostics' location.
    """
    found: List[Diagnostic] = []
    for path, node in _walk_with_paths(expr):
        if not isinstance(node, NODE_TYPES):
            found.append(
                diag(
                    "IR001",
                    f"unknown node type: {type(node).__name__}",
                    kernel=kernel,
                    path=path,
                    node_type=type(node).__name__,
                )
            )
            continue
        if isinstance(node, Const):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                found.append(
                    diag(
                        "IR002",
                        "constant must be numeric, got "
                        f"{type(node.value).__name__}",
                        kernel=kernel,
                        path=path,
                        value=repr(node.value),
                    )
                )
            elif isinstance(node.value, float) and not math.isfinite(node.value):
                found.append(
                    diag(
                        "IR003",
                        f"constant must be finite, got {node.value}",
                        kernel=kernel,
                        path=path,
                        value=repr(node.value),
                    )
                )
        if isinstance(node, InputAt):
            if not isinstance(node.dx, int) or not isinstance(node.dy, int):
                found.append(
                    diag(
                        "IR004",
                        f"read offsets must be integers: {node.image}"
                        f"({node.dx!r}, {node.dy!r})",
                        kernel=kernel,
                        path=path,
                        image=node.image,
                        dx=repr(node.dx),
                        dy=repr(node.dy),
                    )
                )
            elif abs(node.dx) > max_radius or abs(node.dy) > max_radius:
                found.append(
                    diag(
                        "IR005",
                        f"read offset ({node.dx}, {node.dy}) of "
                        f"{node.image!r} exceeds the maximum radius "
                        f"{max_radius}",
                        kernel=kernel,
                        path=path,
                        image=node.image,
                        dx=node.dx,
                        dy=node.dy,
                        max_radius=max_radius,
                    )
                )
            if not node.image:
                found.append(
                    diag(
                        "IR006",
                        "image name must be non-empty",
                        kernel=kernel,
                        path=path,
                    )
                )
    return found


def validate(expr: Expr, max_radius: int = 64) -> None:
    """Validate an expression tree.

    Raises :class:`ValidationError` on the first problem found (by
    pre-order position).  Callers wanting the complete list use
    :func:`collect_expr_diagnostics` (or the richer pipeline lint in
    :mod:`repro.analysis.passes`) instead.
    """
    for diagnostic in collect_expr_diagnostics(expr, max_radius=max_radius):
        if diagnostic.severity is Severity.ERROR:
            raise ValidationError(diagnostic.message)

"""Expression simplification: constant folding and algebraic identities.

The paper lists "enlarging the scope for further optimizations such as
common sub-expression elimination" among fusion's secondary benefits
(the γ term of Eq. 12).  Flattened fused bodies are exactly where such
rewrites pay off: inlined producer bodies multiply constants together
and create foldable structure.  This module implements the classic
value-preserving rewrites:

* constant folding of all ALU/SFU operations,
* additive/multiplicative identities (``x+0``, ``x*1``, ``x*0``, ``x/1``),
* involutions (``--x``, ``|x|`` of ``|x|``),
* idempotent min/max and ``x - x``,
* branch elimination for constant-condition selects.

Rewrites never duplicate work and never change semantics: the property
suite checks ``evaluate(simplify(e)) == evaluate(e)`` on random
expressions and that operation counts never increase.

Division folding is deliberately conservative: ``0/x`` is *not* folded
(x may be 0 → NaN) and constant folding of ``a/0`` keeps the node.
"""

from __future__ import annotations

import math

from repro.ir.expr import (
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    Select,
    UnOp,
)
from repro.ir.traversal import transform

_FOLDABLE_BIN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "min": min,
    "max": max,
}

_FOLDABLE_CALL = {
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "tanh": math.tanh,
    "pow": math.pow,
    "atan2": math.atan2,
}

_CMP_FN = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


def _const(value: float) -> Const:
    return Const(float(value))


def _is_const(expr: Expr, value: float | None = None) -> bool:
    if not isinstance(expr, Const):
        return False
    return value is None or float(expr.value) == value


def _fold_binop(node: BinOp) -> Expr | None:
    lhs, rhs = node.lhs, node.rhs
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        if node.op in _FOLDABLE_BIN:
            folded = _FOLDABLE_BIN[node.op](float(lhs.value), float(rhs.value))
            if math.isfinite(folded):
                return _const(folded)
        if node.op == "div" and float(rhs.value) != 0.0:
            folded = float(lhs.value) / float(rhs.value)
            if math.isfinite(folded):
                return _const(folded)
        return None

    if node.op == "add":
        if _is_const(lhs, 0.0):
            return rhs
        if _is_const(rhs, 0.0):
            return lhs
    elif node.op == "sub":
        if _is_const(rhs, 0.0):
            return lhs
        if lhs == rhs:
            return _const(0.0)
    elif node.op == "mul":
        if _is_const(lhs, 1.0):
            return rhs
        if _is_const(rhs, 1.0):
            return lhs
        if _is_const(lhs, 0.0) or _is_const(rhs, 0.0):
            return _const(0.0)
    elif node.op == "div":
        if _is_const(rhs, 1.0):
            return lhs
    elif node.op in ("min", "max"):
        if lhs == rhs:
            return lhs
    return None


def _fold_unop(node: UnOp) -> Expr | None:
    operand = node.operand
    if isinstance(operand, Const):
        value = float(operand.value)
        return _const(-value if node.op == "neg" else abs(value))
    if node.op == "neg" and isinstance(operand, UnOp) and operand.op == "neg":
        return operand.operand
    if node.op == "abs" and isinstance(operand, UnOp) and operand.op == "abs":
        return operand
    return None


def _fold_call(node: Call) -> Expr | None:
    if not all(isinstance(a, Const) for a in node.args):
        # pow(x, 1) == x
        if node.fn == "pow" and _is_const(node.args[1], 1.0):
            return node.args[0]
        return None
    values = [float(a.value) for a in node.args]
    try:
        folded = _FOLDABLE_CALL[node.fn](*values)
    except (ValueError, ZeroDivisionError, OverflowError):
        return None
    if not math.isfinite(folded):
        return None
    return _const(folded)


def _fold_cmp(node: Cmp) -> Expr | None:
    if isinstance(node.lhs, Const) and isinstance(node.rhs, Const):
        result = _CMP_FN[node.op](float(node.lhs.value), float(node.rhs.value))
        return _const(1.0 if result else 0.0)
    return None


def _fold_select(node: Select) -> Expr | None:
    if isinstance(node.cond, Const):
        return node.if_true if float(node.cond.value) != 0.0 else node.if_false
    if node.if_true == node.if_false:
        return node.if_true
    return None


def simplify_once(expr: Expr) -> Expr:
    """One bottom-up simplification pass."""

    def rewrite(node: Expr) -> Expr | None:
        if isinstance(node, BinOp):
            return _fold_binop(node)
        if isinstance(node, UnOp):
            return _fold_unop(node)
        if isinstance(node, Call):
            return _fold_call(node)
        if isinstance(node, Cmp):
            return _fold_cmp(node)
        if isinstance(node, Select):
            return _fold_select(node)
        return None

    return transform(expr, rewrite)


def simplify(expr: Expr, max_passes: int = 8) -> Expr:
    """Simplify to a fixpoint (bounded number of passes).

    A single bottom-up pass handles almost everything; a second pass
    catches rewrites enabled by the first (e.g. an identity exposing a
    constant pair).  The bound exists purely as a safety net.
    """
    current = expr
    for _ in range(max_passes):
        rewritten = simplify_once(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current

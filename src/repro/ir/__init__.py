"""Expression IR for kernel bodies.

Every kernel in the pipeline DAG carries a single expression tree that
computes one output pixel from reads of its input images.  The IR is
deliberately small: image processing point/local operators (the compute
patterns targeted by the paper) are pure per-pixel functions of a bounded
window of input pixels, so a side-effect-free expression language suffices.

The IR serves four consumers:

* the compute-pattern classifier (``repro.model.patterns``) inspects the
  set of :class:`InputAt` offsets to decide point vs. local,
* the cost model (``repro.ir.cost``) counts ALU and SFU operations to feed
  the paper's Eq. (6),
* the fusion engine (``repro.fusion.fuser``) inlines producer bodies into
  consumer bodies by substituting :class:`InputAt` nodes,
* the backends (``repro.backend``) evaluate expressions over NumPy arrays
  or pretty-print them as CUDA C.
"""

from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    InputAt,
    Param,
    Select,
    UnOp,
    ALU_BINARY_OPS,
    ALU_UNARY_OPS,
    CMP_OPS,
    SFU_FUNCTIONS,
)
from repro.ir.ops import (
    absolute,
    atan2,
    clamp,
    cos,
    exp,
    log,
    maximum,
    minimum,
    pow_,
    rsqrt,
    select,
    sin,
    sqrt,
    tanh,
)
from repro.ir.cost import OpCounts, count_ops
from repro.ir.printer import to_source
from repro.ir.signature import expr_signature
from repro.ir.simplify import simplify, simplify_once
from repro.ir.traversal import (
    expr_equal,
    inputs_of,
    input_extent,
    shift_offsets,
    substitute_inputs,
    transform,
    walk,
)
from repro.ir.validate import ValidationError, validate

__all__ = [
    "ALU_BINARY_OPS",
    "ALU_UNARY_OPS",
    "BinOp",
    "CMP_OPS",
    "Call",
    "Cast",
    "Cmp",
    "Const",
    "Expr",
    "InputAt",
    "OpCounts",
    "Param",
    "SFU_FUNCTIONS",
    "Select",
    "UnOp",
    "ValidationError",
    "absolute",
    "atan2",
    "clamp",
    "cos",
    "count_ops",
    "exp",
    "expr_equal",
    "expr_signature",
    "input_extent",
    "inputs_of",
    "log",
    "maximum",
    "minimum",
    "pow_",
    "rsqrt",
    "select",
    "shift_offsets",
    "simplify",
    "simplify_once",
    "sin",
    "sqrt",
    "substitute_inputs",
    "tanh",
    "to_source",
    "transform",
    "validate",
    "walk",
]

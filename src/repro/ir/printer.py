"""Expression pretty printer.

Produces C-like source text used both for debugging and by the CUDA
source generator (:mod:`repro.backend.codegen_cuda`).
"""

from __future__ import annotations

from typing import Callable

from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    InputAt,
    Param,
    Select,
    UnOp,
)

_BIN_SYMBOL = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "mod": "%",
}

_CMP_SYMBOL = {
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "eq": "==",
    "ne": "!=",
}


def _default_read(image: str, dx: int, dy: int) -> str:
    if dx == 0 and dy == 0:
        return f"{image}(x, y)"
    return f"{image}(x + {dx}, y + {dy})"


def to_source(
    expr: Expr,
    read_fn: Callable[[str, int, int], str] | None = None,
) -> str:
    """Render ``expr`` as C-like source.

    ``read_fn`` customizes how an image read is printed; the CUDA backend
    uses it to emit bounds-checked global or shared-memory accesses.
    """
    read = read_fn or _default_read

    def render(node: Expr) -> str:
        if isinstance(node, Const):
            value = node.value
            if isinstance(value, float) and value.is_integer():
                return f"{value:.1f}"
            return repr(value)
        if isinstance(node, Param):
            return node.name
        if isinstance(node, InputAt):
            return read(node.image, node.dx, node.dy)
        if isinstance(node, BinOp):
            if node.op in ("min", "max"):
                return f"{node.op}({render(node.lhs)}, {render(node.rhs)})"
            return f"({render(node.lhs)} {_BIN_SYMBOL[node.op]} {render(node.rhs)})"
        if isinstance(node, UnOp):
            if node.op == "neg":
                return f"(-{render(node.operand)})"
            return f"fabs({render(node.operand)})"
        if isinstance(node, Cmp):
            return f"({render(node.lhs)} {_CMP_SYMBOL[node.op]} {render(node.rhs)})"
        if isinstance(node, Select):
            return (
                f"({render(node.cond)} ? {render(node.if_true)}"
                f" : {render(node.if_false)})"
            )
        if isinstance(node, Call):
            args = ", ".join(render(a) for a in node.args)
            return f"{node.fn}({args})"
        if isinstance(node, Cast):
            return f"({node.dtype})({render(node.operand)})"
        raise TypeError(f"not an IR node: {node!r}")

    return render(expr)

"""IR node definitions.

All nodes are immutable dataclasses.  Expressions are built either
directly or through the operator-overloading helpers (``a + b`` works on
any :class:`Expr`), and through the math functions in :mod:`repro.ir.ops`.

Operation cost classes mirror the paper's hardware model (Section II-C):

* **ALU** operations (additions, multiplications, comparisons, selects,
  ...) cost ``c_ALU`` cycles each,
* **SFU** operations (transcendental functions executed on the special
  function units) cost ``c_SFU`` cycles each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Binary operators executed on the ALUs.
ALU_BINARY_OPS = frozenset({"add", "sub", "mul", "div", "mod", "min", "max"})

#: Unary operators executed on the ALUs.
ALU_UNARY_OPS = frozenset({"neg", "abs"})

#: Comparison operators (ALU class).
CMP_OPS = frozenset({"lt", "le", "gt", "ge", "eq", "ne"})

#: Functions executed on the special function units.  ``pow`` and
#: ``atan2`` are binary; the rest are unary.
SFU_FUNCTIONS = frozenset(
    {"exp", "log", "sqrt", "rsqrt", "sin", "cos", "tan", "tanh", "pow", "atan2"}
)

#: Arity of every SFU function.
SFU_ARITY = {name: (2 if name in {"pow", "atan2"} else 1) for name in SFU_FUNCTIONS}


class Expr:
    """Base class of all IR nodes.

    Provides operator overloading so kernel bodies read like arithmetic.
    Subclasses are frozen dataclasses; instances are safe to share between
    kernels (fusion never mutates, it rebuilds).
    """

    __slots__ = ()

    # -- arithmetic sugar -------------------------------------------------

    def __add__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("add", self, _wrap(other))

    def __radd__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("add", _wrap(other), self)

    def __sub__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("sub", self, _wrap(other))

    def __rsub__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("sub", _wrap(other), self)

    def __mul__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("mul", self, _wrap(other))

    def __rmul__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("mul", _wrap(other), self)

    def __truediv__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("div", self, _wrap(other))

    def __rtruediv__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("div", _wrap(other), self)

    def __mod__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("mod", self, _wrap(other))

    def __neg__(self) -> "UnOp":
        return UnOp("neg", self)

    def __abs__(self) -> "UnOp":
        return UnOp("abs", self)

    # -- comparison sugar (returns Cmp nodes, NOT booleans) ---------------
    # NOTE: __eq__ is left as identity/structural equality on the dataclass;
    # use ``repro.ir.ops`` comparison helpers or Cmp directly for IR-level
    # comparisons so that dict/set behaviour of nodes stays sane.

    def __lt__(self, other: "Expr | float | int") -> "Cmp":
        return Cmp("lt", self, _wrap(other))

    def __le__(self, other: "Expr | float | int") -> "Cmp":
        return Cmp("le", self, _wrap(other))

    def __gt__(self, other: "Expr | float | int") -> "Cmp":
        return Cmp("gt", self, _wrap(other))

    def __ge__(self, other: "Expr | float | int") -> "Cmp":
        return Cmp("ge", self, _wrap(other))


def _wrap(value: "Expr | float | int") -> "Expr":
    """Coerce Python scalars to :class:`Const` nodes."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot use {type(value).__name__} as an IR operand")


@dataclass(frozen=True)
class Const(Expr):
    """A compile-time scalar constant."""

    value: float

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class Param(Expr):
    """A named runtime scalar parameter (e.g. a threshold or gain).

    Parameters are bound at execution time through the parameter
    environment of :func:`repro.backend.numpy_exec.execute_kernel`.
    """

    name: str


@dataclass(frozen=True)
class InputAt(Expr):
    """Read one pixel of an input image at a constant offset.

    ``image`` names the accessed image; ``dx``/``dy`` are the offsets
    relative to the output coordinate of the kernel.  A point operator
    reads only ``(0, 0)``; a local operator reads a bounded window of
    offsets.  Boundary handling is *not* part of the node: it is a
    property of the kernel's accessor for ``image``
    (:class:`repro.dsl.kernel.Accessor`), because the same expression is
    reused in fused kernels where two-stage boundary resolution applies.
    """

    image: str
    dx: int = 0
    dy: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InputAt({self.image!r}, {self.dx}, {self.dy})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary ALU operation."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ALU_BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary ALU operation."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ALU_UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")


@dataclass(frozen=True)
class Cmp(Expr):
    """A comparison; evaluates to 1.0 / 0.0 in the NumPy backend."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise ValueError(f"unknown comparison op {self.op!r}")


@dataclass(frozen=True)
class Select(Expr):
    """Ternary select: ``cond ? if_true : if_false`` (ALU class)."""

    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A call to a special-function-unit function (``exp``, ``sqrt``, ...)."""

    fn: str
    args: Tuple[Expr, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.fn not in SFU_FUNCTIONS:
            raise ValueError(f"unknown SFU function {self.fn!r}")
        expected = SFU_ARITY[self.fn]
        if len(self.args) != expected:
            raise ValueError(
                f"{self.fn} expects {expected} argument(s), got {len(self.args)}"
            )


@dataclass(frozen=True)
class Cast(Expr):
    """A type cast; counted as one ALU operation.

    ``dtype`` is a NumPy-style dtype string (``"float32"``, ``"uint8"``).
    """

    dtype: str
    operand: Expr


#: All concrete node classes, used by the validator.
NODE_TYPES = (Const, Param, InputAt, BinOp, UnOp, Cmp, Select, Call, Cast)

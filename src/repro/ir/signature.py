"""Structural signatures of IR expressions.

The serving runtime (:mod:`repro.serve`) caches compiled plans across
*separately built* pipelines: two clients that each call
``harris.build_pipeline()`` must land on the same cache entry even
though every ``Expr`` object differs by identity.  That requires a
signature that depends only on *structure* — operators, constants,
read offsets — never on object identity or insertion order.

:func:`expr_signature` flattens an expression DAG into a value-numbered
tuple of node descriptors: identical subcomputations — whether
physically shared or built as separate copies — collapse to one slot
and are referenced by index afterwards (the same discipline as
:mod:`repro.ir.cse` and the tape compiler's value numbering).  Two
expressions computing the same thing produce identical signatures
regardless of how their construction code shared nodes; changing any
constant, operator, offset, or image name changes the signature.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    InputAt,
    Param,
    Select,
    UnOp,
)

#: One node descriptor: an op tag plus immediates and child slot indices.
NodeSig = Tuple
#: A whole-expression signature: descriptors in first-visit order.
ExprSig = Tuple[NodeSig, ...]


def expr_signature(root: Expr) -> ExprSig:
    """The value-numbered structural signature of ``root``.

    The walk is iterative (explicit stack), so deeply fused bodies do
    not consume Python stack frames.  Slots are assigned by descriptor,
    not by object identity: a physically shared subtree and two
    structurally equal copies produce the same signature (identity only
    short-circuits re-walking shared nodes).
    """
    nodes: List[NodeSig] = []
    slot_of: Dict[int, int] = {}
    slot_by_descriptor: Dict[NodeSig, int] = {}
    # Post-order via (node, visited) stack entries: children are
    # assigned slots before their parent emits its descriptor.
    stack: List[Tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, visited = stack.pop()
        if id(node) in slot_of:
            continue
        if not visited:
            stack.append((node, True))
            for child in reversed(_children(node)):
                if id(child) not in slot_of:
                    stack.append((child, False))
            continue
        refs = tuple(slot_of[id(child)] for child in _children(node))
        descriptor = _descriptor(node, refs)
        slot = slot_by_descriptor.get(descriptor)
        if slot is None:
            nodes.append(descriptor)
            slot = len(nodes) - 1
            slot_by_descriptor[descriptor] = slot
        slot_of[id(node)] = slot
    return tuple(nodes)


def _children(node: Expr) -> Tuple[Expr, ...]:
    if isinstance(node, BinOp):
        return (node.lhs, node.rhs)
    if isinstance(node, UnOp):
        return (node.operand,)
    if isinstance(node, Cmp):
        return (node.lhs, node.rhs)
    if isinstance(node, Select):
        return (node.cond, node.if_true, node.if_false)
    if isinstance(node, Call):
        return tuple(node.args)
    if isinstance(node, Cast):
        return (node.operand,)
    return ()


def _descriptor(node: Expr, refs: Tuple[int, ...]) -> NodeSig:
    if isinstance(node, Const):
        return ("const", float(node.value))
    if isinstance(node, Param):
        return ("param", node.name)
    if isinstance(node, InputAt):
        return ("input", node.image, node.dx, node.dy)
    if isinstance(node, BinOp):
        return ("bin", node.op) + refs
    if isinstance(node, UnOp):
        return ("un", node.op) + refs
    if isinstance(node, Cmp):
        return ("cmp", node.op) + refs
    if isinstance(node, Select):
        return ("select",) + refs
    if isinstance(node, Call):
        return ("call", node.fn) + refs
    if isinstance(node, Cast):
        return ("cast", node.dtype) + refs
    raise TypeError(f"cannot sign node {type(node).__name__}")

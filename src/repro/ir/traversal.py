"""Generic traversals and rewrites over the expression IR.

The fusion engine relies on two primitives defined here:

* :func:`substitute_inputs` — replace reads of an intermediate image by an
  arbitrary expression produced per read site.  This is how a producer
  kernel body is inlined into its consumer.
* :func:`shift_offsets` — translate every read of a kernel body by a
  constant offset, used when a local consumer asks for the producer value
  at a neighbouring pixel.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Set, Tuple

from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    InputAt,
    Param,
    Select,
    UnOp,
)

Offset = Tuple[int, int]


def children(expr: Expr) -> Tuple[Expr, ...]:
    """Return the direct sub-expressions of a node."""
    if isinstance(expr, (Const, Param, InputAt)):
        return ()
    if isinstance(expr, (BinOp, Cmp)):
        return (expr.lhs, expr.rhs)
    if isinstance(expr, UnOp):
        return (expr.operand,)
    if isinstance(expr, Cast):
        return (expr.operand,)
    if isinstance(expr, Select):
        return (expr.cond, expr.if_true, expr.if_false)
    if isinstance(expr, Call):
        return expr.args
    raise TypeError(f"not an IR node: {expr!r}")


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield every node of the tree, pre-order, iteratively.

    Iterative so that the deep expressions produced by repeated inlining
    during local-to-local fusion do not hit the recursion limit.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def rebuild(expr: Expr, new_children: Tuple[Expr, ...]) -> Expr:
    """Reconstruct ``expr`` with replacement children."""
    if isinstance(expr, (Const, Param, InputAt)):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, new_children[0], new_children[1])
    if isinstance(expr, Cmp):
        return Cmp(expr.op, new_children[0], new_children[1])
    if isinstance(expr, UnOp):
        return UnOp(expr.op, new_children[0])
    if isinstance(expr, Cast):
        return Cast(expr.dtype, new_children[0])
    if isinstance(expr, Select):
        return Select(new_children[0], new_children[1], new_children[2])
    if isinstance(expr, Call):
        return Call(expr.fn, tuple(new_children))
    raise TypeError(f"not an IR node: {expr!r}")


def transform(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rewrite.

    ``fn`` is applied to every node after its children were rewritten; it
    returns a replacement node or ``None`` to keep the (rebuilt) node.
    The rewrite is iterative (explicit stack) and shares unchanged
    subtrees.
    """
    # Post-order over an explicit stack: (node, visited_flag).
    result: Dict[int, Expr] = {}
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if visited:
            kids = children(node)
            new_kids = tuple(result[id(k)] for k in kids)
            rebuilt = node if all(a is b for a, b in zip(kids, new_kids)) else rebuild(
                node, new_kids
            )
            replaced = fn(rebuilt)
            result[id(node)] = rebuilt if replaced is None else replaced
        else:
            stack.append((node, True))
            for child in children(node):
                stack.append((child, False))
    return result[id(expr)]


def substitute_inputs(
    expr: Expr, mapping: Dict[str, Callable[[int, int], Expr]]
) -> Expr:
    """Replace reads of selected images.

    ``mapping`` maps an image name to a builder receiving the read offset
    ``(dx, dy)`` and returning the replacement expression.  Reads of
    images not present in ``mapping`` are left untouched.
    """

    def rewrite(node: Expr) -> Expr | None:
        if isinstance(node, InputAt) and node.image in mapping:
            return mapping[node.image](node.dx, node.dy)
        return None

    return transform(expr, rewrite)


def shift_offsets(expr: Expr, dx: int, dy: int) -> Expr:
    """Translate every image read of ``expr`` by ``(dx, dy)``."""
    if dx == 0 and dy == 0:
        return expr

    def rewrite(node: Expr) -> Expr | None:
        if isinstance(node, InputAt):
            return InputAt(node.image, node.dx + dx, node.dy + dy)
        return None

    return transform(expr, rewrite)


def inputs_of(expr: Expr) -> Dict[str, Set[Offset]]:
    """Collect, per accessed image, the set of read offsets."""
    reads: Dict[str, Set[Offset]] = {}
    for node in walk(expr):
        if isinstance(node, InputAt):
            reads.setdefault(node.image, set()).add((node.dx, node.dy))
    return reads


def params_of(expr: Expr) -> Set[str]:
    """Collect the names of all runtime parameters referenced."""
    return {node.name for node in walk(expr) if isinstance(node, Param)}


def input_extent(expr: Expr) -> Tuple[int, int]:
    """Radius of the read window in x and y across *all* images.

    Returns ``(rx, ry)`` such that every read offset satisfies
    ``|dx| <= rx`` and ``|dy| <= ry``.  A point operator has extent
    ``(0, 0)``.
    """
    rx = ry = 0
    for offsets in inputs_of(expr).values():
        for dx, dy in offsets:
            rx = max(rx, abs(dx))
            ry = max(ry, abs(dy))
    return rx, ry


def expr_equal(a: Expr, b: Expr) -> bool:
    """Structural equality (dataclass equality is structural already)."""
    return a == b


def count_nodes(expr: Expr) -> int:
    """Total number of nodes in the tree (diagnostics / tests)."""
    return sum(1 for _ in walk(expr))

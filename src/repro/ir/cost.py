"""Operation counting for the benefit model.

The paper's Eq. (6) estimates the arithmetic cost of a producer kernel as

    cost_op = c_ALU * n_ALU + c_SFU * n_SFU

This module computes ``n_ALU`` and ``n_SFU`` for an expression tree.
ALU operations are arithmetic/compare/select/cast nodes; SFU operations
are calls to transcendental functions.  Reads (:class:`InputAt`),
constants and parameters are free here — memory cost is accounted for
separately by the locality terms of the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.expr import BinOp, Call, Cast, Cmp, Expr, Select, UnOp
from repro.ir.traversal import walk


@dataclass(frozen=True)
class OpCounts:
    """Number of ALU and SFU operations of a kernel body."""

    alu: int = 0
    sfu: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(self.alu + other.alu, self.sfu + other.sfu)

    def scaled(self, factor: int) -> "OpCounts":
        """Counts after executing the body ``factor`` times."""
        return OpCounts(self.alu * factor, self.sfu * factor)

    def cycles(self, c_alu: float, c_sfu: float) -> float:
        """Eq. (6): total cycles at the given per-op costs."""
        return c_alu * self.alu + c_sfu * self.sfu

    @property
    def total(self) -> int:
        return self.alu + self.sfu


def count_ops(expr: Expr, cse: bool = True) -> OpCounts:
    """Count ALU and SFU operations in an expression.

    With ``cse=True`` (the default) structurally identical
    subexpressions are counted **once**: the generated GPU code keeps
    each computed value in a register and reuses it, so e.g. a point
    producer inlined at the same offset into many consumer sites costs
    one evaluation (this is exactly why the point-based scenario of
    Eq. 5 has no recomputation term).  Producer bodies inlined at
    *different* offsets are structurally distinct and still count per
    copy — the redundant computation φ of Eq. (7)/(10) is preserved.

    ``cse=False`` counts every node of the tree (the cost of the code
    with no value reuse at all).
    """
    alu = 0
    sfu = 0
    seen: set[Expr] | None = set() if cse else None
    for node in walk(expr):
        if seen is not None:
            if node in seen:
                continue
            seen.add(node)
        if isinstance(node, (BinOp, UnOp, Cmp, Select, Cast)):
            alu += 1
        elif isinstance(node, Call):
            sfu += 1
    return OpCounts(alu=alu, sfu=sfu)

"""Common subexpression elimination into let-bindings.

Fusion enlarges kernel bodies and therefore the scope for CSE — one of
the secondary benefits the paper credits to kernel fusion.  The most
important instance is built into the cost model already (a point
producer inlined at the same offset many times is priced once, see
:func:`repro.ir.cost.count_ops`); this module makes the reuse explicit
for *code generation*: repeated subtrees are hoisted into temporaries,
so the emitted CUDA assigns the producer value to a register once and
reuses it, exactly like hand-written fused kernels.

The scheduled form is a sequence of bindings ``(_t0, expr0)``,
``(_t1, expr1[_t0])``, ... plus a root expression; temporaries are
referenced through :class:`~repro.ir.expr.Param` nodes with reserved
``_t<i>`` names (the DSL forbids user parameters starting with an
underscore only by convention; the validator of scheduled forms checks
for collisions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ir.cost import count_ops
from repro.ir.expr import Expr, Param
from repro.ir.traversal import count_nodes, params_of, transform, walk

#: Reserved prefix of CSE temporaries.
TEMP_PREFIX = "_t"


@dataclass(frozen=True)
class Scheduled:
    """A let-scheduled expression: bindings in dependency order + root."""

    bindings: Tuple[Tuple[str, Expr], ...]
    root: Expr

    @property
    def temp_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.bindings)

    def total_ops(self) -> int:
        """Operations actually executed (each binding evaluated once)."""
        total = count_ops(self.root).total
        for _, expr in self.bindings:
            total += count_ops(expr).total
        return total


def _occurrence_counts(expr: Expr) -> Dict[Expr, int]:
    counts: Dict[Expr, int] = {}
    for node in walk(expr):
        counts[node] = counts.get(node, 0) + 1
    return counts


def eliminate_common_subexpressions(
    expr: Expr,
    min_occurrences: int = 2,
    min_ops: int = 1,
) -> Scheduled:
    """Hoist repeated subtrees into temporaries.

    A subtree qualifies when it appears at least ``min_occurrences``
    times and contains at least ``min_ops`` operations (hoisting a bare
    read or constant buys nothing).  Candidates are processed smallest
    first so that nested redundancy factors correctly: an inner shared
    subtree becomes a temp, making outer occurrences structurally equal
    in turn.
    """
    for name in params_of(expr):
        if name.startswith(TEMP_PREFIX):
            raise ValueError(
                f"expression already uses reserved parameter {name!r}"
            )

    bindings: List[Tuple[str, Expr]] = []
    current = expr

    while True:
        counts = _occurrence_counts(current)
        candidates = [
            node
            for node, occurrences in counts.items()
            if occurrences >= min_occurrences
            and count_ops(node).total >= min_ops
            and not isinstance(node, Param)
        ]
        if not candidates:
            break
        # Smallest qualifying subtree first: inner sharing surfaces
        # before outer sharing.
        target = min(candidates, key=count_nodes)
        temp = Param(f"{TEMP_PREFIX}{len(bindings)}")
        bindings.append((temp.name, target))
        current = transform(
            current, lambda node: temp if node == target else None
        )
        # Rewrite pending binding bodies too, so later temps reuse
        # earlier ones -- but only *later* bindings may reference
        # earlier names (the target itself never contains the new temp).

    return Scheduled(tuple(bindings), current)


def inline_schedule(scheduled: Scheduled) -> Expr:
    """Undo the scheduling: substitute every temporary back.

    Used by the tests to check semantic equivalence.
    """
    env: Dict[str, Expr] = {}
    for name, body in scheduled.bindings:
        resolved = transform(
            body,
            lambda node: env.get(node.name)
            if isinstance(node, Param) and node.name in env
            else None,
        )
        env[name] = resolved
    return transform(
        scheduled.root,
        lambda node: env.get(node.name)
        if isinstance(node, Param) and node.name in env
        else None,
    )

"""Shared masks and small expression helpers for the applications."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dsl.mask import Mask
from repro.ir.expr import Const, Expr

#: Sobel / derivative masks (x and y direction).
SOBEL_X = Mask([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]])
SOBEL_Y = Mask([[-1, -2, -1], [0, 0, 0], [1, 2, 1]])

#: Normalized 3x3 binomial (Gaussian) blur.
GAUSS3 = Mask(np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=float) / 16.0)

#: Unnormalized 3x3 binomial mask — the exact mask of the paper's
#: Fig. 4 worked example (intermediate values 82/98/93..., result 992).
GAUSS3_UNNORM = Mask([[1, 2, 1], [2, 4, 2], [1, 2, 1]])

#: Normalized 5x5 Gaussian.
GAUSS5 = Mask.gaussian(2)


def atrous_taps(level: int) -> Sequence[tuple[int, int]]:
    """Tap offsets of the à-trous (with holes) wavelet at ``level``.

    Level 0 is a dense 3x3 neighbourhood; level 1 spreads the same nine
    taps over a 5x5 window with holes (spacing 2) — the paper's Night
    filter applies the algorithm twice (3x3, then 5x5).
    """
    spacing = 2**level
    return [
        (dx * spacing, dy * spacing)
        for dy in (-1, 0, 1)
        for dx in (-1, 0, 1)
    ]


def polynomial(x: Expr, coefficients: Sequence[float]) -> Expr:
    """Horner-evaluated polynomial ``c0 + x*(c1 + x*(...))``.

    Used to build the compute-heavy tone-mapping curve of the Night
    filter (89 ALU operations in the Hipacc implementation).
    """
    if not coefficients:
        raise ValueError("polynomial needs at least one coefficient")
    result: Expr = Const(float(coefficients[-1]))
    for coefficient in reversed(coefficients[:-1]):
        result = Const(float(coefficient)) + x * result
    return result

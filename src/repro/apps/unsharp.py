"""Cubic unsharp masking (Ramponi) — the paper's headline win.

Four kernels, all of which read the source image:

* ``blur`` — local 3x3 Gaussian,
* ``high`` — high-frequency extraction ``I - B`` (point),
* ``amp`` — cubic amplification ``H * I * I`` (point; luminance-
  modulated as in Ramponi's cubic operator),
* ``sharpen`` — ``I + lambda * A`` (point).

The DAG is the Fig. 2b diamond: the source input is shared by every
kernel in the block.  Basic (prior-work) fusion regards each pairwise
extra input as an external dependence and fuses *nothing*; the min-cut
engine checks legality on the whole block, finds it legal (only the
shared source input and the final output remain after fusion), and
collapses all four kernels into one — the paper reports a 2.52 geomean
speedup, up to 3.44 on the GTX 680.
"""

from __future__ import annotations

from repro.apps.common import GAUSS3
from repro.dsl.functional import convolve
from repro.dsl.image import Image
from repro.dsl.kernel import Kernel
from repro.dsl.pipeline import Pipeline
from repro.ir.expr import Const

#: Sharpening gain.
LAMBDA = 0.6

#: Luminance normalization of the cubic term.
NORM = 1.0 / (255.0 * 255.0)


def build_pipeline(width: int = 2048, height: int = 2048) -> Pipeline:
    """Build the four-kernel cubic unsharp pipeline."""
    pipe = Pipeline("unsharp")

    image = Image.create("input", width, height)
    pipe.declare_domain("input", 0.0, 255.0)
    blurred = Image.create("blurred", width, height)
    high = Image.create("high", width, height)
    amplified = Image.create("amplified", width, height)
    sharpened = Image.create("sharpened", width, height)

    pipe.add(
        Kernel.from_function(
            "blur", [image], blurred, lambda inp: convolve(inp, GAUSS3)
        )
    )
    pipe.add(
        Kernel.from_function(
            "high", [image, blurred], high, lambda i, b: i() - b()
        )
    )
    pipe.add(
        Kernel.from_function(
            "amp",
            [image, high],
            amplified,
            lambda i, h: h() * i() * i() * Const(NORM),
        )
    )
    pipe.add(
        Kernel.from_function(
            "sharpen",
            [image, amplified],
            sharpened,
            lambda i, a: i() + Const(LAMBDA) * a(),
        )
    )
    return pipe

"""The Harris corner detector — the paper's running example (Fig. 3).

Nine kernels connected by ten edges:

* ``dx``, ``dy`` — local derivative operators (3x3),
* ``sx``, ``sy``, ``sxy`` — point operators squaring / multiplying the
  gradients (two ALU operations each: the product and the range
  normalization, matching the paper's ``n_ALU = 2``),
* ``gx``, ``gy``, ``gxy`` — local 3x3 Gaussian smoothing,
* ``hc`` — the point-operator corner response
  ``det(M) - k * trace(M)^2``.

With the paper's constants (``t_g = 400``, ``c_ALU = 4``, IS in image
units, γ omitted), the benefit model assigns 328 to ``(sx, gx)`` and
``(sy, gy)``, 256 to ``(sxy, gxy)``, and ε to the seven remaining
edges — exactly the weights printed in Fig. 3.
"""

from __future__ import annotations

from repro.apps.common import GAUSS3, SOBEL_X, SOBEL_Y
from repro.dsl.functional import convolve
from repro.dsl.image import Image
from repro.dsl.kernel import Kernel
from repro.dsl.pipeline import Pipeline
from repro.ir.expr import Const

#: Harris sensitivity constant.
HARRIS_K = 0.04

#: Range normalization applied with the squaring (gives each square
#: kernel its second ALU operation, as counted in the paper).
NORM = 1.0 / (255.0 * 255.0)


def build_pipeline(width: int = 2048, height: int = 2048) -> Pipeline:
    """Build the nine-kernel Harris pipeline at the given geometry."""
    pipe = Pipeline("harris")

    image = Image.create("input", width, height)
    pipe.declare_domain("input", 0.0, 255.0)
    ix = Image.create("Ix", width, height)
    iy = Image.create("Iy", width, height)
    sxx = Image.create("Sxx", width, height)
    syy = Image.create("Syy", width, height)
    sxy_img = Image.create("Sxy", width, height)
    gxx = Image.create("Gxx", width, height)
    gyy = Image.create("Gyy", width, height)
    gxy_img = Image.create("Gxy", width, height)
    corners = Image.create("corners", width, height)

    pipe.add(
        Kernel.from_function(
            "dx", [image], ix, lambda inp: convolve(inp, SOBEL_X)
        )
    )
    pipe.add(
        Kernel.from_function(
            "dy", [image], iy, lambda inp: convolve(inp, SOBEL_Y)
        )
    )
    pipe.add(
        Kernel.from_function(
            "sx", [ix], sxx, lambda d: d() * d() * Const(NORM)
        )
    )
    pipe.add(
        Kernel.from_function(
            "sy", [iy], syy, lambda d: d() * d() * Const(NORM)
        )
    )
    pipe.add(
        Kernel.from_function(
            "sxy", [ix, iy], sxy_img, lambda a, b: a() * b() * Const(NORM)
        )
    )
    pipe.add(
        Kernel.from_function(
            "gx", [sxx], gxx, lambda s: convolve(s, GAUSS3)
        )
    )
    pipe.add(
        Kernel.from_function(
            "gy", [syy], gyy, lambda s: convolve(s, GAUSS3)
        )
    )
    pipe.add(
        Kernel.from_function(
            "gxy", [sxy_img], gxy_img, lambda s: convolve(s, GAUSS3)
        )
    )

    def corner_response(a, b, c):
        det = a() * b() - c() * c()
        trace = a() + b()
        return det - Const(HARRIS_K) * trace * trace

    pipe.add(
        Kernel.from_function(
            "hc", [gxx, gyy, gxy_img], corners, corner_response
        )
    )
    return pipe

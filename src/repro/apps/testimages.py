"""Synthetic test images.

Deterministic generators for the structures image-processing kernels
react to — edges, corners, blobs, texture, noise.  Used by the examples
and tests; the paper's artifact similarly ships generated random images
("the provided binaries generate random images of size 2,048 by 2,048
pixels").
"""

from __future__ import annotations

import numpy as np


def constant(width: int, height: int, value: float = 128.0) -> np.ndarray:
    """A flat image — every derivative-like kernel must return zero."""
    return np.full((height, width), float(value))


def gradient(width: int, height: int, horizontal: bool = True) -> np.ndarray:
    """A linear ramp, 0..255 along one axis."""
    if horizontal:
        row = np.linspace(0.0, 255.0, width)
        return np.tile(row, (height, 1))
    column = np.linspace(0.0, 255.0, height)[:, None]
    return np.tile(column, (1, width))


def step_edge(
    width: int, height: int, position: float = 0.5, vertical: bool = True,
    low: float = 0.0, high: float = 200.0,
) -> np.ndarray:
    """A hard step edge (the canonical edge-detector input)."""
    image = np.full((height, width), float(low))
    if vertical:
        image[:, int(width * position):] = high
    else:
        image[int(height * position):, :] = high
    return image


def checkerboard(width: int, height: int, cell: int = 8) -> np.ndarray:
    """A checkerboard — dense corners for Harris/Shi-Tomasi."""
    ys, xs = np.mgrid[0:height, 0:width]
    return np.where(((xs // cell) + (ys // cell)) % 2 == 0, 0.0, 255.0)


def gaussian_blob(
    width: int,
    height: int,
    center: tuple[float, float] | None = None,
    sigma: float | None = None,
    amplitude: float = 255.0,
) -> np.ndarray:
    """A smooth Gaussian bump (blob detectors, NMS crests)."""
    if center is None:
        center = (width / 2.0, height / 2.0)
    if sigma is None:
        sigma = min(width, height) / 6.0
    ys, xs = np.mgrid[0:height, 0:width]
    cx, cy = center
    return amplitude * np.exp(
        -(((xs - cx) ** 2 + (ys - cy) ** 2) / (2.0 * sigma**2))
    )


def noise(
    width: int, height: int, seed: int = 0,
    low: float = 0.0, high: float = 255.0, channels: int = 1,
) -> np.ndarray:
    """Deterministic uniform noise (the artifact's random input)."""
    rng = np.random.default_rng(seed)
    shape = (height, width) if channels == 1 else (height, width, channels)
    return rng.uniform(low, high, size=shape)


def salt_and_pepper(
    width: int, height: int, density: float = 0.05, seed: int = 0,
    base: float = 128.0,
) -> np.ndarray:
    """Impulse noise on a flat background (median-filter fodder)."""
    rng = np.random.default_rng(seed)
    image = np.full((height, width), float(base))
    mask = rng.random((height, width))
    image[mask < density / 2.0] = 0.0
    image[mask > 1.0 - density / 2.0] = 255.0
    return image


def natural_like(width: int, height: int, seed: int = 0) -> np.ndarray:
    """Smooth multi-scale texture with a bright box — a stand-in for a
    photograph (low-frequency content plus a sharp feature)."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width]
    image = 90.0 + 50.0 * np.sin(xs / 13.0) * np.cos(ys / 17.0)
    image += 25.0 * np.sin(xs / 3.5 + 1.0) * np.sin(ys / 4.5)
    image += rng.normal(0.0, 4.0, size=(height, width))
    image[height // 4: height // 2, width // 4: width // 2] += 60.0
    return np.clip(image, 0.0, 255.0)

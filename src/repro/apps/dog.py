"""Difference-of-Gaussians blob detection — an *extension* application.

Included (beyond the paper's matrix) because it exercises two things
the six paper apps do not combine:

* a **fan-out from the pipeline input** into two local kernels of
  *different* mask sizes (3x3 and 5x5) feeding a point difference — a
  shared-input block whose resource ratio (2.0) sits exactly at the
  paper's cMshared threshold, like Sobel but with asymmetric windows;
* a **global operator** (peak response reduction) terminating the
  pipeline — global operators never fuse (Section II-C1), so the
  engines must leave it alone while fusing everything upstream.
"""

from __future__ import annotations

from repro.dsl.functional import convolve
from repro.dsl.image import Image
from repro.dsl.kernel import Accessor, Kernel, ReductionKind
from repro.dsl.mask import Mask
from repro.dsl.pipeline import Pipeline
from repro.ir import ops
from repro.ir.expr import InputAt, Param

#: Narrow and wide Gaussians of the scale-space pair.
NARROW = Mask.gaussian(1, sigma=0.8)
WIDE = Mask.gaussian(2, sigma=1.6)


def build_pipeline(width: int = 2048, height: int = 2048) -> Pipeline:
    """Build the five-kernel DoG pipeline (4 fusible + 1 global)."""
    pipe = Pipeline("dog")

    image = Image.create("input", width, height)
    pipe.declare_domain("input", 0.0, 255.0)
    narrow = Image.create("narrow", width, height)
    wide = Image.create("wide", width, height)
    response = Image.create("response", width, height)
    blobs = Image.create("blobs", width, height)
    peak = Image.create("peak", 1, 1)

    pipe.add(Kernel.from_function(
        "blur_narrow", [image], narrow, lambda a: convolve(a, NARROW)
    ))
    pipe.add(Kernel.from_function(
        "blur_wide", [image], wide, lambda a: convolve(a, WIDE)
    ))
    pipe.add(Kernel.from_function(
        "difference", [narrow, wide], response, lambda n, w: n() - w()
    ))
    pipe.add(Kernel.from_function(
        "threshold",
        [response],
        blobs,
        lambda r: ops.select(
            ops.absolute(r()) > Param("tau"), r(), 0.0
        ),
    ))
    pipe.add(Kernel(
        "peak",
        [Accessor(blobs)],
        peak,
        ops.absolute(InputAt("blobs")),
        reduction=ReductionKind.MAX,
    ))
    return pipe

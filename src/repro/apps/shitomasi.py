"""The Shi–Tomasi good-features-to-track extractor (Section V-B).

Structurally identical to Harris — derivative operators, squared
products, Gaussian smoothing of the Hermitian matrix entries — but the
response kernel computes the *minimum eigenvalue*

    lambda_min = (gxx + gyy) / 2 - sqrt(((gxx - gyy) / 2)^2 + gxy^2)

instead of the Harris ``det - k * trace^2`` measure.  The fusion
behaviour therefore mirrors Harris (three point-to-local pairs fuse),
which the paper's Table I confirms with near-identical speedups.
"""

from __future__ import annotations

from repro.apps.common import GAUSS3, SOBEL_X, SOBEL_Y
from repro.dsl.functional import convolve
from repro.dsl.image import Image
from repro.dsl.kernel import Kernel
from repro.dsl.pipeline import Pipeline
from repro.ir import ops
from repro.ir.expr import Const

from repro.apps.harris import NORM


def build_pipeline(width: int = 2048, height: int = 2048) -> Pipeline:
    """Build the nine-kernel Shi–Tomasi pipeline."""
    pipe = Pipeline("shitomasi")

    image = Image.create("input", width, height)
    pipe.declare_domain("input", 0.0, 255.0)
    ix = Image.create("Ix", width, height)
    iy = Image.create("Iy", width, height)
    sxx = Image.create("Sxx", width, height)
    syy = Image.create("Syy", width, height)
    sxy_img = Image.create("Sxy", width, height)
    gxx = Image.create("Gxx", width, height)
    gyy = Image.create("Gyy", width, height)
    gxy_img = Image.create("Gxy", width, height)
    response = Image.create("response", width, height)

    pipe.add(
        Kernel.from_function(
            "dx", [image], ix, lambda inp: convolve(inp, SOBEL_X)
        )
    )
    pipe.add(
        Kernel.from_function(
            "dy", [image], iy, lambda inp: convolve(inp, SOBEL_Y)
        )
    )
    pipe.add(
        Kernel.from_function(
            "sx", [ix], sxx, lambda d: d() * d() * Const(NORM)
        )
    )
    pipe.add(
        Kernel.from_function(
            "sy", [iy], syy, lambda d: d() * d() * Const(NORM)
        )
    )
    pipe.add(
        Kernel.from_function(
            "sxy", [ix, iy], sxy_img, lambda a, b: a() * b() * Const(NORM)
        )
    )
    pipe.add(
        Kernel.from_function("gx", [sxx], gxx, lambda s: convolve(s, GAUSS3))
    )
    pipe.add(
        Kernel.from_function("gy", [syy], gyy, lambda s: convolve(s, GAUSS3))
    )
    pipe.add(
        Kernel.from_function(
            "gxy", [sxy_img], gxy_img, lambda s: convolve(s, GAUSS3)
        )
    )

    def min_eigenvalue(a, b, c):
        half_trace = (a() + b()) * Const(0.5)
        half_diff = (a() - b()) * Const(0.5)
        return half_trace - ops.sqrt(half_diff * half_diff + c() * c())

    pipe.add(
        Kernel.from_function(
            "st", [gxx, gyy, gxy_img], response, min_eigenvalue
        )
    )
    return pipe

"""Image enhancement for wireless capsule endoscopy (Section V-B).

Following Suman et al.: a geometric-mean filter for de-noising followed
by gamma correction for enhancement, with a final contrast stretch —
a linear chain of one local and two point operators.

This is the best case for *both* fusion engines (the paper's basic
fusion already reaches 1.41–1.79 here): every kernel reads exactly its
predecessor's output, the consumers are point operators (point-based
scenario, Eq. 5 — no recomputation cost regardless of how expensive the
geometric mean is), and the whole chain collapses into a single kernel.
"""

from __future__ import annotations

from repro.dsl.functional import geometric_mean
from repro.dsl.image import Image
from repro.dsl.kernel import Kernel
from repro.dsl.mask import Domain
from repro.dsl.pipeline import Pipeline
from repro.ir import ops
from repro.ir.expr import Const, Param


def build_pipeline(width: int = 2048, height: int = 2048) -> Pipeline:
    """Build the three-kernel enhancement pipeline.

    The gamma exponent is a runtime parameter (``gamma``, default bound
    by the examples to 0.8) — exercising the DSL's scalar-parameter
    support the way Hipacc kernels take scalar arguments.
    """
    pipe = Pipeline("enhancement")

    image = Image.create("input", width, height)
    pipe.declare_domain("input", 0.0, 255.0)
    denoised = Image.create("denoised", width, height)
    corrected = Image.create("corrected", width, height)
    enhanced = Image.create("enhanced", width, height)

    domain = Domain(3, 3)
    pipe.add(
        Kernel.from_function(
            "gmean",
            [image],
            denoised,
            # Shift by one to keep log() well-defined for zero pixels.
            lambda a: geometric_mean_shifted(a, domain),
        )
    )
    pipe.add(
        Kernel.from_function(
            "gamma",
            [denoised],
            corrected,
            lambda a: ops.pow_(a() * Const(1.0 / 255.0), Param("gamma"))
            * Const(255.0),
        )
    )
    pipe.add(
        Kernel.from_function(
            "stretch",
            [corrected],
            enhanced,
            lambda a: ops.clamp(
                (a() - Const(16.0)) * Const(255.0 / (235.0 - 16.0)),
                Const(0.0),
                Const(255.0),
            ),
        )
    )
    return pipe


def geometric_mean_shifted(accessor, domain: Domain):
    """Geometric mean of ``pixel + 1`` (avoids ``log(0)``), minus one."""
    from repro.dsl.functional import window_reduce

    log_sum = window_reduce(
        accessor,
        domain,
        lambda a, b: a + b,
        lambda v: ops.log(v + Const(1.0)),
    )
    return ops.exp(log_sum * Const(1.0 / domain.size)) - Const(1.0)

"""The Sobel edge filter (Section V-B).

Two local operators derive the horizontal and vertical gradients; a
point operator combines them into the gradient magnitude.  The fusible
block contains *two* local kernels side by side — the "local-to-local
scenario" that basic fusion rejects; the min-cut engine fuses all three
kernels into one (resource ratio exactly 2, the paper's ``cMshared``
threshold), which is where the paper's Sobel speedup (up to 1.377 on
the GTX 680) comes from.
"""

from __future__ import annotations

from repro.apps.common import SOBEL_X, SOBEL_Y
from repro.dsl.functional import convolve
from repro.dsl.image import Image
from repro.dsl.kernel import Kernel
from repro.dsl.pipeline import Pipeline
from repro.ir import ops


def build_pipeline(width: int = 2048, height: int = 2048) -> Pipeline:
    """Build the three-kernel Sobel pipeline."""
    pipe = Pipeline("sobel")

    image = Image.create("input", width, height)
    pipe.declare_domain("input", 0.0, 255.0)
    ix = Image.create("Ix", width, height)
    iy = Image.create("Iy", width, height)
    magnitude = Image.create("magnitude", width, height)

    pipe.add(
        Kernel.from_function(
            "dx", [image], ix, lambda inp: convolve(inp, SOBEL_X)
        )
    )
    pipe.add(
        Kernel.from_function(
            "dy", [image], iy, lambda inp: convolve(inp, SOBEL_Y)
        )
    )
    pipe.add(
        Kernel.from_function(
            "mag",
            [ix, iy],
            magnitude,
            lambda a, b: ops.sqrt(a() * a() + b() * b()),
        )
    )
    return pipe

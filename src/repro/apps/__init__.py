"""The six benchmark applications of the paper's evaluation (Section V-B).

Each module exposes ``build_pipeline(width, height) -> Pipeline`` plus
the default image geometry used in the paper.  The registry
:data:`APPLICATIONS` drives the evaluation harness.

* **Sobel** — two local gradient operators combined into a gradient
  magnitude (local-to-local fusion scope, rejected by basic fusion);
* **Harris** — the corner detector used as the paper's running example
  (Fig. 3): 9 kernels, 10 edges;
* **ShiTomasi** — the good-features-to-track extractor; same Hermitian
  matrix pipeline as Harris with a minimum-eigenvalue response;
* **Unsharp** — cubic unsharp masking; all four kernels share the
  source image (the Fig. 2b diamond that only the min-cut engine fuses);
* **Night** — two expensive à-trous bilateral passes plus scotopic tone
  mapping; compute-bound, the benefit model must refuse the
  local-to-local fusion;
* **Enhancement** — geometric-mean denoising with gamma correction for
  wireless capsule endoscopy (clean local-to-point-to-point chain).
"""

from dataclasses import dataclass
from typing import Callable, Dict

from repro.dsl.pipeline import Pipeline

from repro.apps import (
    canny,
    dog,
    enhancement,
    harris,
    night,
    shitomasi,
    sobel,
    unsharp,
)


@dataclass(frozen=True)
class AppSpec:
    """One evaluation application."""

    name: str
    build: Callable[..., Pipeline]
    width: int
    height: int
    channels: int = 1

    def pipeline(self) -> Pipeline:
        """Build at the paper's default geometry."""
        return self.build(self.width, self.height)


#: The paper's applications at their evaluation geometries: 2048x2048
#: gray-scale, except the Night filter at 1920x1200 RGB.
APPLICATIONS: Dict[str, AppSpec] = {
    "Harris": AppSpec("Harris", harris.build_pipeline, 2048, 2048),
    "Sobel": AppSpec("Sobel", sobel.build_pipeline, 2048, 2048),
    "Unsharp": AppSpec("Unsharp", unsharp.build_pipeline, 2048, 2048),
    "ShiTomasi": AppSpec("ShiTomasi", shitomasi.build_pipeline, 2048, 2048),
    "Enhance": AppSpec("Enhance", enhancement.build_pipeline, 2048, 2048),
    "Night": AppSpec("Night", night.build_pipeline, 1920, 1200, channels=3),
}

#: Extension applications beyond the paper's evaluation matrix.
EXTENSIONS: Dict[str, AppSpec] = {
    "Canny": AppSpec("Canny", canny.build_pipeline, 2048, 2048),
    "DoG": AppSpec("DoG", dog.build_pipeline, 2048, 2048),
}

#: Everything buildable by name (paper matrix + extensions).
ALL_APPS: Dict[str, AppSpec] = {**APPLICATIONS, **EXTENSIONS}

__all__ = [
    "ALL_APPS",
    "APPLICATIONS",
    "AppSpec",
    "EXTENSIONS",
    "canny",
    "dog",
    "enhancement",
    "harris",
    "night",
    "shitomasi",
    "sobel",
    "unsharp",
]

"""The night post-processing filter (Section V-B / V-C).

Three kernels over a 1920x1200 RGB image:

* ``atrous0`` — à-trous bilateral filtering, level 0 (dense 3x3 taps),
* ``atrous1`` — à-trous bilateral filtering, level 1 (nine taps spread
  over a 5x5 window with holes),
* ``scoto`` — scotopic tone mapping, a long pointwise curve (89 ALU
  operations in the Hipacc implementation).

This is the paper's *negative* result and the key test of the benefit
model: the bilateral kernels are so expensive (~68 ALU operations) that
the redundant-computation cost φ of fusing ``atrous0`` into ``atrous1``
(Eq. 10, with the fused 7x7 window of Eq. 9) dwarfs the shared-memory
locality gain — the model must *refuse* that fusion.  Only
``atrous1 + scoto`` fuse (local-to-point), and because the whole
pipeline is compute-bound the end-to-end speedup stays near 1.0
(at most 1.02 in the paper).
"""

from __future__ import annotations

from repro.apps.common import atrous_taps, polynomial
from repro.dsl.image import Image
from repro.dsl.kernel import Accessor, Kernel
from repro.dsl.pipeline import Pipeline
from repro.ir.expr import Const, Expr

#: Range-weight steepness of the bilateral rational kernel.
BILATERAL_K = 0.002

#: Tone-curve coefficients (a fitted scotopic response polynomial).
SCOTO_CURVE = [
    0.0,
    1.8932,
    -4.2342,
    12.1931,
    -24.3391,
    31.9029,
    -27.5201,
    15.3512,
    -5.2831,
    1.0213,
    -0.0851,
    0.0044,
    0.0102,
    -0.0033,
    0.0008,
    0.0021,
    -0.0005,
    0.0001,
    0.0013,
    -0.0002,
]

#: Blue-shift correction polynomial of the scotopic simulation.
BLUESHIFT_CURVE = [0.05, 1.42, -1.18, 0.92, -0.41, 0.12, -0.02, 0.004]


def atrous_bilateral(acc: Accessor, level: int) -> Expr:
    """One à-trous bilateral filtering pass.

    Edge-preserving smoothing with rational range weights
    ``w = 1 / (1 + k * (v - center)^2)`` — the heavy arithmetic
    (~65 ALU operations) that makes the Night kernels expensive
    producers.
    """
    center = acc(0, 0)
    value_sum: Expr = center
    weight_sum: Expr = Const(1.0)
    for dx, dy in atrous_taps(level):
        if dx == 0 and dy == 0:
            continue
        value = acc(dx, dy)
        difference = value - center
        weight = Const(1.0) / (
            Const(1.0) + Const(BILATERAL_K) * difference * difference
        )
        value_sum = value_sum + weight * value
        weight_sum = weight_sum + weight
    return value_sum / weight_sum


def scotopic_tone_mapping(acc: Accessor) -> Expr:
    """The pointwise scotopic tone-mapping curve (~89 ALU operations)."""
    x = acc() * Const(1.0 / 255.0)
    response = polynomial(x, SCOTO_CURVE)
    blueshift = polynomial(x, BLUESHIFT_CURVE)
    x_sq = x * x
    mesopic = x_sq / (x_sq + Const(0.01))
    mixed = mesopic * response + (Const(1.0) - mesopic) * blueshift
    return mixed * Const(255.0)


def build_pipeline(width: int = 1920, height: int = 1200) -> Pipeline:
    """Build the three-kernel Night pipeline over RGB images."""
    pipe = Pipeline("night")

    image = Image.create("input", width, height, channels=3)
    pipe.declare_domain("input", 0.0, 255.0)
    smooth0 = Image.create("smooth0", width, height, channels=3)
    smooth1 = Image.create("smooth1", width, height, channels=3)
    toned = Image.create("toned", width, height, channels=3)

    pipe.add(
        Kernel.from_function(
            "atrous0", [image], smooth0, lambda a: atrous_bilateral(a, 0)
        )
    )
    pipe.add(
        Kernel.from_function(
            "atrous1", [smooth0], smooth1, lambda a: atrous_bilateral(a, 1)
        )
    )
    pipe.add(
        Kernel.from_function("scoto", [smooth1], toned, scotopic_tone_mapping)
    )
    return pipe
